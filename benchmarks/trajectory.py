"""Performance trajectory over the committed benchmark baselines.

Every PR re-records ``benchmarks/results/*.json``, so the git history of
that directory *is* the repository's performance record — each commit holds
one snapshot of every benchmark envelope.  This tool walks that history
(``git log`` over the results directory, ``git show`` for each snapshot),
extracts every metric the perf gate floors (``perf_gate.METRIC_FLOORS`` —
the stable, regression-guarded metric set), and renders the trajectory two
ways:

* a long-format CSV (one row per commit × benchmark × metric) for plotting
  and downstream tooling, and
* a pivoted text table (one row per commit, one column per metric) for
  humans — the same artifact CI uploads on every run.

A repository whose results were never committed (or a checkout without
git) falls back to a single ``worktree`` snapshot of the current results
directory, so the tool always renders something.

Run it directly::

    PYTHONPATH=benchmarks python benchmarks/trajectory.py
    python benchmarks/trajectory.py --csv out.csv --table out.txt
"""

from __future__ import annotations

import argparse
import csv
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from perf_gate import METRIC_FLOORS, RESULTS_DIR, _lookup

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Repo-relative path of the committed baselines (what ``git show`` needs).
RESULTS_RELATIVE = "benchmarks/results"


def _git(*arguments: str) -> Optional[str]:
    """stdout of a git command in the repo, or None when git/repo is absent."""
    try:
        completed = subprocess.run(
            ["git", "-C", str(REPO_ROOT), *arguments],
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def floored_metrics() -> List[Tuple[str, str]]:
    """Every (benchmark, metric path) the perf gate registers, in gate order."""
    return [
        (benchmark, floor.path)
        for benchmark, floors in METRIC_FLOORS.items()
        for floor in floors
    ]


def _snapshot_metrics(payloads: Dict[str, dict]) -> Dict[Tuple[str, str], float]:
    """The floored metric values present in one snapshot's ``data`` payloads."""
    values: Dict[Tuple[str, str], float] = {}
    for benchmark, path in floored_metrics():
        data = payloads.get(benchmark)
        if data is None:
            continue
        value = _lookup(data, path)
        if isinstance(value, (int, float)):
            values[(benchmark, path)] = float(value)
    return values


def _commit_payloads(commit: str) -> Dict[str, dict]:
    """The ``data`` payloads of every results JSON committed at ``commit``."""
    listing = _git("ls-tree", "-r", "--name-only", commit, "--", RESULTS_RELATIVE)
    payloads: Dict[str, dict] = {}
    for line in (listing or "").splitlines():
        if not line.endswith(".json"):
            continue
        text = _git("show", f"{commit}:{line}")
        if text is None:
            continue
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError:
            continue  # a mangled historical baseline is a gap, not a crash
        if isinstance(envelope, dict):
            name = str(envelope.get("benchmark", Path(line).stem))
            payloads[name] = envelope.get("data", {})
    return payloads


def _worktree_payloads(results_dir: Path = RESULTS_DIR) -> Dict[str, dict]:
    """Fallback snapshot: the results directory as it sits on disk."""
    payloads: Dict[str, dict] = {}
    for path in sorted(results_dir.glob("*.json")):
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(envelope, dict):
            payloads[str(envelope.get("benchmark", path.stem))] = envelope.get(
                "data", {}
            )
    return payloads


def collect_trajectory() -> List[dict]:
    """One snapshot dict per commit that touched the committed baselines.

    Each snapshot carries ``commit`` (short sha or ``worktree``), ``date``
    (ISO committer date) and ``metrics`` (floored-metric values present at
    that commit), ordered oldest first.
    """
    log = _git(
        "log",
        "--reverse",
        "--format=%h\t%cI\t%s",
        "--",
        RESULTS_RELATIVE,
    )
    snapshots: List[dict] = []
    for line in (log or "").splitlines():
        parts = line.split("\t", 2)
        if len(parts) < 2:
            continue
        commit, date = parts[0], parts[1]
        subject = parts[2] if len(parts) > 2 else ""
        metrics = _snapshot_metrics(_commit_payloads(commit))
        if metrics:
            snapshots.append(
                {"commit": commit, "date": date, "subject": subject, "metrics": metrics}
            )
    if not snapshots:
        metrics = _snapshot_metrics(_worktree_payloads())
        if metrics:
            snapshots.append(
                {"commit": "worktree", "date": "", "subject": "", "metrics": metrics}
            )
    return snapshots


def write_csv(snapshots: List[dict], path: Path) -> None:
    """Long-format CSV: one row per commit × benchmark × metric."""
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["commit", "date", "benchmark", "metric", "value"])
        for snapshot in snapshots:
            for (benchmark, metric), value in sorted(snapshot["metrics"].items()):
                writer.writerow(
                    [snapshot["commit"], snapshot["date"], benchmark, metric, value]
                )


def format_table(snapshots: List[dict]) -> str:
    """Pivoted text table: one row per commit, one column per floored metric."""
    if not snapshots:
        return "no benchmark trajectory: no committed baselines found\n"
    # keep gate order, but only columns some snapshot actually carries
    present = {key for snapshot in snapshots for key in snapshot["metrics"]}
    columns = [key for key in floored_metrics() if key in present]
    headers = ["commit", "date"] + [f"{bench}.{path}" for bench, path in columns]
    rows = []
    for snapshot in snapshots:
        cells = [snapshot["commit"], snapshot["date"][:10]]
        for key in columns:
            value = snapshot["metrics"].get(key)
            cells.append("" if value is None else f"{value:.2f}")
        rows.append(cells)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(line.rstrip() for line in lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--csv",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "trajectory.csv",
        help="CSV output path (default: benchmarks/trajectory.csv)",
    )
    parser.add_argument(
        "--table",
        type=Path,
        default=None,
        help="also write the text table to this path (always printed)",
    )
    args = parser.parse_args(argv)
    snapshots = collect_trajectory()
    write_csv(snapshots, args.csv)
    table = format_table(snapshots)
    sys.stdout.write(table)
    if args.table is not None:
        args.table.write_text(table, encoding="utf-8")
    print(f"csv written: {args.csv} ({len(snapshots)} snapshot(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
