"""Ablation (future work): compact region-data codec versus the standard one."""

from repro.bench import ablation_region_compression, format_table

from conftest import run_once


def test_ablation_region_compression(benchmark, record_result):
    rows = run_once(benchmark, ablation_region_compression)
    record_result(
        "ablation_region_compression",
        format_table(rows, "Ablation: compact vs standard region codec (Fd size)"),
        data=rows,
    )
    assert len(rows) == 3
    for row in rows:
        # the structured codec always wins on road-network adjacency data
        assert row["compact_kb"] < row["standard_kb"]
        assert 0.0 < row["byte_ratio"] < 1.0
        assert row["compact_pages"] <= row["standard_pages"]
