"""Figure 9: effect of in-page index compression on CI and PI."""

from repro.bench import fig9_compression, format_table

from conftest import run_once


def test_fig9_compression(benchmark, record_result):
    rows = run_once(benchmark, fig9_compression, num_queries=25)
    record_result(
        "fig9_compression",
        format_table(rows, "Figure 9: with (CI/PI) vs. without (CI-C/PI-C) index compression"),
        data=rows,
    )
    by_key = {(row["dataset"], row["scheme"]): row for row in rows}
    for dataset in ("Old.", "Ger.", "Arg."):
        # compression shrinks the network index of both schemes
        assert by_key[(dataset, "CI")]["index_pages"] <= by_key[(dataset, "CI-C")]["index_pages"]
        assert by_key[(dataset, "PI")]["index_pages"] <= by_key[(dataset, "PI-C")]["index_pages"]
        # and therefore the total database size
        assert by_key[(dataset, "PI")]["storage_mb"] <= by_key[(dataset, "PI-C")]["storage_mb"]
