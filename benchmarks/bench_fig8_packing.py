"""Figure 8: effect of packed partitioning on CI and PI."""

from repro.bench import fig8_packing, format_table

from conftest import run_once


def test_fig8_packing(benchmark, record_result):
    rows = run_once(benchmark, fig8_packing, num_queries=25)
    record_result(
        "fig8_packing",
        format_table(rows, "Figure 8: packed (CI/PI) vs. plain (CI-P/PI-P) partitioning"),
        data=rows,
    )
    by_key = {(row["dataset"], row["scheme"]): row for row in rows}
    for dataset in ("Old.", "Ger.", "Arg."):
        # packed partitioning fills Fd pages better than the plain KD-tree
        assert (
            by_key[(dataset, "CI")]["fd_utilization_pct"]
            > by_key[(dataset, "CI-P")]["fd_utilization_pct"]
        )
        # better utilization shrinks the database
        assert by_key[(dataset, "CI")]["storage_mb"] <= by_key[(dataset, "CI-P")]["storage_mb"]
        assert by_key[(dataset, "PI")]["storage_mb"] <= by_key[(dataset, "PI-P")]["storage_mb"]
        # and does not hurt CI's response time
        assert (
            by_key[(dataset, "CI")]["response_s"]
            <= by_key[(dataset, "CI-P")]["response_s"] * 1.1
        )
