"""Figure 6: the obfuscation baseline (OBF) vs. CI/PI on Argentina."""

from repro.bench import fig6_obfuscation, format_table

from conftest import run_once


def test_fig6_obfuscation(benchmark, record_result):
    data = run_once(benchmark, fig6_obfuscation, set_sizes=(20, 40, 60, 80, 100), num_queries=15)
    rows = data["obf"]
    text = format_table(rows, "Figure 6: OBF response time vs. |S| = |T| (Argentina stand-in)")
    text += (
        f"\nreference lines:  CI = {data['ci_response_s']} s,  PI = {data['pi_response_s']} s\n"
    )
    record_result("fig6_obfuscation", text, data=data)

    # OBF response grows with the obfuscation set size
    responses = [row["response_s"] for row in rows]
    assert responses == sorted(responses)
    # for obfuscation sets in the order of tens, OBF is slower than PI
    assert responses[-1] > data["pi_response_s"]
