"""Figure 10: the HY scheme on Denmark — |S_ij| distribution and the threshold sweep."""

from repro.bench import fig10_hybrid, format_series, format_table

from conftest import run_once


def test_fig10_hybrid(benchmark, record_result):
    data = run_once(benchmark, fig10_hybrid, num_queries=25)
    text = format_series(
        data["histogram"], "|S_ij| bucket", "pairs",
        title="Figure 10a: distribution of region-set cardinalities (Denmark stand-in)",
    )
    text += "\n" + format_table(
        data["hybrid"], "Figure 10b/c: HY response time and space vs. cardinality threshold"
    )
    text += (
        f"\nCI reference: response = {data['ci_response_s']} s, "
        f"storage = {data['ci_storage_mb']} MB, max |S_ij| = {data['max_region_set_size']}\n"
    )
    record_result("fig10_hybrid", text, data=data)

    rows = data["hybrid"]
    # smaller thresholds replace more pairs, cost more space and respond faster
    replaced = [row["replaced_pairs"] for row in rows]
    storage = [row["storage_mb"] for row in rows]
    responses = [row["response_s"] for row in rows]
    assert replaced == sorted(replaced, reverse=True)
    assert storage == sorted(storage, reverse=True)
    assert responses[0] <= responses[-1]
    # the most aggressive threshold beats plain CI on response time
    assert responses[0] < data["ci_response_s"]
