"""Table 2: system specification used by the cost model."""

from repro.bench import format_table, table2_system

from conftest import run_once


def test_table2_system(benchmark, record_result):
    rows = run_once(benchmark, table2_system)
    record_result("table2_system", format_table(rows, "Table 2: system specification"), data=rows)
    parameters = {row["parameter"] for row in rows}
    assert "SCP encryption/decryption rate" in parameters
    assert "Max PIR file size" in parameters
