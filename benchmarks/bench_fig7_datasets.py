"""Figure 7: AF, LM, CI and PI across the three smaller road networks."""

from repro.bench import fig7_datasets, format_table

from conftest import run_once


def test_fig7_datasets(benchmark, record_result):
    rows = run_once(benchmark, fig7_datasets, num_queries=25)
    record_result(
        "fig7_datasets",
        format_table(rows, "Figure 7: response time and space on Oldenburg / Germany / Argentina"),
        data=rows,
    )
    by_key = {(row["dataset"], row["scheme"]): row for row in rows}
    for dataset in ("Old.", "Ger.", "Arg."):
        # PI is the fastest scheme on every dataset; CI beats both baselines
        assert by_key[(dataset, "PI")]["response_s"] <= by_key[(dataset, "CI")]["response_s"]
        assert by_key[(dataset, "CI")]["response_s"] < by_key[(dataset, "LM")]["response_s"]
        assert by_key[(dataset, "CI")]["response_s"] < by_key[(dataset, "AF")]["response_s"]
        # PI pays for its speed with the largest database
        assert by_key[(dataset, "PI")]["storage_mb"] > by_key[(dataset, "CI")]["storage_mb"]
