"""Microbenchmark: the array-backed fast path vs. the seed implementations.

Two hot paths dominate every figure benchmark: client-side Dijkstra and
per-block PIR retrieval.  This benchmark times both — the CSR-compiled search
core against the preserved dict-based reference implementations, and batched
integer-XOR PIR against a faithful re-implementation of the seed's
byte-at-a-time client — and asserts the speedups the fast path exists for.

Run it directly (``PYTHONPATH=src python benchmarks/bench_micro_fastpath.py``)
or through pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_micro_fastpath.py``).
"""

import random
import time

from repro.network import (
    all_pairs_sample_costs,
    csr_for,
    random_planar_network,
    reference_dijkstra_tree,
    reference_shortest_path,
    shortest_path,
    dijkstra_tree,
)
from repro.pir import TwoServerXorPir


def _reference_all_pairs(network, pairs):
    """The seed's batched-cost routine: one dict-based tree per distinct source."""
    by_source = {}
    for source, target in pairs:
        by_source.setdefault(source, []).append(target)
    costs = {}
    for source, targets in by_source.items():
        tree = reference_dijkstra_tree(network, source, targets=targets)
        for target in targets:
            costs[(source, target)] = tree.distance_to(target)
    return costs


# ---------------------------------------------------------------------- #
# seed reference: byte-at-a-time two-server XOR PIR (as before this PR)
# ---------------------------------------------------------------------- #
def _bytewise_xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class _ReferenceXorPir:
    """The seed's client/server loop, kept verbatim for timing comparison."""

    def __init__(self, blocks, rng):
        self._blocks = list(blocks)
        self._rng = rng

    def _answer(self, subset):
        result = bytes(len(self._blocks[0]))
        for index in subset:
            result = _bytewise_xor(result, self._blocks[index])
        return result

    def retrieve(self, index):
        subset_a = {
            position
            for position in range(len(self._blocks))
            if self._rng.random() < 0.5
        }
        subset_b = set(subset_a)
        if index in subset_b:
            subset_b.remove(index)
        else:
            subset_b.add(index)
        return _bytewise_xor(self._answer(subset_a), self._answer(subset_b))


def _time(function, repeats=3):
    """Best-of-N wall time of ``function()``; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_dijkstra_microbench(num_nodes=1500, num_queries=60, seed=7):
    """Point-to-point and full-tree searches, fast path vs. reference."""
    network = random_planar_network(num_nodes, seed=seed)
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    pairs = [(rng.choice(node_ids), rng.choice(node_ids)) for _ in range(num_queries)]
    sources = [rng.choice(node_ids) for _ in range(max(5, num_queries // 6))]

    def run_fast():
        network._csr_cache = None  # include one compile in every timed run
        costs = [shortest_path(network, s, t).cost for s, t in pairs]
        trees = [dijkstra_tree(network, s) for s in sources]
        batched = all_pairs_sample_costs(network, pairs)
        return costs, trees, batched

    def run_reference():
        costs = [reference_shortest_path(network, s, t).cost for s, t in pairs]
        trees = [reference_dijkstra_tree(network, s) for s in sources]
        batched = _reference_all_pairs(network, pairs)
        return costs, trees, batched

    fast_s, (fast_costs, fast_trees, fast_batched) = _time(run_fast)
    reference_s, (reference_costs, reference_trees, reference_batched) = _time(run_reference)

    for fast, reference in zip(fast_costs, reference_costs):
        assert abs(fast - reference) <= 1e-9 * max(1.0, abs(reference)), \
            "fast path disagrees with the reference implementation"
    for fast_tree, reference_tree in zip(fast_trees, reference_trees):
        assert len(fast_tree.distances) == len(reference_tree.distances)
    for pair, reference_cost in reference_batched.items():
        assert abs(fast_batched[pair] - reference_cost) <= 1e-9 * max(1.0, abs(reference_cost))

    return {
        "nodes": num_nodes,
        "queries": num_queries,
        "trees": len(sources),
        "fast_s": fast_s,
        "reference_s": reference_s,
        "speedup": reference_s / fast_s,
    }


def run_pir_microbench(num_blocks=96, block_bytes=512, num_retrievals=60, seed=11):
    """Batched integer-XOR retrieval vs. the seed's byte-at-a-time client."""
    rng = random.Random(seed)
    blocks = [bytes(rng.randrange(256) for _ in range(block_bytes)) for _ in range(num_blocks)]
    indices = [rng.randrange(num_blocks) for _ in range(num_retrievals)]

    fast_pir = TwoServerXorPir(blocks, rng=random.Random(seed))
    reference_pir = _ReferenceXorPir(blocks, rng=random.Random(seed))

    fast_s, fast_blocks = _time(lambda: fast_pir.retrieve_many(indices))
    reference_s, reference_blocks = _time(
        lambda: [reference_pir.retrieve(index) for index in indices]
    )

    expected = [blocks[index] for index in indices]
    assert fast_blocks == expected, "batched retrieval returned wrong blocks"
    assert reference_blocks == expected, "reference retrieval returned wrong blocks"

    return {
        "blocks": num_blocks,
        "block_bytes": block_bytes,
        "retrievals": num_retrievals,
        "fast_s": fast_s,
        "reference_s": reference_s,
        "speedup": reference_s / fast_s,
    }


def _format(name, result):
    return (
        f"{name}: reference {result['reference_s'] * 1000:.1f} ms, "
        f"fast {result['fast_s'] * 1000:.1f} ms, "
        f"speedup {result['speedup']:.1f}x"
    )


def test_fastpath_microbench(record_result):
    dijkstra = run_dijkstra_microbench()
    pir = run_pir_microbench()
    text = "\n".join([_format("dijkstra", dijkstra), _format("xor-pir", pir)]) + "\n"
    record_result("micro_fastpath", text)
    # the acceptance bar is 3x; assert a margin below the typically observed
    # speedups so the check stays robust on slow/loaded machines
    assert dijkstra["speedup"] >= 3.0, f"dijkstra fast path too slow: {dijkstra}"
    assert pir["speedup"] >= 3.0, f"batched PIR too slow: {pir}"


if __name__ == "__main__":
    print(_format("dijkstra", run_dijkstra_microbench()))
    print(_format("xor-pir", run_pir_microbench()))
