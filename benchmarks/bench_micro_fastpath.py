"""Microbenchmark: the array-backed fast path vs. the seed implementations.

Three hot paths dominate every figure benchmark: client-side Dijkstra,
per-block PIR retrieval and the client-side query pipeline of the schemes.
This benchmark times all three — the CSR-compiled search core against the
preserved dict-based reference implementations, batched integer-XOR PIR
against a faithful re-implementation of the seed's byte-at-a-time client,
and batched CI/PI query execution through the engine against the PR 1
client path (dict-merge ``RoadNetwork`` assembly plus a per-query CSR
compile) — and asserts the speedups the fast path exists for.  A fourth
benchmark serves the exact PIR request stream of an engine hotspot batch
through a sharded versus a monolithic two-server XOR PIR database and
asserts the end-to-end throughput gain of sharding (≥ 1.5x at 4 shards).

Run it directly (``PYTHONPATH=src python benchmarks/bench_micro_fastpath.py``,
add ``--json`` to also write ``benchmarks/results/micro_fastpath.json``) or
through pytest (``PYTHONPATH=src python -m pytest
benchmarks/bench_micro_fastpath.py``), which records both the text and the
JSON result files.
"""

import random
import time
from contextlib import contextmanager

import repro.schemes.assembly as assembly
from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.bench.workloads import generate_hotspot_workload, generate_workload
from repro.network import (
    all_pairs_sample_costs,
    csr_for,
    random_planar_network,
    reference_dijkstra_tree,
    reference_shortest_path,
    shortest_path,
    dijkstra_tree,
)
from repro.pir import ShardedPir, TwoServerXorPir, make_kernel, numpy_available
from repro.pir.batch import random_subset_masks
from repro.schemes import ConciseIndexScheme, PassageIndexScheme


def _reference_all_pairs(network, pairs):
    """The seed's batched-cost routine: one dict-based tree per distinct source."""
    by_source = {}
    for source, target in pairs:
        by_source.setdefault(source, []).append(target)
    costs = {}
    for source, targets in by_source.items():
        tree = reference_dijkstra_tree(network, source, targets=targets)
        for target in targets:
            costs[(source, target)] = tree.distance_to(target)
    return costs


# ---------------------------------------------------------------------- #
# seed reference: byte-at-a-time two-server XOR PIR (as before this PR)
# ---------------------------------------------------------------------- #
def _bytewise_xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class _ReferenceXorPir:
    """The seed's client/server loop, kept verbatim for timing comparison."""

    def __init__(self, blocks, rng):
        self._blocks = list(blocks)
        self._rng = rng

    def _answer(self, subset):
        result = bytes(len(self._blocks[0]))
        for index in subset:
            result = _bytewise_xor(result, self._blocks[index])
        return result

    def retrieve(self, index):
        subset_a = {
            position
            for position in range(len(self._blocks))
            if self._rng.random() < 0.5
        }
        subset_b = set(subset_a)
        if index in subset_b:
            subset_b.remove(index)
        else:
            subset_b.add(index)
        return _bytewise_xor(self._answer(subset_a), self._answer(subset_b))


def _time(function, repeats=3):
    """Best-of-N wall time of ``function()``; returns (seconds, result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_dijkstra_microbench(num_nodes=1500, num_queries=60, seed=7):
    """Point-to-point and full-tree searches, fast path vs. reference."""
    network = random_planar_network(num_nodes, seed=seed)
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    pairs = [(rng.choice(node_ids), rng.choice(node_ids)) for _ in range(num_queries)]
    sources = [rng.choice(node_ids) for _ in range(max(5, num_queries // 6))]

    def run_fast():
        network._csr_cache = None  # include one compile in every timed run
        costs = [shortest_path(network, s, t).cost for s, t in pairs]
        trees = [dijkstra_tree(network, s) for s in sources]
        batched = all_pairs_sample_costs(network, pairs)
        return costs, trees, batched

    def run_reference():
        costs = [reference_shortest_path(network, s, t).cost for s, t in pairs]
        trees = [reference_dijkstra_tree(network, s) for s in sources]
        batched = _reference_all_pairs(network, pairs)
        return costs, trees, batched

    fast_s, (fast_costs, fast_trees, fast_batched) = _time(run_fast)
    reference_s, (reference_costs, reference_trees, reference_batched) = _time(run_reference)

    for fast, reference in zip(fast_costs, reference_costs):
        assert abs(fast - reference) <= 1e-9 * max(1.0, abs(reference)), \
            "fast path disagrees with the reference implementation"
    for fast_tree, reference_tree in zip(fast_trees, reference_trees):
        assert len(fast_tree.distances) == len(reference_tree.distances)
    for pair, reference_cost in reference_batched.items():
        assert abs(fast_batched[pair] - reference_cost) <= 1e-9 * max(1.0, abs(reference_cost))

    return {
        "nodes": num_nodes,
        "queries": num_queries,
        "trees": len(sources),
        "fast_s": fast_s,
        "reference_s": reference_s,
        "speedup": reference_s / fast_s,
    }


def run_pir_microbench(num_blocks=96, block_bytes=512, num_retrievals=60, seed=11):
    """Batched integer-XOR retrieval vs. the seed's byte-at-a-time client."""
    rng = random.Random(seed)
    blocks = [bytes(rng.randrange(256) for _ in range(block_bytes)) for _ in range(num_blocks)]
    indices = [rng.randrange(num_blocks) for _ in range(num_retrievals)]

    fast_pir = TwoServerXorPir(blocks, rng=random.Random(seed))
    reference_pir = _ReferenceXorPir(blocks, rng=random.Random(seed))

    fast_s, fast_blocks = _time(lambda: fast_pir.retrieve_many(indices))
    reference_s, reference_blocks = _time(
        lambda: [reference_pir.retrieve(index) for index in indices]
    )

    expected = [blocks[index] for index in indices]
    assert fast_blocks == expected, "batched retrieval returned wrong blocks"
    assert reference_blocks == expected, "reference retrieval returned wrong blocks"

    return {
        "blocks": num_blocks,
        "block_bytes": block_bytes,
        "retrievals": num_retrievals,
        "fast_s": fast_s,
        "reference_s": reference_s,
        "speedup": reference_s / fast_s,
    }


# ---------------------------------------------------------------------- #
# PR 1 client path: per-query index-entry decode, dict-merge assembly and a
# per-query CSR compile (the query pipeline before it became CSR-native)
# ---------------------------------------------------------------------- #
def _pr1_decode_index_entry(pages, key):
    """PR 1 decoded every fetched index page on every query (no page cache)."""
    from repro.schemes.index_entries import (
        IndexEntry,
        _decode_page_entries,
        _resolve_page,
    )

    regions, edges = set(), set()
    found_regions = found_edges = False
    for page_bytes in pages:
        for entry in _resolve_page(_decode_page_entries(page_bytes)):
            if entry.key != key:
                continue
            if entry.regions is not None:
                regions |= entry.regions
                found_regions = True
            if entry.edges is not None:
                edges |= entry.edges
                found_edges = True
    if found_regions:
        return IndexEntry(key, frozenset(regions), None)
    if found_edges:
        return IndexEntry(key, None, frozenset(edges))
    return None


def _pr1_region_csr(payload_groups):
    return csr_for(assembly.reference_region_graph(payload_groups))


def _pr1_passage_csr(payload_groups, index_pages, pair, entry=None):
    if entry is None:
        entry = _pr1_decode_index_entry(index_pages, pair)
    return csr_for(
        assembly.reference_passage_graph(payload_groups, index_pages, pair, entry)
    )


@contextmanager
def _pr1_client_path():
    """Route scheme queries through the dict-merge reference assembly."""
    saved = (assembly.assemble_region_csr, assembly.assemble_passage_csr)
    assembly.assemble_region_csr = _pr1_region_csr
    assembly.assemble_passage_csr = _pr1_passage_csr
    try:
        yield
    finally:
        assembly.assemble_region_csr, assembly.assemble_passage_csr = saved


def run_scheme_query_microbench(num_nodes=1000, num_queries=80, seed=13):
    """End-to-end batched CI/PI queries: CSR-native pipeline vs. the PR 1 path.

    Both sides execute full engine batches (every PIR round, plan checks and
    all) over a hotspot workload — serving batches concentrate on popular
    source/destination pairs, which is exactly what the engine's decode cache
    exists for.  Only the client-side pipeline differs: direct CSR interning
    with page-level entry decoding and the assembled-subgraph cache, versus
    the PR 1 path (per-query index-entry decode, dict-based ``RoadNetwork``
    merge, per-query CSR compile).  PR 1's header/region decode caching is
    active on both sides.
    """
    network = random_planar_network(num_nodes, seed=seed)
    spec = SystemSpec(page_size=1024)
    pairs = generate_hotspot_workload(
        network, count=num_queries, seed=seed, hot_pairs=10, hot_fraction=0.75
    )
    results = {}
    for scheme_cls in (ConciseIndexScheme, PassageIndexScheme):
        scheme = scheme_cls.build(network, spec=spec)

        def run_fast():
            # a fresh engine per run: every repeat starts with a cold cache;
            # XOR serving pinned off — this measures the client pipeline
            engine = QueryEngine(scheme, pir_kernel="off")
            return engine.run_batch(pairs, verify_costs=False, pipeline=False)

        def run_reference():
            with _pr1_client_path():
                engine = QueryEngine(scheme, pir_kernel="off")
                return engine.run_batch(pairs, verify_costs=False, pipeline=False)

        fast_s, fast_batch = _time(run_fast)
        reference_s, reference_batch = _time(run_reference)
        for fast, reference in zip(fast_batch.results, reference_batch.results):
            assert fast.path.nodes == reference.path.nodes, \
                "CSR-native pipeline disagrees with the PR 1 client path"
            assert abs(fast.path.cost - reference.path.cost) <= 1e-9 * max(
                1.0, abs(reference.path.cost)
            )
        results[scheme.name] = {
            "nodes": num_nodes,
            "queries": num_queries,
            "fast_s": fast_s,
            "reference_s": reference_s,
            "speedup": reference_s / fast_s,
        }
    return results


def run_sharded_pir_microbench(num_nodes=1000, num_queries=80, num_shards=4, seed=13):
    """End-to-end sharded vs. unsharded PIR serving of a hotspot batch.

    Builds the CI database, pushes a hotspot workload through the batch
    engine, and extracts the *exact* PIR page-request stream the batch
    produced (every look-up, index, data and dummy retrieval of every
    query).  That stream is then served through the real two-server XOR PIR
    protocol twice: one monolithic database holding every page as a block,
    versus the same pages split across ``num_shards`` independent
    sub-databases (:class:`repro.pir.ShardedPir`).  Each unsharded retrieval
    costs the servers XOR work linear in the *whole* database; sharded
    retrievals only touch the owning shard, so batch throughput scales with
    the shard count — that is the scalability lever the sharded engine
    exists for.
    """
    network = random_planar_network(num_nodes, seed=seed)
    # a small page size yields a few hundred pages, the regime where the
    # servers' per-retrieval XOR work (linear in the database size) dominates
    spec = SystemSpec(page_size=256)
    scheme = ConciseIndexScheme.build(network, spec=spec)
    pairs = generate_hotspot_workload(
        network, count=num_queries, seed=seed, hot_pairs=10, hot_fraction=0.75
    )
    batch = QueryEngine(scheme, pir_kernel="off").run_batch(
        pairs, verify_costs=False, pipeline=False
    )

    # flatten the database into one block space: file -> global id offset
    blocks = []
    offsets = {}
    for file_name in sorted(scheme.database.file_names()):
        offsets[file_name] = len(blocks)
        page_file = scheme.database.file(file_name)
        blocks.extend(page_file.read_page(n) for n in range(page_file.num_pages))
    stream = [
        offsets[file_name] + page
        for result in batch.results
        for _, file_name, page in result.trace.private_page_requests()
    ]
    # the whole batch stream is thousands of retrievals; a deterministic
    # slice keeps the benchmark fast while preserving the hotspot shape
    stream = stream[:256]

    # pinned to the big-int kernel on both sides: this benchmark measures the
    # sharding topology (per-retrieval work linear in the owning database),
    # not the server kernel — the packed-kernel gain has its own benchmark
    unsharded = TwoServerXorPir(blocks, kernel="bigint")
    sharded = ShardedPir(blocks, num_shards, kernel="bigint")

    unsharded_s, unsharded_blocks = _time(lambda: unsharded.retrieve_many(stream))
    sharded_s, sharded_blocks = _time(lambda: sharded.retrieve_many(stream))

    expected = [blocks[index] for index in stream]
    assert unsharded_blocks == expected, "unsharded PIR returned wrong blocks"
    assert sharded_blocks == expected, "sharded PIR returned wrong blocks"

    return {
        "nodes": num_nodes,
        "queries": num_queries,
        "blocks": len(blocks),
        "shards": num_shards,
        "retrievals": len(stream),
        "fast_s": sharded_s,
        "reference_s": unsharded_s,
        "speedup": unsharded_s / sharded_s,
        "retrievals_per_s_sharded": len(stream) / sharded_s,
        "retrievals_per_s_unsharded": len(stream) / unsharded_s,
    }


def run_warm_pool_microbench(num_nodes=600, num_queries=24, workers=4, seed=23):
    """Consecutive ``worker_mode="process"`` batches on one engine.

    The first batch pays the persistent pool's one-time spin-up (process
    spawn plus the warm-import initializer); every later batch reuses the
    same executor.  The floored metric is ``reuse`` — 1.0 exactly when the
    second batch started no new executor (``SolvePool.starts`` stayed at
    one) — because executor reuse is deterministic where spin-up *timing*
    is noisy; the cold/warm delta is recorded for the record only.
    """
    network = random_planar_network(num_nodes, seed=seed)
    scheme = ConciseIndexScheme.build(network, spec=SystemSpec(page_size=1024))
    pairs = generate_hotspot_workload(
        network, count=num_queries, seed=seed, hot_pairs=8, hot_fraction=0.75
    )
    # XOR serving pinned off: this measures executor reuse, not PIR serving
    with QueryEngine(scheme, pir_kernel="off") as engine:
        def run_batch():
            return engine.run_batch(
                pairs, verify_costs=False, workers=workers, worker_mode="process"
            )

        # repeats=1: only the very first batch is cold
        cold_s, cold_batch = _time(run_batch, repeats=1)
        warm_s, warm_batch = _time(run_batch, repeats=3)
        starts = engine.solve_pool.starts

    for cold, warm in zip(cold_batch.results, warm_batch.results):
        assert cold.path.nodes == warm.path.nodes, \
            "warm-pool batch disagrees with the cold batch"
    return {
        "nodes": num_nodes,
        "queries": num_queries,
        "workers": workers,
        "fast_s": warm_s,
        "reference_s": cold_s,
        "speedup": cold_s / warm_s,
        "pool_starts": starts,
        "reuse": 1.0 if starts == 1 else 0.0,
    }


def run_xor_kernel_microbench(
    num_blocks=600, block_bytes=256, batch_sizes=(1, 8, 32, 128, 256), seed=19
):
    """Server-side mask answering: packed numpy kernel vs. the big-int fold.

    Draws the random subset-mask stream a two-server client would send over a
    database of ``num_blocks`` blocks and times the pure server hot path —
    ``answer_many`` over a batch of masks — for the big-int reference kernel
    and the packed bit-matrix kernel at every batch size of the curve.  The
    curve spans both packed strategies (the fancy-index table gather below
    ``GROUP_LOOP_MIN_BATCH``, the per-group accumulate loop above it); the
    headline speedup is read at the largest batch, the regime batched engine
    serving actually runs in.  Answers are asserted bit-identical per batch.

    Without numpy only the big-int side runs and the result records
    ``kernel == "bigint"`` with no speedup (the perf gate skips its floor).
    """
    rng = random.Random(seed)
    blocks = [
        bytes(rng.randrange(256) for _ in range(block_bytes)) for _ in range(num_blocks)
    ]
    masks = random_subset_masks(random.Random(seed), num_blocks, max(batch_sizes))

    bigint = make_kernel(blocks, kernel="bigint")
    packed = make_kernel(blocks, kernel="numpy") if numpy_available() else None

    curve = []
    for batch in batch_sizes:
        sample = masks[:batch]
        bigint_s, bigint_answers = _time(lambda: bigint.answer_many(sample))
        point = {
            "batch": batch,
            "bigint_s": bigint_s,
            "bigint_retrievals_per_s": batch / bigint_s,
        }
        if packed is not None:
            numpy_s, numpy_answers = _time(lambda: packed.answer_many(sample))
            assert numpy_answers == bigint_answers, \
                "packed kernel disagrees with the big-int oracle"
            point.update(
                numpy_s=numpy_s,
                numpy_retrievals_per_s=batch / numpy_s,
                speedup=bigint_s / numpy_s,
            )
        curve.append(point)

    result = {
        "blocks": num_blocks,
        "block_bytes": block_bytes,
        "kernel": "numpy" if packed is not None else "bigint",
        "curve": curve,
    }
    head = curve[-1]
    result["reference_s"] = head["bigint_s"]
    result["fast_s"] = head.get("numpy_s", head["bigint_s"])
    result["speedup"] = head.get("speedup", 1.0)
    return result


def run_tiled_fallback_microbench(
    num_blocks=8192, block_bytes=128, batch_sizes=(8, 32, 128, 512), seed=29
):
    """Beyond the table budget: tiled GF(2) product vs. the row-gather path.

    Packs a database with a zero group-table budget — the regime an
    over-budget shard lands in — and answers the same subset-mask stream
    through both fallback strategies at every batch size of the curve: the
    per-mask ``unpackbits`` row gather (the only fallback before this PR)
    and the tiled GF(2) mask-matrix × database product that replaced it for
    serving-sized batches.  The gather touches ~N/2 rows *per mask*, so its
    cost is linear in the batch; the tiled product pays one throwaway table
    build per tile for the *whole* batch, which is why the curve crosses
    over around ``TILED_MIN_BATCH`` and the headline speedup is read at the
    largest batch (the coalesced serving regime).  Every point is asserted
    bit-identical between both paths and against the big-int oracle.

    Without numpy there is no packed kernel at all; the result records
    ``kernel == "bigint"`` and the perf gate skips the floor.
    """
    from repro.pir.kernels import PackedDatabase

    rng = random.Random(seed)
    blocks = [
        bytes(rng.randrange(256) for _ in range(block_bytes)) for _ in range(num_blocks)
    ]
    if not numpy_available():
        return {
            "blocks": num_blocks,
            "block_bytes": block_bytes,
            "kernel": "bigint",
            "curve": [],
            "fast_s": 0.0,
            "reference_s": 0.0,
            "speedup": 1.0,
        }

    try:
        import numpy as np
    except ImportError:  # pragma: no cover - gated by numpy_available() above
        raise

    # max_table_bytes=0: no resident tables fit, exactly the over-budget
    # regime REPRO_PIR_MAX_TABLE_BYTES shrinks a real shard into
    pack = PackedDatabase.from_blocks(blocks, max_table_bytes=0)
    assert pack._tables is None, "pack unexpectedly fit resident tables"
    oracle = make_kernel(blocks, kernel="bigint")
    masks = random_subset_masks(random.Random(seed), num_blocks, max(batch_sizes))

    curve = []
    for batch in batch_sizes:
        sample = masks[:batch]
        matrix = pack._mask_matrix(sample)

        def run_gather():
            out = np.zeros((batch, pack.words), dtype=np.uint64)
            return pack._answer_rows_gather(matrix, out)

        def run_tiled():
            out = np.zeros((batch, pack.words), dtype=np.uint64)
            return pack._answer_rows_tiled(matrix, out)

        gather_s, gather_rows = _time(run_gather)
        tiled_s, tiled_rows = _time(run_tiled)
        tiled_answers = pack.rows_to_blocks(tiled_rows)
        assert tiled_answers == pack.rows_to_blocks(gather_rows), \
            "tiled product disagrees with the row gather"
        assert tiled_answers == oracle.answer_many(sample), \
            "fallback answers disagree with the big-int oracle"
        curve.append(
            {
                "batch": batch,
                "gather_s": gather_s,
                "tiled_s": tiled_s,
                "speedup": gather_s / tiled_s,
            }
        )

    head = curve[-1]
    return {
        "blocks": num_blocks,
        "block_bytes": block_bytes,
        "kernel": "numpy",
        "curve": curve,
        "fast_s": head["tiled_s"],
        "reference_s": head["gather_s"],
        "speedup": head["speedup"],
    }


def run_shared_pack_microbench(num_nodes=1000, num_shards=4, batch=32, seed=31):
    """Shared-memory shard packs: worker attach vs. per-worker rebuild.

    Builds the CI database, shards it four ways, and publishes every shard
    pack to the machine-wide shared-pack registry — exactly what the engine
    does before its first process batch.  The timed comparison is the cold
    first batch of a process worker, per shard of the largest file: attach
    to the published segment and answer a serving-sized mask batch, versus
    what every worker paid before this PR — repack the shard from its pages
    and answer the same batch.  Attaching maps O(1) shared memory where the
    rebuild re-reads and re-packs O(N) pages, so the floor (≥ 2x) is
    algorithmic, not a parallelism artifact.

    ``single_build`` is the deterministic registry claim: publishing built
    each pack exactly once machine-wide, and no attach ever built another
    (the registry's pack-build counter does not move).  Answers from the
    attached pack are asserted bit-identical to the rebuilt pack and the
    big-int oracle.  Without numpy there are no shared packs; the result
    records ``kernel == "bigint"`` and the perf gate skips both floors.
    """
    from repro.pir.kernels import PackedDatabase
    from repro.pir.sharded import ShardedPageStore

    network = random_planar_network(num_nodes, seed=seed)
    scheme = ConciseIndexScheme.build(network, spec=SystemSpec(page_size=256))
    if not numpy_available():
        return {
            "shards": num_shards,
            "kernel": "bigint",
            "fast_s": 0.0,
            "reference_s": 0.0,
            "speedup": 1.0,
            "single_build": 1.0,
        }

    from repro.pir import shared_pack_registry

    registry = shared_pack_registry()
    store = ShardedPageStore(scheme.database, num_shards=num_shards)
    file_name = max(store.maps, key=lambda name: store.maps[name].num_blocks)
    file_map = store.maps[file_name]

    builds_before = registry.pack_builds
    handles = store.publish_shard_packs(kernel="numpy")
    publish_builds = registry.pack_builds - builds_before
    pack_per_publish = publish_builds == len(handles) > 0

    # one serving-sized mask batch per shard of the largest file, plus the
    # raw pages each rebuild would re-pack
    shard_ids = list(range(file_map.num_shards))
    shard_blocks, shard_masks = {}, {}
    page_file = scheme.database.file(file_name)
    for shard_id in shard_ids:
        page_numbers = [
            file_map.global_index(shard_id, local)
            for local in range(file_map.shard_sizes()[shard_id])
        ]
        shard_blocks[shard_id] = page_file.read_pages_batch(page_numbers)
        shard_masks[shard_id] = random_subset_masks(
            random.Random(seed + shard_id), len(page_numbers), batch
        )
    shard_handles = {
        key[4]: handle for key, handle in handles.items() if key[1] == file_name
    }
    assert sorted(shard_handles) == shard_ids, "missing shard handles"

    def attach_cold_batches():
        answers = []
        for shard_id in shard_ids:
            pack = PackedDatabase.attach(shard_handles[shard_id])
            answers.append(pack.answer_many(shard_masks[shard_id]))
            pack.close_shared(unlink=False)
        return answers

    builds_pre_attach = registry.pack_builds
    attach_s, attached_answers = _time(attach_cold_batches)
    attach_built = registry.pack_builds != builds_pre_attach
    single_build = 1.0 if pack_per_publish and not attach_built else 0.0

    def rebuild_cold_batches():
        return [
            PackedDatabase.from_blocks(shard_blocks[shard_id]).answer_many(
                shard_masks[shard_id]
            )
            for shard_id in shard_ids
        ]

    rebuild_s, rebuilt_answers = _time(rebuild_cold_batches)
    registry.unpublish(handles)

    assert attached_answers == rebuilt_answers, \
        "attached pack disagrees with the rebuilt pack"
    for shard_id, answers in zip(shard_ids, attached_answers):
        oracle = make_kernel(shard_blocks[shard_id], kernel="bigint")
        assert answers == oracle.answer_many(shard_masks[shard_id]), \
            "shared pack disagrees with the big-int oracle"

    return {
        "shards": num_shards,
        "kernel": "numpy",
        "file": file_name,
        "file_pages": file_map.num_blocks,
        "batch": batch,
        "published_packs": len(handles),
        "fast_s": attach_s,
        "reference_s": rebuild_s,
        "speedup": rebuild_s / attach_s,
        "single_build": single_build,
    }


def run_store_backend_microbench(num_pages=1024, page_bytes=1024, reads=2048, seed=17):
    """Page-store backends: append and read throughput, batch vs. per-page loop.

    Appends the same page set to every backend (memory, mmap, SQLite), then
    serves an identical random read stream twice — once as a per-page
    ``get_page`` loop and once through ``get_pages_batch`` — and reports
    pages/s for each.  Every backend must return byte-identical pages; there
    is deliberately no speed floor for the disk backends, whose point is
    capacity (out-of-core databases), not speed.
    """
    import contextlib
    import tempfile

    from repro.storage import open_page_store

    rng = random.Random(seed)
    payloads = [
        bytes(rng.randrange(256) for _ in range(rng.randrange(1, page_bytes + 1)))
        for _ in range(num_pages)
    ]
    stream = [rng.randrange(num_pages) for _ in range(reads)]
    expected = None
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-storebench-") as directory:
        for backend in ("memory", "mmap", "sqlite"):
            with contextlib.closing(
                open_page_store(
                    backend, "bench", page_size=page_bytes, directory=directory
                )
            ) as store:
                append_started = time.perf_counter()
                for payload in payloads:
                    store.append_page(payload)
                store.flush()
                append_s = time.perf_counter() - append_started

                loop_s, loop_pages = _time(lambda: [store.get_page(n) for n in stream])
                batch_s, batch_pages = _time(lambda: store.get_pages_batch(stream))

            assert loop_pages == batch_pages, f"{backend}: batch disagrees with loop"
            if expected is None:
                expected = loop_pages
            assert loop_pages == expected, f"{backend}: pages differ from memory backend"
            results[f"store_{backend}"] = {
                "pages": num_pages,
                "page_bytes": page_bytes,
                "reads": reads,
                "append_pages_per_s": num_pages / append_s,
                "loop_pages_per_s": reads / loop_s,
                "batch_pages_per_s": reads / batch_s,
                "fast_s": batch_s,
                "reference_s": loop_s,
                "speedup": loop_s / batch_s,
            }
    return results


def _format(name, result):
    return (
        f"{name}: reference {result['reference_s'] * 1000:.1f} ms, "
        f"fast {result['fast_s'] * 1000:.1f} ms, "
        f"speedup {result['speedup']:.1f}x"
    )


def _run_all():
    dijkstra = run_dijkstra_microbench()
    pir = run_pir_microbench()
    schemes = run_scheme_query_microbench()
    sharded = run_sharded_pir_microbench()
    results = {"dijkstra": dijkstra, "xor_pir": pir}
    results.update({f"batch_{name}": result for name, result in schemes.items()})
    results["sharded_pir"] = sharded
    results["xor_kernel"] = run_xor_kernel_microbench()
    results["tiled_fallback"] = run_tiled_fallback_microbench()
    results["shared_pack"] = run_shared_pack_microbench()
    results["warm_pool"] = run_warm_pool_microbench()
    results.update(run_store_backend_microbench())
    return results


def test_fastpath_microbench(record_result):
    results = _run_all()
    text = "\n".join(_format(name, result) for name, result in results.items()) + "\n"
    record_result("micro_fastpath", text, data=results)
    # every floored metric (substrate, end-to-end pipelines, sharding, the
    # packed server kernel) is checked through the shared per-metric registry;
    # floors sit well below typically observed speedups, so the gate stays
    # robust on slow/loaded machines — see benchmarks/perf_gate.py
    from perf_gate import check_floors

    violations = check_floors({"micro_fastpath": results})
    assert not violations, "; ".join(violations)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write benchmarks/results/micro_fastpath.json",
    )
    args = parser.parse_args()
    all_results = _run_all()
    for result_name, result in all_results.items():
        print(_format(result_name, result))
    if args.json:
        from conftest import RESULTS_DIR, write_json_result

        RESULTS_DIR.mkdir(exist_ok=True)
        path = write_json_result(RESULTS_DIR, "micro_fastpath", all_results)
        print(f"json written: {path}")
