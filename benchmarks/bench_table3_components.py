"""Table 3: response-time components of AF, LM, CI and PI on Argentina."""

from repro.bench import format_table, table3_components

from conftest import run_once


def test_table3_components(benchmark, record_result):
    rows = run_once(benchmark, table3_components, num_queries=25)
    record_result(
        "table3_components",
        format_table(rows, "Table 3: response-time components (Argentina stand-in)"),
        data=rows,
    )
    by_scheme = {row["scheme"]: row for row in rows}

    # every scheme answers correctly and leaks nothing
    assert all(row["costs_correct"] for row in rows)
    assert all(row["indistinguishable"] for row in rows)

    # the paper's ordering: PI fastest, then CI, then the LM/AF baselines
    assert by_scheme["PI"]["response_s"] < by_scheme["CI"]["response_s"]
    assert by_scheme["CI"]["response_s"] < by_scheme["LM"]["response_s"]
    assert by_scheme["CI"]["response_s"] < by_scheme["AF"]["response_s"]

    # PI trades space for speed: its database is by far the largest
    assert by_scheme["PI"]["storage_mb"] > 10 * by_scheme["CI"]["storage_mb"]

    # the baselines read a large fraction of the region data file per query
    for baseline in ("AF", "LM"):
        row = by_scheme[baseline]
        assert row["data_pages_per_query"] >= 0.4 * row["data_file_pages"]
