"""Section 4 claim: full materialisation exceeds the PIR interface limits."""

from repro.bench import format_table, section4_full_materialization

from conftest import run_once


def test_section4_full_materialization(benchmark, record_result):
    rows = run_once(benchmark, section4_full_materialization)
    record_result(
        "section4_full_materialization",
        format_table(rows, "Section 4: space needed to materialise all shortest paths"),
        data=rows,
    )
    assert len(rows) == 3
    for row in rows:
        # at paper scale every network blows through the 2.5 GByte PIR limit
        assert row["paper_scale_times_over_limit"] > 1.0
    oldenburg = rows[0]
    # the paper quotes ~20 GByte for Oldenburg; the extrapolation lands in the
    # same order of magnitude (a handful to a few tens of GiB)
    assert 2.0 < oldenburg["paper_scale_gib"] < 200.0
