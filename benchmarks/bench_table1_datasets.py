"""Table 1: the road networks (paper sizes vs. generated stand-ins)."""

from repro.bench import format_table, table1_datasets

from conftest import run_once


def test_table1_datasets(benchmark, record_result):
    rows = run_once(benchmark, table1_datasets)
    record_result("table1_datasets", format_table(rows, "Table 1: road networks"), data=rows)
    assert len(rows) == 6
    for row in rows:
        assert row["generated_nodes"] > 0
        assert 0.9 < row["edge_factor"] < 1.3
