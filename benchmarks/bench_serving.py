"""Benchmark: the asyncio PIR shard service under open-loop load.

Boots a four-shard :class:`repro.serving.ShardCluster` over a real CI scheme
database and measures two things the serving layer promises:

* **Throughput/latency** — the open-loop load generator offers a fixed
  arrival rate of full two-server XOR retrievals (every page verified
  against the database) and reports sustained retrievals/s with p50/p99/max
  latency.  The committed floor requires >= 1k retrievals/s at 4 shards
  wherever numpy serves the packed kernel.
* **Transport transparency** — one engine batch served through the cluster
  must be bit-identical (paths, costs, adversary views) to the same batch
  served in process; ``bit_identical`` is floored at 1.0 unconditionally.

Run directly (``PYTHONPATH=src python benchmarks/bench_serving.py``, add
``--json`` to also write ``benchmarks/results/serving.json``) or through
pytest, which records both result files and applies the metric floors.
"""

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.bench.workloads import generate_workload
from repro.network import random_planar_network
from repro.pir import resolve_kernel
from repro.schemes import ConciseIndexScheme
from repro.serving import ShardCluster, run_loadgen

#: Offered arrival rate — comfortably above the 1k floor; the floored
#: metric counts in-window arrivals that completed (all of them must, and
#: correctly), while the unfloored service rate records how fast the
#: machine actually drained them.
OFFERED_RATE = 1500.0
NUM_SHARDS = 4
DURATION_S = 2.0
WARMUP_S = 0.5
#: Per-server answer threads — 2 exercises the kernel sub-call split under
#: load (bit-identity is invariant I2 regardless of the thread count); the
#: parallel *gain* is machine-dependent and deliberately not floored.
ANSWER_THREADS = 2


def _build_scheme(num_nodes=1000, seed=13):
    network = random_planar_network(num_nodes, seed=seed)
    # a small page size yields several hundred pages, so the four shard
    # slices (and the masks the wire carries) stay non-trivial
    return ConciseIndexScheme.build(network, spec=SystemSpec(page_size=256))


def _batch_fingerprint(batch):
    return [
        (result.path.nodes, round(result.path.cost, 9), result.trace.adversary_view())
        for result in batch.results
    ]


def run_serving_benchmark(
    num_nodes=1000,
    num_shards=NUM_SHARDS,
    rate=OFFERED_RATE,
    duration_s=DURATION_S,
    warmup_s=WARMUP_S,
    num_queries=12,
    answer_threads=ANSWER_THREADS,
    seed=13,
):
    scheme = _build_scheme(num_nodes=num_nodes, seed=seed)
    kernel = resolve_kernel("auto")
    pairs = generate_workload(scheme.network, count=num_queries, seed=seed)
    baseline = _batch_fingerprint(
        QueryEngine(scheme).run_batch(pairs, verify_costs=False)
    )

    with ShardCluster(
        scheme.database,
        num_shards=num_shards,
        kernel=kernel,
        answer_threads=answer_threads,
    ) as cluster:
        report = run_loadgen(
            cluster.addresses,
            scheme.database,
            rate=rate,
            duration_s=duration_s,
            warmup_s=warmup_s,
            connections=16,
            seed=17,
            verify=True,
        )
        report.shard_stats = cluster.stats()
        with QueryEngine(scheme, serving=cluster) as engine:
            remote_batch = engine.run_batch(pairs, verify_costs=False, workers=2)

    assert report.errors == 0, "shard servers answered errors under load"
    assert report.mismatches == 0, "serving returned wrong page bytes"
    assert remote_batch.remote
    bit_identical = 1.0 if _batch_fingerprint(remote_batch) == baseline else 0.0

    return {
        "kernel": kernel,
        "shards": num_shards,
        "file": report.file_name,
        "offered_rate": report.offered_rate,
        "arrivals": report.arrivals,
        "completed": report.completed,
        "busy": report.busy,
        "errors": report.errors,
        "mismatches": report.mismatches,
        "retrievals_per_s": report.retrievals_per_s,
        "service_rate_per_s": report.service_rate_per_s,
        "p50_ms": report.p50_ms,
        "p99_ms": report.p99_ms,
        "max_ms": report.max_ms,
        "coalesced_flushes": sum(s["flushes"] for s in report.shard_stats),
        "masks_answered": sum(s["masks_answered"] for s in report.shard_stats),
        "largest_flush": max(s["largest_flush"] for s in report.shard_stats),
        "answer_threads": answer_threads,
        "kernel_subcalls": sum(s["kernel_subcalls"] for s in report.shard_stats),
        "engine_queries": num_queries,
        "bit_identical": bit_identical,
    }


def _format(results):
    return (
        f"serving: {results['shards']} shards, {results['kernel']} kernel, "
        f"{results['offered_rate']:g}/s offered\n"
        f"  sustained {results['retrievals_per_s']:,.0f} retrievals/s, "
        f"service rate {results['service_rate_per_s']:,.0f}/s "
        f"(p50 {results['p50_ms']:.2f} ms, p99 {results['p99_ms']:.2f} ms, "
        f"max {results['max_ms']:.2f} ms)\n"
        f"  {results['arrivals']} arrivals, {results['busy']} busy, "
        f"{results['errors']} errors, {results['mismatches']} mismatches; "
        f"{results['masks_answered']} masks in {results['coalesced_flushes']} "
        f"flushes (largest {results['largest_flush']}); "
        f"{results['answer_threads']} answer thread(s), "
        f"{results['kernel_subcalls']} kernel sub-calls\n"
        f"  engine batch over TCP bit-identical to in-process: "
        f"{bool(results['bit_identical'])}\n"
    )


def test_serving_benchmark(record_result):
    results = run_serving_benchmark()
    record_result("serving", _format(results), data=results)
    from perf_gate import check_floors

    violations = check_floors({"serving": results})
    assert not violations, "; ".join(violations)


if __name__ == "__main__":
    import argparse
    import sys

    from conftest import RESULTS_DIR, write_json_result
    from perf_gate import check_floors

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", action="store_true",
        help="also write benchmarks/results/serving.json",
    )
    args = parser.parse_args()
    results = run_serving_benchmark()
    text = _format(results)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving.txt").write_text(text, encoding="utf-8")
    if args.json:
        write_json_result(RESULTS_DIR, "serving", results)
    violations = check_floors({"serving": results})
    if violations:
        sys.exit("; ".join(violations))
