"""Ablation (future work): Approximate Passage Index versus exact PI."""

from repro.bench import ablation_approximate, format_table

from conftest import run_once

EPSILONS = (0.0, 0.25, 0.5)


def test_ablation_approximate(benchmark, record_result):
    rows = run_once(
        benchmark, ablation_approximate, dataset="oldenburg", epsilons=EPSILONS, num_queries=15
    )
    record_result(
        "ablation_approximate",
        format_table(rows, "Ablation: APX (bounded deviation) vs exact PI (Oldenburg)"),
        data=rows,
    )
    exact = rows[0]
    assert exact["scheme"] == "PI (exact)"
    for row in rows[1:]:
        # the deviation bound holds empirically and the index never grows
        assert row["max_deviation"] <= 1.0 + row["epsilon"] + 1e-3
        assert row["index_pages"] <= exact["index_pages"]
        assert row["storage_mb"] <= exact["storage_mb"] + 1e-6
