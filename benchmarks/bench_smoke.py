"""Benchmark smoke target: one tiny figure run under a hard time cap.

Run next to the tier-1 pytest command (see ROADMAP.md) to make performance
regressions fail loudly:

    PYTHONPATH=src python -m pytest benchmarks/bench_smoke.py -q

It regenerates a scaled-down Figure 7 (one dataset, a handful of queries)
through the full pipeline — dataset generation, partitioning, precomputation,
scheme builds, batched query execution and verification — and fails if the
run exceeds the cap.  The cap is deliberately loose (an order of magnitude
above the typical runtime) so only pathological slowdowns trip it.
"""

import time

from repro.bench import fig7_datasets

#: Hard wall-clock cap in seconds; typical runtime is a few seconds.
SMOKE_TIME_CAP_S = 90.0


def test_fig7_smoke_under_time_cap():
    started = time.perf_counter()
    rows = fig7_datasets(datasets=("oldenburg",), num_queries=4)
    elapsed = time.perf_counter() - started

    assert rows, "smoke experiment produced no rows"
    schemes = {row["scheme"] for row in rows}
    assert {"AF", "LM", "CI", "PI"} <= schemes
    assert all(row["response_s"] > 0 for row in rows)
    assert elapsed < SMOKE_TIME_CAP_S, (
        f"benchmark smoke run took {elapsed:.1f}s, cap is {SMOKE_TIME_CAP_S:.0f}s — "
        "a performance regression made the pipeline pathologically slow"
    )


def test_committed_baselines_meet_metric_floors():
    """The checked-in ``results/*.json`` baselines pass the per-metric gate.

    This trips when a PR commits regressed benchmark numbers (or drops a
    gated metric from a result file) even if the benchmark suite itself was
    not rerun in CI — the failure message names the specific metric.
    """
    from perf_gate import gate_committed_results

    violations = gate_committed_results()
    assert not violations, "; ".join(violations)


if __name__ == "__main__":
    test_fig7_smoke_under_time_cap()
    test_committed_baselines_meet_metric_floors()
    print("smoke ok")
