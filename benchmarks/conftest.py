"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper via the
experiment functions in :mod:`repro.bench.experiments`, times the regeneration
once (the experiment functions are deterministic and heavy, so a single
iteration is the meaningful measurement), and writes the resulting rows —
the same rows/series the paper reports — to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_json_result(results_dir: Path, name: str, data) -> Path:
    """Write ``results/<name>.json``: a machine-readable result envelope.

    The envelope records the benchmark name, a UNIX timestamp and the raw
    rows/series the benchmark produced, so external tooling can track the
    performance trajectory across commits without parsing the text reports.
    """
    path = results_dir / f"{name}.json"
    envelope = {"benchmark": name, "recorded_at": time.time(), "data": data}
    path.write_text(json.dumps(envelope, indent=2, default=str) + "\n", encoding="utf-8")
    return path


@pytest.fixture()
def record_result(results_dir):
    """Write a named, human-readable result file and echo it to stdout.

    When ``data`` is given (the raw rows/series behind the text report), a
    machine-readable ``results/<name>.json`` twin is written as well.
    """

    def _record(name: str, text: str, data=None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        if data is not None:
            write_json_result(results_dir, name, data)
        print(f"\n===== {name} =====\n{text}")

    return _record


def run_once(benchmark, function, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, kwargs=kwargs, rounds=1, iterations=1)
