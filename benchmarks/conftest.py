"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper via the
experiment functions in :mod:`repro.bench.experiments`, times the regeneration
once (the experiment functions are deterministic and heavy, so a single
iteration is the meaningful measurement), and writes the resulting rows —
the same rows/series the paper reports — to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write a named, human-readable result file and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text, encoding="utf-8")
        print(f"\n===== {name} =====\n{text}")

    return _record


def run_once(benchmark, function, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, kwargs=kwargs, rounds=1, iterations=1)
