"""Figure 11: the PI* scheme on Denmark — response time and space vs. cluster pages."""

from repro.bench import fig11_clustered, format_table

from conftest import run_once


def test_fig11_clustered(benchmark, record_result):
    data = run_once(benchmark, fig11_clustered, cluster_sizes=(2, 4, 8, 16), num_queries=25)
    text = format_table(
        data["clustered"], "Figure 11: PI* response time and space vs. number of cluster pages"
    )
    text += (
        f"\nCI reference: response = {data['ci_response_s']} s, "
        f"storage = {data['ci_storage_mb']} MB\n"
    )
    record_result("fig11_clustered", text, data=data)

    rows = data["clustered"]
    # larger clusters mean fewer regions and a smaller network index ...
    regions = [row["regions"] for row in rows]
    storage = [row["storage_mb"] for row in rows]
    assert regions == sorted(regions, reverse=True)
    assert storage == sorted(storage, reverse=True)
    # ... but a slower response (more region-data pages fetched per query)
    assert rows[0]["response_s"] <= rows[-1]["response_s"]
    # the smallest cluster size is much faster than CI
    assert rows[0]["response_s"] < data["ci_response_s"]
