"""Per-metric performance regression gate over the committed benchmark results.

``METRIC_FLOORS`` is the single registry of speedup floors the repository
promises; :func:`check_floors` evaluates a result set against it and returns
one violation string per failed metric — naming the benchmark, the metric
path and both the measured value and its floor, so CI output says *which*
metric regressed rather than just that something did.

Two call sites use the registry:

* ``bench_micro_fastpath.py`` gates the fresh numbers it just measured;
* ``bench_smoke.py`` (and the CI workflow, via ``python benchmarks/
  perf_gate.py``) re-checks the *committed* ``benchmarks/results/*.json``
  baselines — a PR that commits regressed baselines fails even when the
  benchmark suite itself was not rerun.

Floors are deliberately far below typically observed values so the gate only
trips on real regressions, not machine noise.  Conditional floors (the packed
XOR kernel exists only where numpy does) are expressed with ``when``: a
(path, value) equality guard on the same benchmark's data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

RESULTS_DIR = Path(__file__).parent / "results"


class MetricFloor:
    """A lower bound on one dotted metric path of one benchmark's data."""

    def __init__(self, path: str, floor: float, when: Optional[Tuple[str, object]] = None):
        self.path = path
        self.floor = floor
        #: Optional (path, value) guard: the floor applies only when the
        #: benchmark's data carries that value (e.g. the numpy kernel ran).
        self.when = when


#: benchmark name (== results/<name>.json) -> floors over its ``data``.
METRIC_FLOORS: Dict[str, List[MetricFloor]] = {
    "micro_fastpath": [
        MetricFloor("dijkstra.speedup", 3.0),
        MetricFloor("xor_pir.speedup", 3.0),
        MetricFloor("batch_CI.speedup", 2.0),
        MetricFloor("batch_PI.speedup", 2.0),
        MetricFloor("sharded_pir.speedup", 1.5),
        # the vectorized server kernel: >=10x over the big-int fold at the
        # largest batch of the curve, wherever numpy exists to build it
        MetricFloor("xor_kernel.speedup", 10.0, when=("xor_kernel.kernel", "numpy")),
        # beyond the table budget: the tiled GF(2) product must beat the
        # per-mask row gather >=3x at the largest (serving-sized) batch
        MetricFloor(
            "tiled_fallback.speedup", 3.0, when=("tiled_fallback.kernel", "numpy")
        ),
        # shared shard packs: a worker's cold batch over attached segments
        # beats the per-worker rebuild >=2x at 4 shards, and publishing
        # built each pack exactly once machine-wide (attaches build none)
        MetricFloor("shared_pack.speedup", 2.0, when=("shared_pack.kernel", "numpy")),
        MetricFloor(
            "shared_pack.single_build", 1.0, when=("shared_pack.kernel", "numpy")
        ),
        # the persistent solve pool: the second consecutive process batch
        # must reuse the first batch's executor (1.0 == exactly one pool
        # start across both batches; timing deliberately not floored)
        MetricFloor("warm_pool.reuse", 1.0),
    ],
    "serving": [
        # the asyncio shard service: sustained open-loop throughput at 4
        # shards, floored only where numpy serves the packed kernel
        MetricFloor("retrievals_per_s", 1000.0, when=("kernel", "numpy")),
        # engine batches over TCP are bit-identical to in-process serving
        MetricFloor("bit_identical", 1.0),
    ],
}


def _lookup(data, path: str):
    """Resolve a dotted path into nested dicts; None when any hop is absent."""
    node = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_floors(
    results: Dict[str, dict],
    only: Optional[str] = None,
    require_registered: bool = False,
) -> List[str]:
    """Violation messages for every floored metric ``results`` fails.

    ``results`` maps benchmark names to their ``data`` payloads.  Benchmarks
    without registered floors pass untouched; a *registered* benchmark whose
    metric is missing is itself a violation (a silently dropped metric must
    not pass the gate).  ``only`` restricts the check to metric paths with
    that prefix — for call sites that measured a single benchmark function
    rather than a full result set.

    ``require_registered`` additionally makes a registered benchmark that is
    absent from ``results`` a violation.  The committed-baseline gate sets it:
    deleting ``results/micro_fastpath.json`` must not silently disable every
    floor it carries.  Call sites that deliberately pass a partial result set
    (a single freshly measured benchmark) keep the permissive default.
    """
    violations = []
    for benchmark, floors in METRIC_FLOORS.items():
        data = results.get(benchmark)
        if data is None:
            if require_registered:
                violations.append(
                    f"{benchmark}: registered benchmark is missing from the "
                    f"result set ({len(floors)} floor(s) unchecked)"
                )
            continue
        for metric in floors:
            if only is not None and not metric.path.startswith(only):
                continue
            if metric.when is not None:
                guard_path, guard_value = metric.when
                if _lookup(data, guard_path) != guard_value:
                    continue
            value = _lookup(data, metric.path)
            if value is None:
                violations.append(
                    f"{benchmark}: metric {metric.path!r} is missing "
                    f"(floor {metric.floor:g})"
                )
            elif float(value) < metric.floor:
                violations.append(
                    f"{benchmark}: {metric.path} = {float(value):.2f} is below "
                    f"its floor of {metric.floor:g}"
                )
    return violations


def load_committed_results(
    results_dir: Path = RESULTS_DIR,
) -> Tuple[Dict[str, dict], List[str]]:
    """The ``data`` payloads of every committed ``results/*.json`` envelope.

    Returns ``(results, problems)``.  A baseline file that cannot be parsed —
    malformed JSON, or an envelope that is not a JSON object — is reported as
    a problem string instead of raising: a truncated commit of a results file
    must fail the gate with a message naming the file, not a traceback.
    """
    results: Dict[str, dict] = {}
    problems: List[str] = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            problems.append(f"{path.name}: unreadable baseline ({exc})")
            continue
        if not isinstance(envelope, dict):
            problems.append(
                f"{path.name}: baseline envelope is "
                f"{type(envelope).__name__}, expected a JSON object"
            )
            continue
        # ``data`` may be a list for table-style benchmarks without floors;
        # _lookup treats non-dict payloads as "metric absent", so a floored
        # benchmark with a mangled payload still fails its metric checks.
        benchmark = envelope.get("benchmark", path.stem)
        results[str(benchmark)] = envelope.get("data", {})
    return results, problems


def gate_committed_results(results_dir: Path = RESULTS_DIR) -> List[str]:
    """Check the committed baselines; returns the violations (empty = pass)."""
    results, problems = load_committed_results(results_dir)
    if not results and not problems:
        return [f"no committed benchmark baselines found under {results_dir}"]
    return problems + check_floors(results, require_registered=True)


if __name__ == "__main__":
    import sys

    problems = gate_committed_results()
    for problem in problems:
        print(f"PERF GATE: {problem}")
    if problems:
        sys.exit(1)
    print(f"perf gate ok: committed baselines meet every registered floor")
