"""Out-of-core benchmark: stream a continental-scale network onto disk.

Streams a grid network through :func:`repro.storage.stream_node_database`
onto the mmap and SQLite page-store backends and measures build time, build
throughput and peak RSS against the resulting database size.  The headline
claim of the storage-layer refactor is that the build is truly streaming:
only the tail page is ever resident, so a database far larger than the
process's memory footprint builds without swapping.

The committed ``results/out_of_core.json`` was produced by the standalone
full-scale run (10⁶ nodes, the scale of the paper's largest road networks):

    PYTHONPATH=src python benchmarks/bench_out_of_core.py --json

The pytest wrapper runs a scaled-down build (override with
``REPRO_OOC_NODES``) so it stays CI-friendly; RSS-vs-size is only asserted
when the database actually dwarfs the interpreter's baseline footprint.
"""

import contextlib
import math
import os
import resource
import tempfile
import time

from repro.network import stream_grid_network
from repro.storage import iter_node_records, open_page_store, stream_node_database

#: Default page/record geometry: 4 KiB pages, every node padded to 512 bytes
#: (a realistic region-payload footprint), so 10⁶ nodes ≈ 512 MB of pages.
PAGE_SIZE = 4096
PAYLOAD_PAD = 512


def _rss_bytes():
    """Peak RSS of this process so far (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_out_of_core_build(backend, num_nodes=1_000_000, directory=None):
    """Stream a ~``num_nodes`` grid onto ``backend``; returns the metrics dict."""
    side = int(math.sqrt(num_nodes))
    rss_before = _rss_bytes()

    def build(store_dir):
        started = time.perf_counter()
        database, count = stream_node_database(
            stream_grid_network(side, side, seed=0),
            page_size=PAGE_SIZE,
            store_backend=backend,
            store_dir=store_dir,
            payload_pad=PAYLOAD_PAD,
        )
        build_s = time.perf_counter() - started

        with contextlib.closing(database):
            data_file = database.file("data")
            db_bytes = data_file.num_pages * PAGE_SIZE
            # spot-check the stream round-trips: first records decode in order
            for expected_id, record in zip(range(64), iter_node_records(database)):
                assert record[0] == expected_id, "streamed records decode out of order"

        # durability: the store file reopens with the same page population
        with contextlib.closing(
            open_page_store(backend, "data", directory=store_dir, create=False)
        ) as reopened:
            assert reopened.num_pages == data_file.num_pages

        return {
            "backend": backend,
            "nodes": count,
            "page_size": PAGE_SIZE,
            "payload_pad": PAYLOAD_PAD,
            "pages": data_file.num_pages,
            "db_mb": db_bytes / 2**20,
            "build_s": build_s,
            "nodes_per_s": count / build_s,
            "rss_before_mb": rss_before / 2**20,
            "rss_peak_mb": _rss_bytes() / 2**20,
        }

    if directory is not None:
        return build(directory)
    with tempfile.TemporaryDirectory(prefix=f"repro-ooc-{backend}-") as tmp:
        return build(tmp)


def _format(result):
    return (
        f"{result['backend']}: {result['nodes']} nodes -> "
        f"{result['db_mb']:.0f} MB in {result['build_s']:.1f}s "
        f"({result['nodes_per_s']:.0f} nodes/s), "
        f"peak RSS {result['rss_peak_mb']:.0f} MB"
    )


def test_out_of_core_build(record_result):
    num_nodes = int(os.environ.get("REPRO_OOC_NODES", "90000"))
    results = {
        backend: run_out_of_core_build(backend, num_nodes=num_nodes)
        for backend in ("mmap", "sqlite")
    }
    text = "\n".join(_format(result) for result in results.values()) + "\n"
    record_result("out_of_core", text, data=results)
    for result in results.values():
        # the streaming claim: once the database is big enough that holding it
        # in RAM would visibly move the needle, peak RSS must stay below it
        if result["db_mb"] > 2 * result["rss_before_mb"]:
            assert result["rss_peak_mb"] < result["db_mb"], (
                f"{result['backend']} build was not streaming: peak RSS "
                f"{result['rss_peak_mb']:.0f} MB vs {result['db_mb']:.0f} MB database"
            )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1_000_000)
    parser.add_argument(
        "--json", action="store_true", help="also write benchmarks/results/out_of_core.json"
    )
    args = parser.parse_args()
    all_results = {}
    for bench_backend in ("mmap", "sqlite"):
        all_results[bench_backend] = run_out_of_core_build(
            bench_backend, num_nodes=args.nodes
        )
        print(_format(all_results[bench_backend]))
        db_mb = all_results[bench_backend]["db_mb"]
        peak_mb = all_results[bench_backend]["rss_peak_mb"]
        assert peak_mb < db_mb, "build was not streaming"
    if args.json:
        from conftest import RESULTS_DIR, write_json_result

        RESULTS_DIR.mkdir(exist_ok=True)
        path = write_json_result(RESULTS_DIR, "out_of_core", all_results)
        print(f"json written: {path}")
