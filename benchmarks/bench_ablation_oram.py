"""Ablation: the real square-root ORAM mechanism behind the PIR black box."""

from repro.bench import ablation_oram_mechanism, format_table

from conftest import run_once


def test_ablation_oram_mechanism(benchmark, record_result):
    rows = run_once(benchmark, ablation_oram_mechanism)
    record_result(
        "ablation_oram_mechanism",
        format_table(rows, "Ablation: square-root ORAM physical cost vs trivial scan"),
        data=rows,
    )
    for row in rows:
        # online cost is O(sqrt N) slots per access versus N for the scan
        assert row["online_per_access"] < row["trivial_scan_per_access"]
    # the online advantage grows with the database size
    first, last = rows[0], rows[-1]
    assert (
        last["trivial_scan_per_access"] / last["online_per_access"]
        > first["trivial_scan_per_access"] / first["online_per_access"]
    )
