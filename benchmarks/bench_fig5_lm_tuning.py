"""Figure 5: LM fine-tuning — response time and space vs. number of landmarks."""

from repro.bench import fig5_lm_tuning, format_table

from conftest import run_once


def test_fig5_lm_tuning(benchmark, record_result):
    rows = run_once(benchmark, fig5_lm_tuning, landmark_counts=(1, 2, 5, 10, 20), num_queries=25)
    record_result(
        "fig5_lm_tuning",
        format_table(rows, "Figure 5: LM response time and space vs. number of landmarks (Argentina)"),
        data=rows,
    )
    # space grows monotonically with the number of landmarks (Figure 5b)
    storage = [row["storage_mb"] for row in rows]
    assert storage == sorted(storage)
    # too few landmarks hurt response time (Figure 5a): the 1-landmark point is
    # no better than the best configuration
    best = min(row["response_s"] for row in rows)
    assert rows[0]["response_s"] >= best
