"""Figure 12: CI, HY and PI* on the three larger road networks."""

from repro.bench import fig12_larger, format_table

from conftest import run_once


def test_fig12_larger(benchmark, record_result):
    rows = run_once(benchmark, fig12_larger, num_queries=25)
    record_result(
        "fig12_larger",
        format_table(rows, "Figure 12: response time and space on Denmark / India / North America"),
        data=rows,
    )
    by_key = {(row["dataset"], row["scheme"]): row for row in rows}
    for dataset in ("Den.", "Ind.", "Nor."):
        # PI* achieves the fastest query processing in all cases (paper, Section 7.5)
        assert by_key[(dataset, "PI*")]["response_s"] <= by_key[(dataset, "CI")]["response_s"]
        # HY trades extra space for a response no worse than CI's
        assert by_key[(dataset, "HY")]["response_s"] <= by_key[(dataset, "CI")]["response_s"] * 1.15
        assert by_key[(dataset, "HY")]["storage_mb"] >= by_key[(dataset, "CI")]["storage_mb"]
