"""Tests for the response-time cost model."""

import pytest

from repro.costmodel import (
    CostModel,
    ResponseTime,
    SystemSpec,
    communication_time,
    pir_page_retrieval_time,
    plain_page_read_time,
)


class TestPirPageRetrievalTime:
    def test_grows_with_file_size(self):
        spec = SystemSpec()
        small = pir_page_retrieval_time(1024, spec)
        large = pir_page_retrieval_time(1024 * 1024, spec)
        assert large > small

    def test_gigabyte_file_costs_on_the_order_of_a_second(self):
        """The paper reports ~1 s per page for a GByte file on the IBM 4764."""
        spec = SystemSpec()
        pages_in_gigabyte = 2**30 // spec.page_size
        cost = pir_page_retrieval_time(pages_in_gigabyte, spec)
        assert 0.3 < cost < 3.0

    def test_much_slower_than_plain_read(self):
        spec = SystemSpec()
        assert pir_page_retrieval_time(2**18, spec) > 10 * plain_page_read_time(spec)

    def test_single_page_file_is_cheapest(self):
        spec = SystemSpec()
        assert pir_page_retrieval_time(1, spec) <= pir_page_retrieval_time(2, spec)

    def test_invalid_file_size(self):
        with pytest.raises(ValueError):
            pir_page_retrieval_time(0)


class TestCommunication:
    def test_rtt_plus_bandwidth(self):
        spec = SystemSpec()
        time_s = communication_time(48 * 1024, rounds=1, spec=spec)
        assert time_s == pytest.approx(spec.round_trip_s + 1.0)

    def test_zero_bytes_costs_rtt_only(self):
        spec = SystemSpec()
        assert communication_time(0, rounds=2, spec=spec) == pytest.approx(2 * spec.round_trip_s)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            communication_time(-1, 1)


class TestResponseTime:
    def test_total_and_addition(self):
        first = ResponseTime(pir_s=1.0, communication_s=2.0, client_s=0.5)
        second = ResponseTime(pir_s=0.5, server_s=3.0)
        combined = first + second
        assert combined.pir_s == 1.5
        assert combined.total_s == pytest.approx(1.5 + 2.0 + 0.5 + 3.0)

    def test_scaled(self):
        response = ResponseTime(pir_s=1.0, communication_s=2.0)
        doubled = response.scaled(2.0)
        assert doubled.pir_s == 2.0
        assert doubled.communication_s == 4.0


class TestCostModel:
    def test_header_download_is_pure_communication(self):
        model = CostModel(SystemSpec())
        response = model.header_download(48 * 1024)
        assert response.pir_s == 0.0
        assert response.communication_s > 1.0

    def test_pir_round_accounts_for_each_file(self):
        spec = SystemSpec()
        model = CostModel(spec)
        response = model.pir_round({"index": 2, "data": 3}, {"index": 1000, "data": 500})
        expected_pir = 2 * pir_page_retrieval_time(1000, spec) + 3 * pir_page_retrieval_time(500, spec)
        assert response.pir_s == pytest.approx(expected_pir)
        assert response.communication_s > 0

    def test_pir_round_rejects_negative_counts(self):
        model = CostModel(SystemSpec())
        with pytest.raises(ValueError):
            model.pir_round({"data": -1}, {"data": 10})

    def test_plaintext_server_work(self):
        spec = SystemSpec(server_dijkstra_s_per_node=1e-6)
        model = CostModel(spec)
        assert model.plaintext_server_work(1_000_000).server_s == pytest.approx(1.0)

    def test_plaintext_transfer(self):
        spec = SystemSpec()
        model = CostModel(spec)
        response = model.plaintext_transfer(48 * 1024, rounds=1)
        assert response.communication_s == pytest.approx(spec.round_trip_s + 1.0)
