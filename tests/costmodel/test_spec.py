"""Tests for the Table 2 system specification."""

import pytest

from repro.costmodel import DEFAULT_SPEC, SystemSpec


class TestSystemSpec:
    def test_defaults_match_table2(self):
        spec = DEFAULT_SPEC
        assert spec.page_size == 4096
        assert spec.disk_seek_s == pytest.approx(0.011)
        assert spec.disk_rate_bps == 125 * 1024 * 1024
        assert spec.scp_io_rate_bps == 80 * 1024 * 1024
        assert spec.scp_crypto_rate_bps == 10 * 1024 * 1024
        assert spec.bandwidth_bps == 48 * 1024
        assert spec.round_trip_s == pytest.approx(0.7)
        assert spec.scp_memory_bytes == 32 * 1024 * 1024
        assert spec.max_file_bytes == int(2.5 * 1024**3)

    def test_with_overrides_returns_new_spec(self):
        custom = DEFAULT_SPEC.with_overrides(page_size=512, round_trip_s=0.1)
        assert custom.page_size == 512
        assert custom.round_trip_s == 0.1
        assert DEFAULT_SPEC.page_size == 4096  # original untouched

    def test_max_pages_per_file(self):
        spec = SystemSpec(page_size=4096)
        assert spec.max_pages_per_file == spec.max_file_bytes // 4096

    def test_memory_supported_pages(self):
        spec = SystemSpec()
        pages = spec.max_supported_pages_by_memory()
        # with 32 MB RAM and c=10 the supported file is in the gigabyte range
        assert pages * spec.page_size > 2 * 2**30

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_SPEC.page_size = 1  # type: ignore[misc]
