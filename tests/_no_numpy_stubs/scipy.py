"""Import blocker simulating an environment without scipy (see numpy.py)."""

raise ImportError("scipy is blocked by tests/_no_numpy_stubs")
