"""Import blocker simulating an environment without numpy.

Prepend this directory to ``PYTHONPATH`` to run the test suite against the
pure-Python fallbacks even on a machine that has numpy installed:

    PYTHONPATH=tests/_no_numpy_stubs:src python -m pytest -x -q

Any ``import numpy`` then raises ImportError exactly as on a bare install,
which must select the big-int PIR kernel and the scipy-free generators.
"""

raise ImportError("numpy is blocked by tests/_no_numpy_stubs")
