"""Property tests: the fast path must agree with the reference implementations.

Random seeded road networks are searched with both the array-backed (CSR)
fast path and the preserved dict-based reference implementations; costs must
be identical.  Likewise, batched PIR retrieval must return exactly what
repeated single retrievals return.
"""

import random

import pytest

from repro.exceptions import NoPathError
from repro.network import (
    astar_search,
    bidirectional_dijkstra,
    dijkstra_tree,
    random_planar_network,
    reference_astar_search,
    reference_bidirectional_dijkstra,
    reference_dijkstra_tree,
    reference_shortest_path,
    shortest_path,
)
from repro.pir import AdditivePirClient, TwoServerXorPir
from repro.pir.paillier import generate_keypair

SEEDS = [101, 202, 303]


def sample_pairs(network, rng, count=12):
    node_ids = list(network.node_ids())
    return [(rng.choice(node_ids), rng.choice(node_ids)) for _ in range(count)]


@pytest.mark.parametrize("seed", SEEDS)
class TestSearchAgreement:
    def test_dijkstra_tree_distances_identical(self, seed):
        network = random_planar_network(150, seed=seed)
        rng = random.Random(seed)
        for source in rng.sample(list(network.node_ids()), 4):
            fast = dijkstra_tree(network, source)
            reference = reference_dijkstra_tree(network, source)
            assert fast.distances == pytest.approx(reference.distances)

    def test_point_to_point_costs_identical(self, seed):
        network = random_planar_network(150, seed=seed)
        rng = random.Random(seed + 1)
        for source, target in sample_pairs(network, rng):
            try:
                expected = reference_shortest_path(network, source, target).cost
            except NoPathError:
                with pytest.raises(NoPathError):
                    shortest_path(network, source, target)
                continue
            assert shortest_path(network, source, target).cost == pytest.approx(expected)

    def test_bidirectional_costs_identical(self, seed):
        network = random_planar_network(150, seed=seed)
        rng = random.Random(seed + 2)
        for source, target in sample_pairs(network, rng):
            try:
                expected = reference_bidirectional_dijkstra(network, source, target).cost
            except NoPathError:
                with pytest.raises(NoPathError):
                    bidirectional_dijkstra(network, source, target)
                continue
            observed = bidirectional_dijkstra(network, source, target)
            assert observed.cost == pytest.approx(expected)
            # the bidirectional path itself must be a real path of that cost
            rebuilt = sum(
                network.edge_weight(a, b)
                for a, b in zip(observed.nodes[:-1], observed.nodes[1:])
            )
            assert rebuilt == pytest.approx(observed.cost)

    def test_astar_costs_identical(self, seed):
        network = random_planar_network(150, seed=seed)
        rng = random.Random(seed + 3)
        for source, target in sample_pairs(network, rng, count=8):
            try:
                expected = reference_astar_search(network, source, target).cost
            except NoPathError:
                with pytest.raises(NoPathError):
                    astar_search(network, source, target)
                continue
            assert astar_search(network, source, target).cost == pytest.approx(expected)

    def test_early_termination_distances_identical(self, seed):
        network = random_planar_network(150, seed=seed)
        rng = random.Random(seed + 4)
        node_ids = list(network.node_ids())
        source = rng.choice(node_ids)
        targets = rng.sample(node_ids, 6)
        fast = dijkstra_tree(network, source, targets=targets)
        reference = reference_dijkstra_tree(network, source, targets=targets)
        for target in targets:
            assert fast.has_path_to(target) == reference.has_path_to(target)
            if fast.has_path_to(target):
                assert fast.distance_to(target) == pytest.approx(
                    reference.distance_to(target)
                )


def make_blocks(count, size, seed):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


class TestBatchedRetrievalAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_xor_retrieve_many_equals_repeated_retrieve(self, seed):
        blocks = make_blocks(24, 48, seed)
        pir = TwoServerXorPir(blocks, rng=random.Random(seed))
        rng = random.Random(seed + 1)
        indices = [rng.randrange(len(blocks)) for _ in range(20)]
        batched = pir.retrieve_many(indices)
        singles = [pir.retrieve(index) for index in indices]
        assert batched == singles
        assert batched == [blocks[index] for index in indices]

    def test_additive_retrieve_many_equals_repeated_retrieve(self):
        blocks = make_blocks(5, 24, seed=7)
        keypair = generate_keypair(256)
        client = AdditivePirClient(blocks, chunk_bytes=8, keypair=keypair)
        indices = [3, 0, 3, 4, 1]
        batched = client.retrieve_many(indices)
        assert batched == [blocks[index] for index in indices]
