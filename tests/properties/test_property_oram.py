"""Property-based tests for the square-root ORAM."""

from hypothesis import given, settings, strategies as st

from repro.pir import SquareRootOram, oblivious_sort_network


@st.composite
def oram_workloads(draw):
    """A small block database plus a random logical access sequence."""
    num_blocks = draw(st.integers(min_value=1, max_value=12))
    block_size = draw(st.integers(min_value=1, max_value=24))
    blocks = [
        draw(st.binary(min_size=block_size, max_size=block_size))
        for _ in range(num_blocks)
    ]
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.integers(min_value=0, max_value=num_blocks - 1),
                st.binary(min_size=block_size, max_size=block_size),
            ),
            min_size=1,
            max_size=20,
        )
    )
    return blocks, operations


class TestOramMatchesPlainArray:
    @given(oram_workloads())
    @settings(max_examples=40, deadline=None)
    def test_reads_and_writes_match_a_reference_array(self, workload):
        blocks, operations = workload
        oram = SquareRootOram(blocks)
        reference = list(blocks)
        for op, index, value in operations:
            if op == "read":
                assert oram.read(index) == reference[index]
            else:
                oram.write(index, value)
                reference[index] = value
        for index, expected in enumerate(reference):
            assert oram.read(index) == expected


class TestSortingNetworkProperties:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_network_sorts_arbitrary_integer_lists(self, data):
        values = list(data)
        for i, j in oblivious_sort_network(len(values)):
            if values[i] > values[j]:
                values[i], values[j] = values[j], values[i]
        assert values == sorted(data)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_schedule_size_is_polylogarithmic(self, length):
        pairs = oblivious_sort_network(length)
        if length >= 2:
            # O(n log^2 n) comparator count with a generous constant.
            bound = 4 * length * (max(length.bit_length(), 1) ** 2)
            assert len(pairs) <= bound
