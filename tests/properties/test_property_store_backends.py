"""Property tests: the page-store backends are interchangeable.

The out-of-core refactor promises that memory, mmap and SQLite backends are
*observationally identical*: byte-identical pages, identical PIR retrievals,
and bit-identical end-to-end query results (paths, costs and adversary-visible
access traces) under every engine configuration — and that a disk-backed
database survives a process restart unchanged.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.network import random_planar_network
from repro.pir import AccessTrace, UsablePirSimulator
from repro.schemes import ConciseIndexScheme, PassageIndexScheme
from repro.storage import (
    clone_database,
    databases_equal,
    load_database,
    open_page_store,
    save_database,
    store_backend_scope,
)

DISK_BACKENDS = ("mmap", "sqlite")
SPEC = SystemSpec(page_size=256)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(110, seed=11)


@pytest.fixture(scope="module")
def ci_scheme(network):
    return ConciseIndexScheme.build(network, spec=SPEC)


@pytest.fixture(scope="module")
def pairs(network):
    rng = random.Random(42)
    nodes = network.num_nodes
    return [tuple(rng.sample(range(nodes), 2)) for _ in range(6)]


def batch_fingerprint(batch):
    """Everything observable about a batch: paths, costs and adversary views."""
    return [
        (result.path.nodes, round(result.path.cost, 9), result.trace.adversary_view())
        for result in batch.results
    ]


class TestByteIdenticalPages:
    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_clone_is_byte_identical(self, ci_scheme, backend, tmp_path):
        clone = clone_database(ci_scheme.database, store_backend=backend, store_dir=tmp_path)
        try:
            assert clone.store_backend == backend
            assert databases_equal(ci_scheme.database, clone)
        finally:
            clone.close()

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_build_on_backend_matches_memory_build(self, network, backend, tmp_path):
        scheme = ConciseIndexScheme.build(
            network, spec=SPEC, store_backend=backend, store_dir=tmp_path
        )
        try:
            assert scheme.database.store_backend == backend
            assert databases_equal(ci_scheme_db := scheme.database,
                                   ConciseIndexScheme.build(network, spec=SPEC).database)
            assert ci_scheme_db.file("data").num_pages > 0
        finally:
            scheme.database.close()


class TestIdenticalPirRetrievals:
    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_single_and_batch_retrievals_match(self, ci_scheme, backend, tmp_path):
        clone = clone_database(ci_scheme.database, store_backend=backend, store_dir=tmp_path)
        try:
            base = UsablePirSimulator(ci_scheme.database, spec=SPEC, enforce_limits=False)
            other = UsablePirSimulator(clone, spec=SPEC, enforce_limits=False)
            num_pages = ci_scheme.database.file("data").num_pages
            pages = [index % num_pages for index in range(num_pages + 5)]
            base_trace, other_trace = AccessTrace(), AccessTrace()
            base_trace.begin_round()
            other_trace.begin_round()
            assert other.retrieve_pages("data", pages, other_trace) == \
                base.retrieve_pages("data", pages, base_trace)
            assert other.retrieve_page("data", 0, other_trace) == \
                base.retrieve_page("data", 0, base_trace)
            assert base_trace.adversary_view() == other_trace.adversary_view()
        finally:
            clone.close()


class TestEndToEndEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self, ci_scheme, pairs):
        engine = QueryEngine(ci_scheme, cache_entries=64)
        return batch_fingerprint(engine.run_batch(pairs, verify_costs=True))

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    @pytest.mark.parametrize("shards,workers,worker_mode", [
        (1, 1, "thread"),
        (2, 2, "thread"),
        (3, 1, "thread"),
        (1, 2, "process"),
    ])
    def test_all_engine_configurations_bit_identical(
        self, ci_scheme, pairs, baseline, backend, shards, workers, worker_mode, tmp_path
    ):
        engine = QueryEngine(
            ci_scheme,
            cache_entries=64,
            shards=shards,
            store_backend=backend,
            store_dir=tmp_path,
        )
        batch = engine.run_batch(
            pairs, verify_costs=True, workers=workers, worker_mode=worker_mode
        )
        assert batch.store_backend == backend
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch_fingerprint(batch) == baseline

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_pi_scheme_backends_agree(self, network, pairs, backend, tmp_path):
        memory_scheme = PassageIndexScheme.build(network, spec=SPEC)
        disk_scheme = PassageIndexScheme.build(
            network, spec=SPEC, store_backend=backend, store_dir=tmp_path
        )
        try:
            assert databases_equal(memory_scheme.database, disk_scheme.database)
            memory_batch = QueryEngine(memory_scheme).run_batch(pairs[:3])
            disk_batch = QueryEngine(disk_scheme).run_batch(pairs[:3])
            assert batch_fingerprint(memory_batch) == batch_fingerprint(disk_batch)
        finally:
            disk_scheme.database.close()

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_queries_agree_across_backends(self, ci_scheme, sqlite_engine, data):
        nodes = ci_scheme.network.num_nodes
        source = data.draw(st.integers(min_value=0, max_value=nodes - 1))
        target = data.draw(st.integers(min_value=0, max_value=nodes - 1))
        if source == target:
            target = (target + 1) % nodes
        memory_result = QueryEngine(ci_scheme).execute(source, target)
        sqlite_result = sqlite_engine.execute(source, target)
        assert memory_result.path.nodes == sqlite_result.path.nodes
        assert memory_result.path.cost == pytest.approx(sqlite_result.path.cost, abs=0)
        assert memory_result.trace.adversary_view() == sqlite_result.trace.adversary_view()

    @pytest.fixture(scope="class")
    def sqlite_engine(self, ci_scheme, tmp_path_factory):
        return QueryEngine(
            ci_scheme,
            store_backend="sqlite",
            store_dir=tmp_path_factory.mktemp("sqlite-engine"),
        )


class TestCrashSafety:
    """A disk-backed store re-opened after a 'crash' serves the same bytes."""

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_reopened_store_serves_identical_pages(self, ci_scheme, backend, tmp_path):
        clone = clone_database(ci_scheme.database, store_backend=backend, store_dir=tmp_path)
        expected = {
            name: list(clone.file(name).store.iter_payloads())
            for name in clone.file_names()
        }
        clone.flush()
        for name in clone.file_names():
            clone.file(name).store.close()

        for name, payloads in expected.items():
            reopened = open_page_store(backend, name, directory=tmp_path, create=False)
            try:
                assert list(reopened.iter_payloads()) == payloads
            finally:
                reopened.close()

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_saved_database_reloads_onto_backend(self, ci_scheme, pairs, backend, tmp_path):
        image_dir = tmp_path / "image"
        save_database(ci_scheme.database, image_dir)
        reloaded = load_database(
            image_dir, store_backend=backend, store_dir=tmp_path / "stores"
        )
        try:
            assert databases_equal(ci_scheme.database, reloaded)
        finally:
            reloaded.close()

    @pytest.mark.parametrize("backend", DISK_BACKENDS)
    def test_scheme_built_under_scope_lands_on_disk(self, network, backend, tmp_path):
        with store_backend_scope(backend, tmp_path):
            scheme = ConciseIndexScheme.build(network, spec=SPEC)
        try:
            assert scheme.database.store_backend == backend
            stored = sorted(path.name for path in tmp_path.iterdir())
            assert stored, "no store files were written to the scope directory"
        finally:
            scheme.database.close()
