"""Property: shared-memory packs change nothing observable (invariant I2).

The shared pack is a placement optimisation — the same packed bit-matrix
mapped once per machine instead of rebuilt per worker.  These properties pin
everything observable to the private pack and the big-int oracle: answers
(including the error paths, which must raise the identical ``PirError``),
the adversary-visible ``queries_seen`` streams, and end-to-end engine
batches across every kernel × shard count × worker mode × answer-thread
combination the serving stack exposes.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.exceptions import PirError
from repro.network import random_planar_network
from repro.pir import BigIntKernel, ShardedPirSimulator, numpy_available
from repro.schemes import ConciseIndexScheme
from repro.serving import RemotePirSimulator, ShardCluster

SPEC = SystemSpec(page_size=256)

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

#: Server kernels the equivalences run for; shared packs exist only for
#: numpy (the big-int oracle has no shareable image), but the bigint legs
#: still pin that asking for shared serving degrades to nothing observable.
KERNELS = ("numpy", "bigint") if numpy_available() else ("bigint",)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(110, seed=11)


@pytest.fixture(scope="module")
def ci_scheme(network):
    return ConciseIndexScheme.build(network, spec=SPEC)


@pytest.fixture(scope="module")
def pairs(network):
    rng = random.Random(42)
    nodes = network.num_nodes
    return [tuple(rng.sample(range(nodes), 2)) for _ in range(6)]


def batch_fingerprint(batch):
    """Everything observable about a batch: paths, costs and adversary views."""
    return [
        (result.path.nodes, round(result.path.cost, 9), result.trace.adversary_view())
        for result in batch.results
    ]


def blocks_strategy():
    return st.integers(min_value=1, max_value=48).flatmap(
        lambda size: st.lists(
            st.binary(min_size=size, max_size=size), min_size=1, max_size=40
        )
    )


@requires_numpy
class TestSharedPackOracleParity:
    @settings(max_examples=40, deadline=None)
    @given(blocks=blocks_strategy(), data=st.data())
    def test_shared_equals_private_equals_oracle(self, blocks, data):
        from repro.pir.kernels import PackedDatabase

        private = PackedDatabase.from_blocks(blocks)
        handle = private.to_shared()
        attached = PackedDatabase.attach(handle)
        try:
            num_blocks = len(blocks)
            masks = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=(1 << num_blocks) - 1),
                    min_size=0,
                    max_size=10,
                )
            )
            expected = BigIntKernel(blocks).answer_many(masks)
            assert private.answer_many(masks) == expected
            assert attached.answer_many(masks) == expected
        finally:
            attached.close_shared(unlink=False)
            private.close_shared()

    @settings(max_examples=20, deadline=None)
    @given(blocks=blocks_strategy())
    def test_error_paths_identical_to_oracle(self, blocks):
        """Invalid masks must raise the identical PirError whether the pack
        is private, shared, or the big-int oracle — error text included."""
        from repro.pir.kernels import PackedDatabase

        private = PackedDatabase.from_blocks(blocks)
        attached = PackedDatabase.attach(private.to_shared())
        oracle = BigIntKernel(blocks)
        try:
            for bad in (-1, 1 << len(blocks), (1 << len(blocks)) | 1):
                errors = []
                for kernel in (oracle, private, attached):
                    with pytest.raises(PirError) as caught:
                        kernel.answer_mask(bad)
                    errors.append(str(caught.value))
                assert len(set(errors)) == 1
        finally:
            attached.close_shared(unlink=False)
            private.close_shared()


class TestServingEquivalence:
    """Shared packs and answer threads versus plain in-process serving."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("num_shards,answer_threads", [(1, 2), (3, 1), (3, 3)])
    def test_pages_and_queries_seen_bit_identical(
        self, ci_scheme, kernel, num_shards, answer_threads
    ):
        database = ci_scheme.database
        file_name = max(
            database.file_names(), key=lambda name: database.file(name).num_pages
        )
        num_pages = database.file(file_name).num_pages
        reads = random.Random(8).choices(range(num_pages), k=12)

        local = ShardedPirSimulator(
            database, num_shards=num_shards, xor_kernel=kernel,
            log_queries=True, kernel_seed=21,
        )
        expected_pages = local.retrieve_pages(file_name, reads)

        with ShardCluster(
            database,
            num_shards=num_shards,
            kernel=kernel,
            answer_threads=answer_threads,
            share_packs=True,
        ) as cluster:
            remote = RemotePirSimulator(
                database, cluster.addresses, log_queries=True, kernel_seed=21
            )
            remote_pages = remote.retrieve_pages(file_name, reads)
            remote.close()

        assert remote_pages == expected_pages
        assert remote.queries_seen == local.queries_seen


class TestEngineEquivalence:
    """run_batch across kernel × shards × worker-mode × answer-threads."""

    @pytest.fixture(scope="class")
    def baseline(self, ci_scheme, pairs):
        engine = QueryEngine(ci_scheme, cache_entries=64)
        return batch_fingerprint(engine.run_batch(pairs, verify_costs=True))

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards,workers,worker_mode", [
        (2, 2, "thread"),
        (2, 2, "process"),  # process workers adopt the published packs
        (3, 2, "process"),
    ])
    def test_local_batches_bit_identical(
        self, ci_scheme, pairs, baseline, kernel, shards, workers, worker_mode
    ):
        with QueryEngine(
            ci_scheme, cache_entries=64, shards=shards, pir_kernel=kernel
        ) as engine:
            batch = engine.run_batch(
                pairs, verify_costs=True, workers=workers, worker_mode=worker_mode
            )
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch_fingerprint(batch) == baseline

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("answer_threads,worker_mode", [
        (1, "process"),
        (3, "thread"),
        (3, "process"),
    ])
    def test_remote_batches_bit_identical(
        self, ci_scheme, pairs, baseline, kernel, answer_threads, worker_mode
    ):
        with ShardCluster(
            ci_scheme.database,
            num_shards=2,
            kernel=kernel,
            answer_threads=answer_threads,
            share_packs=True,
        ) as cluster:
            with QueryEngine(ci_scheme, cache_entries=64, serving=cluster) as engine:
                batch = engine.run_batch(
                    pairs, verify_costs=True, workers=2, worker_mode=worker_mode
                )
        assert batch.remote
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch_fingerprint(batch) == baseline
