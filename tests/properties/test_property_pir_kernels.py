"""Property tests: the packed numpy kernel is bit-identical to the big-int oracle.

The vectorized server kernel is a pure performance change.  These properties
pin everything observable about it to the reference big-int fold: individual
answers, whole-protocol retrievals, the adversary-visible query subsets, the
simulators' ``queries_seen`` logs and end-to-end engine batches — across page
store backends, shard counts and worker configurations.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.network import random_planar_network
from repro.pir import (
    BigIntKernel,
    ShardedPirSimulator,
    TwoServerXorPir,
    UsablePirSimulator,
    numpy_available,
)
from repro.schemes import ConciseIndexScheme

SPEC = SystemSpec(page_size=256)

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

#: Kernels the end-to-end equivalence is checked for.  Without numpy only the
#: big-int kernel exists — the engine invariant (serving through the XOR
#: protocol changes no result) still holds and is still worth pinning.
KERNELS = ("numpy", "bigint") if numpy_available() else ("bigint",)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(110, seed=11)


@pytest.fixture(scope="module")
def ci_scheme(network):
    return ConciseIndexScheme.build(network, spec=SPEC)


@pytest.fixture(scope="module")
def pairs(network):
    rng = random.Random(42)
    nodes = network.num_nodes
    return [tuple(rng.sample(range(nodes), 2)) for _ in range(6)]


def batch_fingerprint(batch):
    """Everything observable about a batch: paths, costs and adversary views."""
    return [
        (result.path.nodes, round(result.path.cost, 9), result.trace.adversary_view())
        for result in batch.results
    ]


def blocks_strategy():
    return st.integers(min_value=1, max_value=48).flatmap(
        lambda size: st.lists(
            st.binary(min_size=size, max_size=size), min_size=1, max_size=40
        )
    )


@requires_numpy
class TestKernelOracleParity:
    @settings(max_examples=60, deadline=None)
    @given(blocks=blocks_strategy(), data=st.data())
    def test_packed_answers_equal_bigint_answers(self, blocks, data):
        from repro.pir.kernels import PackedDatabase

        packed = PackedDatabase.from_blocks(blocks)
        oracle = BigIntKernel(blocks)
        num_blocks = len(blocks)
        masks = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << num_blocks) - 1),
                min_size=0,
                max_size=12,
            )
        )
        assert packed.answer_many(masks) == oracle.answer_many(masks)

    @settings(max_examples=25, deadline=None)
    @given(blocks=blocks_strategy(), seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_protocol_parity_with_shared_randomness(self, blocks, seed):
        """Same client RNG => identical retrievals AND identical adversary
        views for either kernel: the packed kernel is invisible on the wire."""
        indices = [seed % len(blocks), 0, len(blocks) - 1]
        outcomes = {}
        for name in ("bigint", "numpy"):
            pir = TwoServerXorPir(
                blocks, rng=random.Random(seed), log_queries=True, kernel=name
            )
            answers = pir.retrieve_many(indices)
            outcomes[name] = (
                answers,
                pir.server_a.queries_seen,
                pir.server_b.queries_seen,
            )
        assert outcomes["bigint"] == outcomes["numpy"]
        assert outcomes["bigint"][0] == [blocks[index] for index in indices]


class TestSimulatorParity:
    """XOR-serving simulators return the same pages and log the same subsets."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_unsharded_serving_matches_plain_reads(self, ci_scheme, kernel):
        plain = UsablePirSimulator(ci_scheme.database, spec=SPEC, enforce_limits=False)
        serving = UsablePirSimulator(
            ci_scheme.database, spec=SPEC, enforce_limits=False, xor_kernel=kernel
        )
        num_pages = ci_scheme.database.file("data").num_pages
        pages = [index % num_pages for index in range(min(40, num_pages + 5))]
        assert serving.retrieve_pages("data", pages) == plain.retrieve_pages("data", pages)
        assert serving.retrieve_page("data", 0) == plain.retrieve_page("data", 0)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_sharded_serving_matches_plain_reads(self, ci_scheme, kernel, num_shards):
        plain = ShardedPirSimulator(
            ci_scheme.database, spec=SPEC, enforce_limits=False, num_shards=num_shards
        )
        serving = ShardedPirSimulator(
            ci_scheme.database,
            spec=SPEC,
            enforce_limits=False,
            num_shards=num_shards,
            xor_kernel=kernel,
        )
        num_pages = ci_scheme.database.file("data").num_pages
        pages = [(7 * index) % num_pages for index in range(30)]
        assert serving.retrieve_pages("data", pages) == plain.retrieve_pages("data", pages)

    @requires_numpy
    @pytest.mark.parametrize("sharded", [False, True])
    def test_queries_seen_identical_across_kernels(self, ci_scheme, sharded):
        num_pages = ci_scheme.database.file("data").num_pages
        pages = [(3 * index) % num_pages for index in range(50)]
        logs = {}
        for kernel in ("bigint", "numpy"):
            if sharded:
                simulator = ShardedPirSimulator(
                    ci_scheme.database, spec=SPEC, enforce_limits=False,
                    num_shards=3, xor_kernel=kernel, log_queries=True, kernel_seed=21,
                )
            else:
                simulator = UsablePirSimulator(
                    ci_scheme.database, spec=SPEC, enforce_limits=False,
                    xor_kernel=kernel, log_queries=True, kernel_seed=21,
                )
            simulator.retrieve_pages("data", pages)
            simulator.retrieve_page("data", 1)
            assert simulator.queries_seen, "XOR serving must log when asked to"
            logs[kernel] = simulator.queries_seen
        assert logs["bigint"] == logs["numpy"]


class TestEndToEndEquivalence:
    """run_batch with the kernel on is bit-identical to the kernel off, for
    every (kernel, shards, workers, worker mode, store backend) combination."""

    @pytest.fixture(scope="class")
    def baseline(self, ci_scheme, pairs):
        engine = QueryEngine(ci_scheme, cache_entries=64)
        return batch_fingerprint(engine.run_batch(pairs, verify_costs=True))

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("shards,workers,worker_mode", [
        (1, 1, "thread"),
        (2, 2, "thread"),
        (3, 1, "thread"),
        (1, 2, "process"),
    ])
    def test_kernel_on_bit_identical_to_kernel_off(
        self, ci_scheme, pairs, baseline, kernel, shards, workers, worker_mode
    ):
        engine = QueryEngine(
            ci_scheme, cache_entries=64, shards=shards, pir_kernel=kernel
        )
        batch = engine.run_batch(
            pairs, verify_costs=True, workers=workers, worker_mode=worker_mode
        )
        assert batch.pir_kernel == kernel
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch_fingerprint(batch) == baseline

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kernel_on_disk_backend_bit_identical(
        self, ci_scheme, pairs, baseline, kernel, tmp_path
    ):
        engine = QueryEngine(
            ci_scheme,
            cache_entries=64,
            shards=2,
            pir_kernel=kernel,
            store_backend="mmap",
            store_dir=tmp_path,
        )
        batch = engine.run_batch(pairs, verify_costs=True, workers=2)
        assert batch.store_backend == "mmap"
        assert batch.pir_kernel == kernel
        assert batch_fingerprint(batch) == baseline

    def test_kernel_default_is_numpy_when_available(self, ci_scheme, pairs):
        engine = QueryEngine(ci_scheme, cache_entries=64)
        expected = "numpy" if numpy_available() else None
        assert engine.pir_kernel == expected
        assert engine.run_batch(pairs[:1]).pir_kernel == expected

    def test_kernel_off_disables_packed_serving(self, ci_scheme, pairs, baseline):
        engine = QueryEngine(ci_scheme, cache_entries=64, pir_kernel="off")
        assert engine.pir_kernel is None
        batch = engine.run_batch(pairs, verify_costs=True)
        assert batch.pir_kernel is None
        assert batch_fingerprint(batch) == baseline
