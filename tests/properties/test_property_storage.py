"""Property-based tests for the storage codecs and pages."""

from hypothesis import given, settings, strategies as st

from repro.storage import Page, RecordReader, RecordWriter
from repro.storage.record import decode_varint, encode_varint


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_round_trip(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value
        assert offset == len(encode_varint(value))

    @given(st.integers(min_value=0, max_value=2**63 - 1), st.integers(min_value=0, max_value=2**63 - 1))
    def test_concatenated_varints_decode_in_order(self, first, second):
        data = encode_varint(first) + encode_varint(second)
        value_one, offset = decode_varint(data)
        value_two, end = decode_varint(data, offset)
        assert (value_one, value_two) == (first, second)
        assert end == len(data)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_encoding_is_minimal_length(self, value):
        """LEB128 length is determined by the bit length of the value."""
        expected_length = max(1, (value.bit_length() + 6) // 7)
        assert len(encode_varint(value)) == expected_length


class TestRecordProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=50))
    def test_uint32_list_round_trip(self, values):
        writer = RecordWriter()
        writer.uint32_list(values)
        assert RecordReader(writer.getvalue()).uint32_list() == values

    @given(st.text(max_size=100))
    def test_string_round_trip(self, text):
        writer = RecordWriter()
        writer.string(text)
        assert RecordReader(writer.getvalue()).string() == text

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float32_round_trip(self, value):
        writer = RecordWriter()
        writer.float32(value)
        assert RecordReader(writer.getvalue()).float32() == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_round_trip(self, value):
        writer = RecordWriter()
        writer.float64(value)
        assert RecordReader(writer.getvalue()).float64() == value


class TestPageProperties:
    @given(st.lists(st.binary(min_size=0, max_size=40), max_size=20))
    def test_appended_records_concatenate(self, records):
        page = Page(1024)
        expected = b""
        for record in records:
            page.append(record)
            expected += record
        assert page.payload() == expected
        assert page.used_bytes == len(expected)
        assert len(page.to_bytes()) == 1024
