"""Property-based tests on partitioning invariants."""

from hypothesis import given, settings, strategies as st

from repro.network import random_planar_network
from repro.partition import (
    node_record_size,
    packed_kdtree_partition,
    plain_kdtree_partition,
)


def network_strategy():
    return st.builds(
        random_planar_network,
        num_nodes=st.integers(min_value=30, max_value=120),
        edge_factor=st.floats(min_value=1.0, max_value=1.3),
        seed=st.integers(min_value=0, max_value=500),
    )


PARTITIONERS = [plain_kdtree_partition, packed_kdtree_partition]


class TestPartitioningInvariants:
    @settings(max_examples=15, deadline=None)
    @given(network_strategy(), st.sampled_from(PARTITIONERS), st.integers(min_value=300, max_value=900))
    def test_partition_is_exact_cover(self, network, partition_fn, capacity):
        partitioning = partition_fn(network, capacity)
        assigned = sorted(
            node_id for region in partitioning.regions() for node_id in region.node_ids
        )
        assert assigned == sorted(network.node_ids())

    @settings(max_examples=15, deadline=None)
    @given(network_strategy(), st.sampled_from(PARTITIONERS), st.integers(min_value=300, max_value=900))
    def test_every_region_fits_its_page(self, network, partition_fn, capacity):
        partitioning = partition_fn(network, capacity)
        for region in partitioning.regions():
            payload = sum(node_record_size(network, node_id) for node_id in region.node_ids)
            assert payload <= capacity

    @settings(max_examples=15, deadline=None)
    @given(network_strategy(), st.sampled_from(PARTITIONERS), st.integers(min_value=300, max_value=900))
    def test_split_tree_maps_every_node_to_its_region(self, network, partition_fn, capacity):
        partitioning = partition_fn(network, capacity)
        partitioning.validate()
