"""Property: serving PIR over TCP changes nothing observable (invariant I2).

The remote simulator must be a *pure transport change*: for every server
kernel, shard count, worker count and worker mode, query results, traces,
adversary-view logs and the simulators' ``queries_seen`` streams are
bit-identical to in-process serving.  The shard servers here are real
asyncio servers on loopback, so this is the same code path a deployment
runs — only the machines are missing.
"""

import random

import pytest

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.network import random_planar_network
from repro.pir import ShardedPirSimulator, numpy_available
from repro.schemes import ConciseIndexScheme
from repro.serving import RemotePirSimulator, ShardCluster

SPEC = SystemSpec(page_size=256)

#: Server kernels the transport equivalence is pinned for.
KERNELS = ("numpy", "bigint") if numpy_available() else ("bigint",)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(110, seed=11)


@pytest.fixture(scope="module")
def ci_scheme(network):
    return ConciseIndexScheme.build(network, spec=SPEC)


@pytest.fixture(scope="module")
def pairs(network):
    rng = random.Random(42)
    nodes = network.num_nodes
    return [tuple(rng.sample(range(nodes), 2)) for _ in range(6)]


def batch_fingerprint(batch):
    """Everything observable about a batch: paths, costs and adversary views."""
    return [
        (result.path.nodes, round(result.path.cost, 9), result.trace.adversary_view())
        for result in batch.results
    ]


class TestRemoteSimulatorEquivalence:
    """RemotePirSimulator versus in-process XOR serving, shard by shard."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_pages_and_query_logs_are_bit_identical(
        self, ci_scheme, kernel, num_shards
    ):
        database = ci_scheme.database
        file_name = max(
            database.file_names(), key=lambda name: database.file(name).num_pages
        )
        num_pages = database.file(file_name).num_pages
        reads = random.Random(8).choices(range(num_pages), k=12)

        local = ShardedPirSimulator(
            database, num_shards=num_shards, xor_kernel=kernel,
            log_queries=True, kernel_seed=21,
        )
        expected_pages = local.retrieve_pages(file_name, reads)

        with ShardCluster(database, num_shards=num_shards, kernel=kernel) as cluster:
            remote = RemotePirSimulator(
                database, cluster.addresses,
                log_queries=True, kernel_seed=21,
            )
            remote_pages = remote.retrieve_pages(file_name, reads)
            remote.close()

        assert remote_pages == expected_pages
        # the adversary sees the identical stream of (file, shard, subset)
        assert remote.queries_seen == local.queries_seen

    def test_layout_mismatch_is_rejected_loudly(self, ci_scheme):
        database = ci_scheme.database
        with ShardCluster(database, num_shards=2) as cluster:
            from repro.exceptions import PirError

            with pytest.raises(PirError):
                # client believes in a different strategy than the servers
                RemotePirSimulator(
                    database, cluster.addresses, strategy="contiguous"
                )


class TestEngineRemoteEquivalence:
    """QueryEngine(serving=...) versus the plain in-process engine."""

    @pytest.fixture(scope="class")
    def baseline(self, ci_scheme, pairs):
        engine = QueryEngine(ci_scheme, cache_entries=64)
        return batch_fingerprint(engine.run_batch(pairs, verify_costs=True))

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("num_shards,workers,worker_mode", [
        (1, 1, "thread"),
        (2, 2, "thread"),
        (3, 2, "process"),
    ])
    def test_remote_batches_are_bit_identical(
        self, ci_scheme, pairs, baseline, kernel, num_shards, workers, worker_mode
    ):
        with ShardCluster(
            ci_scheme.database, num_shards=num_shards, kernel=kernel
        ) as cluster:
            with QueryEngine(ci_scheme, cache_entries=64, serving=cluster) as engine:
                batch = engine.run_batch(
                    pairs, verify_costs=True, workers=workers, worker_mode=worker_mode
                )
        assert batch.remote
        assert batch.shards == num_shards
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch_fingerprint(batch) == baseline

    def test_shards_must_match_the_cluster(self, ci_scheme):
        from repro.exceptions import SchemeError

        with ShardCluster(ci_scheme.database, num_shards=2) as cluster:
            with pytest.raises(SchemeError):
                QueryEngine(ci_scheme, shards=3, serving=cluster)

    def test_plain_addresses_work_as_serving(self, ci_scheme, pairs, baseline):
        """``serving=`` accepts a bare address list, not just a cluster."""
        with ShardCluster(ci_scheme.database, num_shards=2) as cluster:
            addresses = list(cluster.addresses)
            with QueryEngine(ci_scheme, cache_entries=64, serving=addresses) as engine:
                batch = engine.run_batch(pairs[:3], verify_costs=True)
        assert batch.remote
        assert batch_fingerprint(batch) == baseline[:3]
