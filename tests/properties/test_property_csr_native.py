"""Property tests: the CSR-native client pipeline vs. the dict-merge oracles.

Every scheme's query path assembles its search graph straight into CSR form
(:mod:`repro.schemes.assembly`).  These tests re-run randomized workloads
with the assembly routed through the preserved ``reference_*`` dict-merge
oracles and assert that costs, paths, adversary views and the private access
traces are identical — and that sharding a batch across engine workers
changes nothing at all.
"""

from contextlib import contextmanager

import pytest

from repro.bench.workloads import generate_workload
from repro.engine import QueryEngine
from repro.network import CsrGraph
from repro.schemes import assembly


@contextmanager
def _reference_assembly():
    """Route scheme queries through the dict-merge reference oracles."""

    def region_csr(payload_groups):
        return CsrGraph.from_network(assembly.reference_region_graph(payload_groups))

    def passage_csr(payload_groups, index_pages, pair, entry=None):
        return CsrGraph.from_network(
            assembly.reference_passage_graph(payload_groups, index_pages, pair, entry)
        )

    saved = (assembly.assemble_region_csr, assembly.assemble_passage_csr)
    assembly.assemble_region_csr = region_csr
    assembly.assemble_passage_csr = passage_csr
    try:
        yield
    finally:
        assembly.assemble_region_csr, assembly.assemble_passage_csr = saved


def _assert_identical_batches(fast, reference):
    assert fast.indistinguishable and reference.indistinguishable
    for fast_result, reference_result in zip(fast.results, reference.results):
        assert fast_result.path.nodes == reference_result.path.nodes
        assert fast_result.path.cost == pytest.approx(
            reference_result.path.cost, rel=1e-12
        )
        assert fast_result.adversary_view == reference_result.adversary_view
        assert (
            fast_result.trace.private_page_requests()
            == reference_result.trace.private_page_requests()
        )
        assert fast_result.response.pir_s == reference_result.response.pir_s
        assert (
            fast_result.response.communication_s
            == reference_result.response.communication_s
        )


def _compare_against_oracle(scheme, network, seed, count=10):
    pairs = generate_workload(network, count=count, seed=seed)
    fast = QueryEngine(scheme).run_batch(pairs, verify_costs=True)
    with _reference_assembly():
        reference = QueryEngine(scheme).run_batch(pairs, verify_costs=True)
    assert fast.all_costs_correct
    assert reference.all_costs_correct
    _assert_identical_batches(fast, reference)


class TestCsrNativeMatchesDictMerge:
    @pytest.mark.parametrize("seed", [5, 17, 29])
    def test_ci_workloads(self, ci_scheme, small_network, seed):
        _compare_against_oracle(ci_scheme, small_network, seed)

    @pytest.mark.parametrize("seed", [5, 17, 29])
    def test_pi_workloads(self, pi_scheme, small_network, seed):
        _compare_against_oracle(pi_scheme, small_network, seed)

    def test_hybrid_workload(self, hybrid_scheme, small_network):
        # HY exercises both assembly branches (region sets and subgraphs)
        assert hybrid_scheme.num_replaced_pairs > 0
        _compare_against_oracle(hybrid_scheme, small_network, seed=11, count=12)

    def test_clustered_workload(self, clustered_scheme, small_network):
        _compare_against_oracle(clustered_scheme, small_network, seed=7, count=8)


class TestParallelExecutionIdentity:
    """``run_batch(workers=N)`` must be indistinguishable from serial runs."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_ci_parallel_matches_serial(self, ci_scheme, small_network, workers):
        pairs = generate_workload(small_network, count=9, seed=23)
        serial = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=False)
        parallel = QueryEngine(ci_scheme).run_batch(pairs, workers=workers)
        assert parallel.workers == workers
        assert parallel.all_costs_correct == serial.all_costs_correct
        assert parallel.true_costs == serial.true_costs
        _assert_identical_batches(serial, parallel)

    def test_pi_parallel_matches_serial(self, pi_scheme, small_network):
        pairs = generate_workload(small_network, count=8, seed=31)
        serial = QueryEngine(pi_scheme).run_batch(pairs, workers=1, pipeline=False)
        parallel = QueryEngine(pi_scheme).run_batch(pairs, workers=4)
        _assert_identical_batches(serial, parallel)

    def test_pipelining_matches_sequential(self, ci_scheme, small_network):
        pairs = generate_workload(small_network, count=6, seed=41)
        sequential = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=False)
        pipelined = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=True)
        _assert_identical_batches(sequential, pipelined)


class TestShardModeIdentity:
    """Every (shards, workers, worker_mode) combination must produce
    bit-identical paths, traces and adversary views to the serial engine."""

    @pytest.mark.parametrize(
        "shards,workers,worker_mode",
        [
            (2, 2, "thread"),
            (4, 1, "thread"),
            (4, 3, "thread"),
            (1, 2, "process"),
            (2, 2, "process"),
            (4, 1, "process"),
        ],
    )
    def test_ci_matrix_matches_serial(self, ci_scheme, small_network, shards, workers, worker_mode):
        pairs = generate_workload(small_network, count=8, seed=61)
        serial = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=False)
        combined = QueryEngine(ci_scheme, shards=shards).run_batch(
            pairs, workers=workers, worker_mode=worker_mode
        )
        assert combined.shards == shards
        assert combined.worker_mode == worker_mode
        assert combined.all_costs_correct == serial.all_costs_correct
        assert combined.true_costs == serial.true_costs
        _assert_identical_batches(serial, combined)

    @pytest.mark.parametrize("shards,workers,worker_mode", [(3, 2, "thread"), (2, 2, "process")])
    def test_pi_matrix_matches_serial(self, pi_scheme, small_network, shards, workers, worker_mode):
        pairs = generate_workload(small_network, count=8, seed=67)
        serial = QueryEngine(pi_scheme).run_batch(pairs, workers=1, pipeline=False)
        combined = QueryEngine(pi_scheme, shards=shards).run_batch(
            pairs, workers=workers, worker_mode=worker_mode
        )
        _assert_identical_batches(serial, combined)

    def test_hybrid_process_mode_matches_serial(self, hybrid_scheme, small_network):
        # HY exercises both remote solve branches (region sets and subgraphs)
        pairs = generate_workload(small_network, count=10, seed=71)
        serial = QueryEngine(hybrid_scheme).run_batch(pairs, workers=1, pipeline=False)
        combined = QueryEngine(hybrid_scheme, shards=2).run_batch(
            pairs, workers=2, worker_mode="process"
        )
        _assert_identical_batches(serial, combined)

    def test_range_sharding_matches_serial(self, ci_scheme, small_network):
        pairs = generate_workload(small_network, count=6, seed=73)
        serial = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=False)
        ranged = QueryEngine(ci_scheme, shards=3, shard_strategy="range").run_batch(
            pairs, workers=2
        )
        _assert_identical_batches(serial, ranged)
