"""Property-based tests for the compression primitives and the compact codec."""

from hypothesis import given, settings, strategies as st

from repro.storage.compression import (
    decode_uint_sequence,
    delta_decode_ids,
    delta_encode_ids,
    dequantize_weights,
    encode_uint_sequence,
    quantize_weights,
    zigzag_decode,
    zigzag_encode,
)


class TestZigZagProperties:
    @given(st.integers(min_value=-(2**50), max_value=2**50))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers(min_value=-(2**20), max_value=2**20))
    def test_small_magnitude_maps_to_small_code(self, value):
        assert zigzag_encode(value) <= 2 * abs(value) + 1


class TestSequenceProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_uint_sequence_roundtrip(self, values):
        decoded, offset = decode_uint_sequence(encode_uint_sequence(values))
        assert decoded == values
        assert offset == len(encode_uint_sequence(values))

    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_delta_ids_roundtrip(self, values):
        decoded, _ = delta_decode_ids(delta_encode_ids(values))
        assert decoded == values

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            max_size=50,
        ),
        st.sampled_from([1e-3, 1e-2, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_weight_quantisation_error_bound(self, weights, resolution):
        ticks, used = quantize_weights(weights, resolution)
        restored = dequantize_weights(ticks, used)
        for original, back in zip(weights, restored):
            assert abs(original - back) <= used / 2 + 1e-9
