"""Property-based tests on graph algorithms and the XOR PIR."""

import math

from hypothesis import given, settings, strategies as st

from repro.network import (
    bidirectional_dijkstra,
    dijkstra_tree,
    grid_network,
    shortest_path,
)
from repro.pir import TwoServerXorPir


def graph_strategy():
    """Small random grid networks (always connected, deterministic per draw)."""
    return st.builds(
        grid_network,
        rows=st.integers(min_value=2, max_value=5),
        cols=st.integers(min_value=2, max_value=5),
        jitter=st.just(0.2),
        drop_fraction=st.just(0.0),
        seed=st.integers(min_value=0, max_value=1000),
    )


class TestShortestPathProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(), st.data())
    def test_triangle_inequality_of_distances(self, network, data):
        node_ids = list(network.node_ids())
        source = data.draw(st.sampled_from(node_ids))
        middle = data.draw(st.sampled_from(node_ids))
        target = data.draw(st.sampled_from(node_ids))
        tree = dijkstra_tree(network, source)
        middle_tree = dijkstra_tree(network, middle)
        direct = tree.distance_to(target)
        via_middle = tree.distance_to(middle) + middle_tree.distance_to(target)
        assert direct <= via_middle + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(), st.data())
    def test_path_cost_equals_edge_weight_sum(self, network, data):
        node_ids = list(network.node_ids())
        source = data.draw(st.sampled_from(node_ids))
        target = data.draw(st.sampled_from(node_ids))
        path = shortest_path(network, source, target)
        total = sum(network.edge_weight(a, b) for a, b in path.edges())
        assert math.isclose(path.cost, total, rel_tol=1e-9, abs_tol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(), st.data())
    def test_bidirectional_agrees_with_unidirectional(self, network, data):
        node_ids = list(network.node_ids())
        source = data.draw(st.sampled_from(node_ids))
        target = data.draw(st.sampled_from(node_ids))
        forward = shortest_path(network, source, target).cost
        both = bidirectional_dijkstra(network, source, target).cost
        assert math.isclose(forward, both, rel_tol=1e-9, abs_tol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(graph_strategy(), st.data())
    def test_symmetric_network_distances_are_symmetric(self, network, data):
        node_ids = list(network.node_ids())
        source = data.draw(st.sampled_from(node_ids))
        target = data.draw(st.sampled_from(node_ids))
        assert math.isclose(
            shortest_path(network, source, target).cost,
            shortest_path(network, target, source).cost,
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


class TestXorPirProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.binary(min_size=16, max_size=16), min_size=1, max_size=12),
        st.data(),
    )
    def test_any_block_can_be_retrieved(self, blocks, data):
        pir = TwoServerXorPir(blocks)
        index = data.draw(st.integers(min_value=0, max_value=len(blocks) - 1))
        assert pir.retrieve(index) == blocks[index]
