"""End-to-end integration tests across the whole stack.

These build a fresh (small) network from scratch, construct every scheme
without any shared pre-computation, and check the two headline claims of the
paper — exact shortest paths and query indistinguishability — plus the scheme
relationships the evaluation reports (PI faster but larger than CI, etc.).
"""

import math

import pytest

from repro import SystemSpec
from repro.bench.workloads import generate_workload
from repro.network import random_planar_network, shortest_path_cost
from repro.privacy import check_indistinguishability
from repro.schemes import (
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    HybridScheme,
    LandmarkScheme,
    PassageIndexScheme,
)

SPEC = SystemSpec(page_size=256)


@pytest.fixture(scope="module")
def fresh_network():
    return random_planar_network(160, seed=77)


@pytest.fixture(scope="module")
def fresh_workload(fresh_network):
    return generate_workload(fresh_network, count=6, seed=5)


@pytest.fixture(scope="module")
def built_schemes(fresh_network, fresh_workload):
    return {
        "CI": ConciseIndexScheme.build(fresh_network, spec=SPEC),
        "PI": PassageIndexScheme.build(fresh_network, spec=SPEC),
        "HY": HybridScheme.build(fresh_network, spec=SPEC, region_set_threshold=4),
        "PI*": ClusteredPassageIndexScheme.build(fresh_network, spec=SPEC, cluster_pages=2),
        "LM": LandmarkScheme.build(
            fresh_network, spec=SPEC, num_landmarks=3, plan_pairs=fresh_workload
        ),
    }


class TestEndToEnd:
    def test_every_scheme_answers_every_query_correctly(
        self, built_schemes, fresh_network, fresh_workload
    ):
        for name, scheme in built_schemes.items():
            for source, target in fresh_workload:
                result = scheme.query(source, target)
                expected = shortest_path_cost(fresh_network, source, target)
                assert math.isclose(result.path.cost, expected, rel_tol=1e-4), (name, source, target)

    def test_every_scheme_is_indistinguishable_across_queries(
        self, built_schemes, fresh_workload
    ):
        for name, scheme in built_schemes.items():
            results = [scheme.query(source, target) for source, target in fresh_workload[:4]]
            report = check_indistinguishability(results, scheme.plan)
            assert report.leaks_nothing, name

    def test_paper_relationships_hold(self, built_schemes, fresh_workload):
        """PI needs fewer PIR accesses than CI but much more space; the
        baselines need more accesses than both (Table 3 / Figure 7 shape)."""
        source, target = fresh_workload[0]
        pages = {
            name: scheme.query(source, target).total_pir_pages
            for name, scheme in built_schemes.items()
        }
        storage = {name: scheme.storage_mb for name, scheme in built_schemes.items()}
        assert pages["PI"] < pages["CI"]
        assert pages["LM"] >= pages["CI"]
        assert storage["PI"] > storage["CI"]
        assert storage["CI"] <= storage["HY"] <= storage["PI"] * 1.05

    def test_clustered_scheme_shrinks_the_index(self, built_schemes):
        pi_index = built_schemes["PI"].database.file("index").num_pages
        clustered_index = built_schemes["PI*"].database.file("index").num_pages
        assert clustered_index < pi_index

    def test_scp_limit_detection(self, built_schemes):
        """With the paper's 2.5 GByte limit none of these tiny databases is
        rejected; with an artificially tiny limit every scheme is."""
        for scheme in built_schemes.values():
            assert not scheme.exceeds_pir_file_limit()
        tiny_limit = ConciseIndexScheme.build(
            built_schemes["CI"].network, spec=SPEC.with_overrides(max_file_bytes=1024)
        )
        assert tiny_limit.exceeds_pir_file_limit()
