"""Shared fixtures for the test suite.

The fixtures build one small road network and (session-scoped) one instance of
every scheme on it, so individual tests stay fast while still exercising the
full build pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro import SystemSpec
from repro.bench.workloads import generate_workload
from repro.network import grid_network, random_planar_network
from repro.partition import compute_border_nodes, packed_kdtree_partition
from repro.precompute import compute_border_products
from repro.schemes import (
    ArcFlagScheme,
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    HybridScheme,
    LandmarkScheme,
    PassageIndexScheme,
)

#: Node count of the shared test network — small enough for fast builds,
#: large enough to produce a few dozen regions with the tiny page size below.
TEST_NETWORK_NODES = 220


@pytest.fixture(scope="session")
def tiny_spec() -> SystemSpec:
    """A system spec with a small page so the test network has many regions."""
    return SystemSpec(page_size=256)


@pytest.fixture(scope="session")
def small_network():
    """The shared small road network used across the scheme tests."""
    return random_planar_network(TEST_NETWORK_NODES, seed=3)


@pytest.fixture(scope="session")
def medium_network():
    """A slightly larger network for search-algorithm tests."""
    return random_planar_network(400, seed=5)


@pytest.fixture(scope="session")
def tiny_grid():
    """A small jittered grid network (deterministic shape)."""
    return grid_network(6, 6, jitter=0.15, seed=1)


@pytest.fixture(scope="session")
def query_pairs(small_network):
    """A seeded workload on the shared small network."""
    return generate_workload(small_network, count=8, seed=9)


@pytest.fixture(scope="session")
def partitioning(small_network, tiny_spec):
    return packed_kdtree_partition(small_network, tiny_spec.page_size - 8)


@pytest.fixture(scope="session")
def border_index(small_network, partitioning):
    return compute_border_nodes(small_network, partitioning)


@pytest.fixture(scope="session")
def border_products(small_network, partitioning, border_index):
    """Region sets and passage subgraphs for all region pairs."""
    return compute_border_products(
        small_network,
        partitioning,
        border_index,
        want_region_sets=True,
        want_subgraphs=True,
    )


@pytest.fixture(scope="session")
def ci_scheme(small_network, tiny_spec, partitioning, border_index, border_products):
    return ConciseIndexScheme.build(
        small_network,
        spec=tiny_spec,
        partitioning=partitioning,
        border_index=border_index,
        products=border_products,
    )


@pytest.fixture(scope="session")
def pi_scheme(small_network, tiny_spec, partitioning, border_index, border_products):
    return PassageIndexScheme.build(
        small_network,
        spec=tiny_spec,
        partitioning=partitioning,
        border_index=border_index,
        products=border_products,
    )


@pytest.fixture(scope="session")
def hybrid_scheme(small_network, tiny_spec, partitioning, border_index, border_products):
    threshold = max(2, border_products.max_region_set_size() // 3)
    return HybridScheme.build(
        small_network,
        spec=tiny_spec,
        region_set_threshold=threshold,
        partitioning=partitioning,
        border_index=border_index,
        products=border_products,
        passage_subgraphs=border_products.passage_subgraphs,
    )


@pytest.fixture(scope="session")
def clustered_scheme(small_network, tiny_spec):
    return ClusteredPassageIndexScheme.build(small_network, spec=tiny_spec, cluster_pages=2)


@pytest.fixture(scope="session")
def landmark_scheme(small_network, tiny_spec, query_pairs):
    return LandmarkScheme.build(
        small_network, spec=tiny_spec, num_landmarks=4, plan_pairs=query_pairs
    )


@pytest.fixture(scope="session")
def arcflag_scheme(small_network, tiny_spec, partitioning, border_index, query_pairs):
    return ArcFlagScheme.build(
        small_network,
        spec=tiny_spec,
        plan_pairs=query_pairs,
        partitioning=partitioning,
        border_index=border_index,
    )


@pytest.fixture()
def rng():
    return random.Random(1234)
