"""Tests for the benchmark harness components (datasets, workloads, runner, reporting)."""

import pytest

from repro.bench import (
    DATASETS,
    BuildCache,
    dataset_spec,
    format_series,
    format_table,
    generate_long_distance_workload,
    generate_workload,
    load_dataset,
    run_obfuscation_workload,
    run_workload,
    system_spec_for,
    table2_system,
)
from repro.schemes import ObfuscationScheme


class TestDatasets:
    def test_registry_matches_table1(self):
        assert set(DATASETS) == {
            "oldenburg",
            "germany",
            "argentina",
            "denmark",
            "india",
            "north_america",
        }
        assert dataset_spec("oldenburg").paper_nodes == 6105
        assert dataset_spec("north_america").paper_edges == 179179

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("atlantis")

    def test_quick_profile_is_scaled_down(self):
        for spec in DATASETS.values():
            assert spec.quick_nodes < spec.paper_nodes
            assert spec.nodes_for("quick") == spec.quick_nodes
            assert spec.nodes_for("paper") == spec.paper_nodes

    def test_load_dataset_generates_connected_network(self):
        network = load_dataset("oldenburg", profile="quick")
        assert network.num_nodes == dataset_spec("oldenburg").quick_nodes
        assert network.is_connected()

    def test_load_dataset_is_deterministic(self):
        first = load_dataset("oldenburg")
        second = load_dataset("oldenburg")
        assert {(e.source, e.target) for e in first.edges()} == {
            (e.source, e.target) for e in second.edges()
        }

    def test_profiles_and_specs(self):
        assert system_spec_for("quick").page_size == 512
        assert system_spec_for("paper").page_size == 4096
        with pytest.raises(ValueError):
            system_spec_for("bogus")
        with pytest.raises(ValueError):
            dataset_spec("oldenburg").nodes_for("bogus")


class TestWorkloads:
    def test_workload_size_and_reproducibility(self, small_network):
        first = generate_workload(small_network, count=15, seed=1)
        second = generate_workload(small_network, count=15, seed=1)
        assert first == second
        assert len(first) == 15
        assert all(source != target for source, target in first)

    def test_long_distance_workload_is_longer(self, small_network):
        short = generate_workload(small_network, count=20, seed=2)
        long = generate_long_distance_workload(small_network, count=20, seed=2)

        def mean_distance(pairs):
            return sum(small_network.euclidean_distance(s, t) for s, t in pairs) / len(pairs)

        assert mean_distance(long) > mean_distance(short)


class TestRunner:
    def test_run_workload_aggregates(self, ci_scheme, query_pairs):
        summary = run_workload(ci_scheme, query_pairs[:4])
        assert summary.scheme_name == "CI"
        assert summary.num_queries == 4
        assert summary.all_costs_correct
        assert summary.indistinguishable
        assert summary.mean_response_s > 0
        assert summary.mean_pir_s > 0
        assert summary.storage_mb == pytest.approx(ci_scheme.storage_mb)
        assert summary.mean_page_accesses["data"] == ci_scheme.plan.pages_per_file()["data"]
        row = summary.as_row()
        assert row["scheme"] == "CI"
        assert "pages_data" in row

    def test_empty_workload_rejected(self, ci_scheme):
        from repro.exceptions import SchemeError

        with pytest.raises(SchemeError):
            run_workload(ci_scheme, [])

    def test_obfuscation_runner(self, small_network, tiny_spec, query_pairs):
        scheme = ObfuscationScheme(small_network, spec=tiny_spec, set_size=5)
        row = run_obfuscation_workload(scheme, query_pairs[:3])
        assert row["scheme"] == "OBF"
        assert row["set_size"] == 5
        assert row["response_s"] > 0


class TestReporting:
    def test_format_table_alignment_and_missing_values(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text and "c" in text
        assert "2.500" in text
        assert "-" in text  # missing value placeholder

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series({1: 2.0, 2: 4.0}, "x", "y", title="curve")
        assert "curve" in text
        assert "4.000" in text

    def test_table2_rows(self):
        rows = table2_system()
        parameters = {row["parameter"] for row in rows}
        assert "Disk page size" in parameters
        assert "Communication round-trip time" in parameters


class TestBuildCache:
    def test_cache_memoises_networks_and_partitionings(self):
        cache = BuildCache("quick")
        first = cache.network("oldenburg")
        second = cache.network("oldenburg")
        assert first is second
        partition_first = cache.partitioning("oldenburg")
        partition_second = cache.partitioning("oldenburg")
        assert partition_first is partition_second
        cache.clear()
        assert cache.network("oldenburg") is not first

    def test_scheme_builder_invoked_once(self):
        cache = BuildCache("quick")
        calls = []

        def builder():
            calls.append(1)
            return object()

        first = cache.scheme(("key",), builder)
        second = cache.scheme(("key",), builder)
        assert first is second
        assert len(calls) == 1
