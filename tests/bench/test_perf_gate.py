"""Edge-case coverage for the performance regression gate.

The gate has to fail *loudly* on every way a baseline can rot: a missing
results directory, a truncated/malformed JSON file, an envelope of the wrong
shape, a registered benchmark whose baseline was deleted, and a metric that
vanished from an otherwise present payload.  Each case must come back as a
violation string naming the culprit — never a traceback, never a silent pass.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from perf_gate import (  # noqa: E402
    METRIC_FLOORS,
    check_floors,
    gate_committed_results,
    load_committed_results,
)

#: A micro_fastpath payload that clears every registered floor (the numpy
#: kernel guard is off, so its conditional floor does not apply).
PASSING_DATA = {
    "dijkstra": {"speedup": 5.0},
    "xor_pir": {"speedup": 6.0},
    "batch_CI": {"speedup": 3.0},
    "batch_PI": {"speedup": 3.5},
    "sharded_pir": {"speedup": 2.0},
    "xor_kernel": {"kernel": "python", "speedup": 1.0},
    "warm_pool": {"reuse": 1.0},
}

#: A serving payload that clears the serving floors (numpy kernel, so the
#: conditional throughput floor applies and is met).
PASSING_SERVING = {
    "kernel": "numpy",
    "retrievals_per_s": 1500.0,
    "bit_identical": 1.0,
}


def _write_envelope(directory: Path, name: str, data) -> Path:
    path = directory / f"{name}.json"
    path.write_text(
        json.dumps({"benchmark": name, "data": data}), encoding="utf-8"
    )
    return path


class TestLoadCommittedResults:
    def test_empty_directory_yields_nothing(self, tmp_path):
        results, problems = load_committed_results(tmp_path)
        assert results == {}
        assert problems == []

    def test_malformed_json_becomes_a_problem_not_a_crash(self, tmp_path):
        (tmp_path / "micro_fastpath.json").write_text("{truncated", encoding="utf-8")
        _write_envelope(tmp_path, "other", {"x": 1})
        results, problems = load_committed_results(tmp_path)
        assert list(results) == ["other"]  # the good file still loads
        assert len(problems) == 1
        assert "micro_fastpath.json" in problems[0]
        assert "unreadable baseline" in problems[0]

    def test_non_object_envelope_becomes_a_problem(self, tmp_path):
        (tmp_path / "weird.json").write_text("[1, 2, 3]", encoding="utf-8")
        results, problems = load_committed_results(tmp_path)
        assert results == {}
        assert len(problems) == 1
        assert "weird.json" in problems[0]
        assert "expected a JSON object" in problems[0]

    def test_benchmark_name_falls_back_to_file_stem(self, tmp_path):
        (tmp_path / "unnamed.json").write_text(
            json.dumps({"data": {"x": 1}}), encoding="utf-8"
        )
        results, _ = load_committed_results(tmp_path)
        assert results == {"unnamed": {"x": 1}}

    def test_list_data_payload_is_tolerated(self, tmp_path):
        # table-style benchmarks (table1_datasets, fig5_lm_tuning) commit
        # list payloads; they carry no floors and must load without fuss
        _write_envelope(tmp_path, "table1_datasets", [{"row": 1}])
        results, problems = load_committed_results(tmp_path)
        assert problems == []
        assert results["table1_datasets"] == [{"row": 1}]


class TestCheckFloors:
    def test_passing_payload_has_no_violations(self):
        assert check_floors({"micro_fastpath": PASSING_DATA}) == []

    def test_metric_below_floor_is_named(self):
        data = dict(PASSING_DATA, dijkstra={"speedup": 0.5})
        violations = check_floors({"micro_fastpath": data})
        assert len(violations) == 1
        assert "dijkstra.speedup" in violations[0]
        assert "0.50" in violations[0]
        assert "floor of 3" in violations[0]

    def test_missing_metric_is_a_violation(self):
        data = {k: v for k, v in PASSING_DATA.items() if k != "xor_pir"}
        violations = check_floors({"micro_fastpath": data})
        assert len(violations) == 1
        assert "xor_pir.speedup" in violations[0]
        assert "missing" in violations[0]

    def test_absent_benchmark_passes_by_default(self):
        assert check_floors({}) == []

    def test_absent_benchmark_fails_when_registration_is_required(self):
        violations = check_floors({}, require_registered=True)
        assert len(violations) == len(METRIC_FLOORS)
        named = "\n".join(violations)
        for benchmark in METRIC_FLOORS:
            assert benchmark in named
        assert "missing from the result set" in violations[0]

    def test_when_guard_skips_floor_unless_triggered(self):
        # kernel != numpy: the 10x packed-kernel floor must not apply
        data = dict(PASSING_DATA, xor_kernel={"kernel": "python", "speedup": 1.0})
        assert check_floors({"micro_fastpath": data}) == []

        # kernel == numpy with a regressed speedup: the floor bites
        data = dict(PASSING_DATA, xor_kernel={"kernel": "numpy", "speedup": 2.0})
        violations = check_floors({"micro_fastpath": data})
        assert len(violations) == 1
        assert "xor_kernel.speedup" in violations[0]

    def test_only_prefix_restricts_the_check(self):
        # everything except xor_kernel is absent, but the prefix filter
        # means only xor_kernel floors are evaluated at all
        data = {"xor_kernel": {"kernel": "numpy", "speedup": 50.0}}
        assert check_floors({"micro_fastpath": data}, only="xor_kernel.") == []

        data = {"xor_kernel": {"kernel": "numpy", "speedup": 2.0}}
        violations = check_floors({"micro_fastpath": data}, only="xor_kernel.")
        assert len(violations) == 1
        assert "xor_kernel.speedup" in violations[0]

    def test_unregistered_benchmark_is_ignored(self):
        results = {"micro_fastpath": PASSING_DATA, "mystery": {"speedup": 0.0}}
        assert check_floors(results) == []


class TestGateCommittedResults:
    def test_missing_directory_is_reported(self, tmp_path):
        gone = tmp_path / "does-not-exist"
        violations = gate_committed_results(gone)
        assert len(violations) == 1
        assert "no committed benchmark baselines" in violations[0]

    def test_deleted_registered_baseline_fails_the_gate(self, tmp_path):
        # only an unfloored benchmark is committed: micro_fastpath's absence
        # must not silently disable its floors
        _write_envelope(tmp_path, "table1_datasets", [{"row": 1}])
        violations = gate_committed_results(tmp_path)
        assert any("micro_fastpath" in v and "missing" in v for v in violations)

    def test_malformed_baseline_fails_the_gate(self, tmp_path):
        _write_envelope(tmp_path, "micro_fastpath", PASSING_DATA)
        _write_envelope(tmp_path, "serving", PASSING_SERVING)
        (tmp_path / "broken.json").write_text("not json", encoding="utf-8")
        violations = gate_committed_results(tmp_path)
        assert len(violations) == 1
        assert "broken.json" in violations[0]

    def test_healthy_baselines_pass(self, tmp_path):
        _write_envelope(tmp_path, "micro_fastpath", PASSING_DATA)
        _write_envelope(tmp_path, "serving", PASSING_SERVING)
        assert gate_committed_results(tmp_path) == []

    def test_committed_repository_baselines_pass_at_head(self):
        assert gate_committed_results() == []

    def test_registry_floors_are_sane(self):
        for benchmark, floors in METRIC_FLOORS.items():
            assert floors, benchmark
            for metric in floors:
                assert metric.floor > 0
                assert metric.path
