"""Tests for the extension (ablation) experiment functions."""

import pytest

from repro.bench import (
    ablation_oram_mechanism,
    ablation_region_compression,
    section4_full_materialization,
)


class TestOramAblation:
    def test_rows_and_online_advantage(self):
        rows = ablation_oram_mechanism(num_blocks_values=(16, 49), accesses=10)
        assert len(rows) == 2
        for row in rows:
            assert row["online_per_access"] < row["trivial_scan_per_access"]
            assert row["amortized_per_access"] >= row["online_per_access"]
            assert row["simulated_pir_s_per_page"] > 0


class TestRegionCompressionAblation:
    def test_single_dataset(self):
        rows = ablation_region_compression(datasets=("oldenburg",))
        assert len(rows) == 1
        row = rows[0]
        assert row["compact_kb"] < row["standard_kb"]
        assert row["regions"] > 1


class TestFullMaterializationExperiment:
    def test_oldenburg_paper_scale_exceeds_limit(self):
        rows = section4_full_materialization(datasets=("oldenburg",))
        assert len(rows) == 1
        row = rows[0]
        assert row["paper_scale_times_over_limit"] > 1.0
        assert row["paper_scale_gib"] > row["total_gib"]
