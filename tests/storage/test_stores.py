"""Unit tests for the pluggable page-store backends."""

import os

import pytest

from repro.exceptions import StorageError
from repro.storage import (
    STORE_BACKENDS,
    MemoryPageStore,
    MmapPageStore,
    SqlitePageStore,
    open_page_store,
    resolve_store_options,
    store_backend_scope,
    store_file_name,
)


@pytest.fixture(params=STORE_BACKENDS)
def store(request, tmp_path):
    """One store per backend, pre-sized to 32-byte pages."""
    opened = open_page_store(request.param, "data", page_size=32, directory=tmp_path)
    yield opened
    opened.close()


class TestPageStoreContract:
    def test_backend_names(self, store):
        assert store.backend in STORE_BACKENDS

    def test_append_and_read_back(self, store):
        assert store.append_page(b"alpha") == 0
        assert store.append_page(b"beta") == 1
        assert store.num_pages == 2
        assert store.get_payload(0) == b"alpha"
        assert store.get_page(1) == b"beta" + b"\x00" * 28
        assert store.page_used(0) == 5
        assert store.payload_bytes == 9

    def test_batch_matches_single_reads(self, store):
        for i in range(6):
            store.append_page(bytes([65 + i]) * (i + 1))
        batch = store.get_pages_batch([4, 0, 2, 4])
        assert batch == [store.get_page(4), store.get_page(0), store.get_page(2), store.get_page(4)]

    def test_iter_pages_in_order(self, store):
        payloads = [b"a", b"bb", b"ccc"]
        for payload in payloads:
            store.append_page(payload)
        assert list(store.iter_payloads()) == payloads
        assert [page[:3].rstrip(b"\x00") for page in store.iter_pages()] == payloads

    def test_put_page_overwrites(self, store):
        store.append_page(b"old")
        store.put_page(0, b"newer")
        assert store.get_payload(0) == b"newer"

    def test_put_page_invalidates_resolve_cache(self, store):
        store.append_page(b"one")
        calls = []

        def resolver(image):
            calls.append(bytes(image))
            return bytes(image[:3])

        assert store.resolve(0, resolver) == b"one"
        assert store.resolve(0, resolver) == b"one"
        assert len(calls) == 1  # memoised
        store.put_page(0, b"two")
        assert store.resolve(0, resolver) == b"two"
        assert len(calls) == 2

    def test_out_of_range_reads_raise(self, store):
        store.append_page(b"x")
        for bad in (-1, 1, 99):
            with pytest.raises(StorageError):
                store.get_page(bad)
        with pytest.raises(StorageError):
            store.get_pages_batch([0, 1])

    def test_oversized_payload_rejected(self, store):
        with pytest.raises(StorageError):
            store.append_page(b"x" * 33)

    def test_close_is_idempotent(self, store):
        store.append_page(b"x")
        store.close()
        store.close()


class TestDiskBackends:
    @pytest.mark.parametrize("backend", ["mmap", "sqlite"])
    def test_reopen_serves_same_bytes(self, backend, tmp_path):
        store = open_page_store(backend, "data", page_size=64, directory=tmp_path)
        payloads = [os.urandom(17 * (i % 3) + 1) for i in range(40)]
        for payload in payloads:
            store.append_page(payload)
        store.close()

        reopened = open_page_store(backend, "data", directory=tmp_path, create=False)
        assert reopened.page_size == 64  # read back from the medium
        assert reopened.num_pages == 40
        assert list(reopened.iter_payloads()) == payloads
        reopened.close()

    @pytest.mark.parametrize("backend", ["mmap", "sqlite"])
    def test_reads_interleave_with_appends(self, backend, tmp_path):
        # reads must see pages still sitting in the append buffer
        store = open_page_store(backend, "data", page_size=16, directory=tmp_path)
        for i in range(10):
            store.append_page(bytes([i]) * 4)
            assert store.get_payload(i) == bytes([i]) * 4
        store.close()

    def test_mmap_zero_copy_view(self, tmp_path):
        store = MmapPageStore(tmp_path / "data.mpages", page_size=32)
        store.append_page(b"zero-copy")
        view = store.get_page_view(0)
        assert isinstance(view, memoryview)
        assert bytes(view[:9]) == b"zero-copy"
        view.release()
        store.close()

    def test_mmap_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "data.mpages"
        path.write_bytes(b"not a page store file")
        with pytest.raises(StorageError):
            MmapPageStore(path, create=False)

    def test_sqlite_reopen_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            SqlitePageStore(tmp_path / "absent.sqlite", create=False)


class TestFactory:
    def test_unknown_backend(self, tmp_path):
        with pytest.raises(StorageError):
            open_page_store("tape", "data", page_size=32, directory=tmp_path)

    def test_disk_backend_requires_directory(self):
        with pytest.raises(StorageError):
            open_page_store("sqlite", "data", page_size=32)

    def test_memory_backend_cannot_reopen(self, tmp_path):
        with pytest.raises(StorageError):
            open_page_store("memory", "data", create=False)

    def test_store_file_names(self):
        assert store_file_name("mmap", "data") == "data.mpages"
        assert store_file_name("sqlite", "index") == "index.sqlite"

    def test_resolve_order_scope_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert resolve_store_options()[0] == "sqlite"
        with store_backend_scope("mmap", tmp_path):
            backend, directory = resolve_store_options()
            assert backend == "mmap"
            assert directory == tmp_path
            # explicit argument beats the scope
            assert resolve_store_options("memory")[0] == "memory"
        assert resolve_store_options()[0] == "sqlite"

    def test_resolve_defaults_to_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert resolve_store_options() == ("memory", None)

    def test_memory_store_is_default(self):
        store = MemoryPageStore(page_size=16)
        assert store.backend == "memory"
        assert store.num_pages == 0
