"""Tests for page files."""

import pytest

from repro.exceptions import PageOverflowError, StorageError
from repro.storage import MemoryPageStore, Page, PageFile


class TestPageFile:
    def test_requires_name(self):
        with pytest.raises(StorageError):
            PageFile("")

    def test_new_page_and_sizes(self):
        page_file = PageFile("data", page_size=128)
        page_file.new_page().append(b"abc")
        page_file.new_page()
        assert page_file.num_pages == 2
        assert page_file.size_bytes == 256
        assert page_file.payload_bytes == 3
        assert len(page_file) == 2

    def test_utilization(self):
        page_file = PageFile("data", page_size=100)
        page_file.new_page().append(b"a" * 90)
        page_file.new_page().append(b"a" * 10)
        assert page_file.utilization == pytest.approx(0.5)

    def test_append_record_packed_fills_pages(self):
        page_file = PageFile("data", page_size=10)
        assert page_file.append_record_packed(b"12345") == 0
        assert page_file.append_record_packed(b"1234") == 0
        assert page_file.append_record_packed(b"12") == 1
        assert page_file.num_pages == 2

    def test_append_record_too_large(self):
        page_file = PageFile("data", page_size=4)
        with pytest.raises(StorageError):
            page_file.append_record_packed(b"12345")

    def test_oversized_record_raises_page_overflow_with_context(self):
        # regression: used to surface as a bare StorageError without saying
        # which file rejected the record or what the page size was
        page_file = PageFile("region-data", page_size=64)
        with pytest.raises(PageOverflowError) as excinfo:
            page_file.append_record_packed(b"x" * 65)
        message = str(excinfo.value)
        assert "region-data" in message
        assert "64" in message
        # PageOverflowError remains a StorageError, so old handlers still work
        assert isinstance(excinfo.value, StorageError)

    def test_append_record_reopens_sealed_tail(self):
        # a sealed last page is transparently re-opened when a record fits
        store = MemoryPageStore(page_size=10)
        page_file = PageFile("data", page_size=10, store=store)
        page_file.append_record_packed(b"12345")
        page_file.flush()  # seals the tail onto the store
        assert page_file.append_record_packed(b"6789") == 0
        page_file.flush()
        assert store.num_pages == 1
        assert page_file.read_page(0).startswith(b"123456789")

    def test_read_page_and_bounds(self):
        page_file = PageFile("data", page_size=16)
        page_file.new_page().append(b"hello")
        assert page_file.read_page(0).startswith(b"hello")
        assert len(page_file.read_page(0)) == 16
        with pytest.raises(StorageError):
            page_file.read_page(1)
        with pytest.raises(StorageError):
            page_file.read_page(-1)

    def test_append_existing_page_checks_size(self):
        page_file = PageFile("data", page_size=16)
        with pytest.raises(StorageError):
            page_file.append_page(Page(32))
        number = page_file.append_page(Page(16))
        assert number == 0

    def test_to_bytes_concatenates_pages(self):
        page_file = PageFile("data", page_size=8)
        page_file.new_page().append(b"aa")
        page_file.new_page().append(b"bb")
        image = page_file.to_bytes()
        assert len(image) == 16
        assert image[0:2] == b"aa"
        assert image[8:10] == b"bb"

    def test_empty_file_utilization_zero(self):
        assert PageFile("data").utilization == 0.0
