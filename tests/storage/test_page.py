"""Tests for fixed-size disk pages."""

import pytest

from repro.exceptions import PageOverflowError
from repro.storage import Page


class TestPage:
    def test_empty_page(self):
        page = Page(128)
        assert page.used_bytes == 0
        assert page.free_bytes == 128
        assert page.utilization == 0.0
        assert len(page) == 128

    def test_append_and_offsets(self):
        page = Page(64)
        assert page.append(b"abc") == 0
        assert page.append(b"defg") == 3
        assert page.used_bytes == 7
        assert page.payload() == b"abcdefg"

    def test_to_bytes_pads_to_page_size(self):
        page = Page(16)
        page.append(b"xy")
        image = page.to_bytes()
        assert len(image) == 16
        assert image.startswith(b"xy")
        assert image[2:] == b"\x00" * 14

    def test_overflow_rejected(self):
        page = Page(8)
        page.append(b"12345678")
        with pytest.raises(PageOverflowError):
            page.append(b"x")

    def test_fits(self):
        page = Page(10)
        page.append(b"123456")
        assert page.fits(b"1234")
        assert not page.fits(b"12345")

    def test_from_bytes_round_trip(self):
        page = Page(32)
        page.append(b"hello")
        rebuilt = Page.from_bytes(page.to_bytes(), page_size=32)
        assert rebuilt.page_size == 32
        assert rebuilt.payload().startswith(b"hello")

    def test_from_bytes_too_large_rejected(self):
        with pytest.raises(PageOverflowError):
            Page.from_bytes(b"x" * 20, page_size=10)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            Page(0)

    def test_utilization_fraction(self):
        page = Page(100)
        page.append(b"a" * 25)
        assert page.utilization == pytest.approx(0.25)
