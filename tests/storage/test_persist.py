"""Tests for database disk persistence (save/load round trips and tampering)."""

import json

import pytest

from repro.exceptions import StorageError
from repro.storage import (
    Database,
    databases_equal,
    load_database,
    save_database,
)
from repro.storage.persist import HEADER_NAME, MANIFEST_NAME


def build_sample_database(page_size=128):
    database = Database(page_size)
    database.set_header(b"header-bytes-for-the-clients")
    lookup = database.create_file("lookup")
    lookup.append_record_packed(b"lookup-entry-1")
    lookup.append_record_packed(b"lookup-entry-2")
    data = database.create_file("data")
    for index in range(5):
        data.append_record_packed(bytes([index]) * 40)
    return database


class TestSaveLoadRoundTrip:
    def test_round_trip_is_bit_exact(self, tmp_path):
        original = build_sample_database()
        save_database(original, tmp_path)
        restored = load_database(tmp_path)
        assert databases_equal(original, restored)

    def test_manifest_and_files_written(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        assert (tmp_path / MANIFEST_NAME).exists()
        assert (tmp_path / HEADER_NAME).exists()
        assert (tmp_path / "lookup.pages").exists()
        assert (tmp_path / "data.pages").exists()

    def test_page_utilization_survives(self, tmp_path):
        original = build_sample_database()
        save_database(original, tmp_path)
        restored = load_database(tmp_path)
        for name in original.file_names():
            assert restored.file(name).utilization == original.file(name).utilization

    def test_resave_overwrites(self, tmp_path):
        database = build_sample_database()
        save_database(database, tmp_path)
        database.file("data").append_record_packed(b"extra-record")
        save_database(database, tmp_path)
        restored = load_database(tmp_path)
        assert databases_equal(database, restored)

    def test_empty_database(self, tmp_path):
        database = Database(64)
        database.set_header(b"h")
        save_database(database, tmp_path)
        restored = load_database(tmp_path)
        assert databases_equal(database, restored)

    def test_scheme_database_round_trip(self, ci_scheme, tmp_path):
        save_database(ci_scheme.database, tmp_path)
        restored = load_database(tmp_path)
        assert databases_equal(ci_scheme.database, restored)


class TestLoadFailures:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_corrupt_manifest_json(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_unsupported_version(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text(encoding="utf-8"))
        manifest["version"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_tampered_page_file_detected(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        image = bytearray((tmp_path / "data.pages").read_bytes())
        image[0] ^= 0xFF
        (tmp_path / "data.pages").write_bytes(bytes(image))
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_tampered_header_detected(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        (tmp_path / HEADER_NAME).write_bytes(b"evil header")
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_verification_can_be_disabled(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        image = bytearray((tmp_path / "data.pages").read_bytes())
        image[0] ^= 0xFF
        (tmp_path / "data.pages").write_bytes(bytes(image))
        restored = load_database(tmp_path, verify=False)
        assert restored.has_file("data")

    def test_missing_page_file(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        (tmp_path / "data.pages").unlink()
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_truncated_page_file(self, tmp_path):
        save_database(build_sample_database(), tmp_path)
        image = (tmp_path / "data.pages").read_bytes()
        (tmp_path / "data.pages").write_bytes(image[:-10])
        with pytest.raises(StorageError):
            load_database(tmp_path)


class TestDatabasesEqual:
    def test_different_headers(self):
        first = build_sample_database()
        second = build_sample_database()
        second.set_header(b"other header")
        assert not databases_equal(first, second)

    def test_different_file_sets(self):
        first = build_sample_database()
        second = build_sample_database()
        second.create_file("extra")
        assert not databases_equal(first, second)

    def test_identical(self):
        assert databases_equal(build_sample_database(), build_sample_database())
