"""Tests for the LBS database (named page files plus header)."""

import pytest

from repro.exceptions import StorageError
from repro.storage import Database, PageFile


class TestDatabase:
    def test_create_and_lookup_files(self):
        database = Database(page_size=64)
        data = database.create_file("data")
        assert database.has_file("data")
        assert database.file("data") is data
        assert list(database.file_names()) == ["data"]

    def test_duplicate_file_rejected(self):
        database = Database(page_size=64)
        database.create_file("data")
        with pytest.raises(StorageError):
            database.create_file("data")

    def test_unknown_file_rejected(self):
        with pytest.raises(StorageError):
            Database().file("missing")

    def test_add_existing_file_checks_page_size(self):
        database = Database(page_size=64)
        with pytest.raises(StorageError):
            database.add_file(PageFile("index", page_size=128))
        database.add_file(PageFile("index", page_size=64))
        assert database.has_file("index")

    def test_header_storage(self):
        database = Database()
        assert database.header == b""
        database.set_header(b"header-bytes")
        assert database.header == b"header-bytes"
        assert database.header_size_bytes == 12

    def test_total_size_includes_header_and_files(self):
        database = Database(page_size=32)
        database.set_header(b"h" * 10)
        data = database.create_file("data")
        data.new_page()
        data.new_page()
        assert database.total_size_bytes == 10 + 64
        assert database.total_size_mb == pytest.approx((10 + 64) / (1024 * 1024))
