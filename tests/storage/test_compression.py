"""Tests for the integer-sequence compression primitives."""

import pytest

from repro.exceptions import StorageError
from repro.storage.compression import (
    compression_ratio,
    decode_uint_sequence,
    delta_decode_ids,
    delta_encode_ids,
    dequantize_weights,
    encode_uint_sequence,
    quantize_weights,
    zigzag_decode,
    zigzag_encode,
)


class TestZigZag:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (1000, 2000), (-1000, 1999)],
    )
    def test_known_values(self, value, expected):
        assert zigzag_encode(value) == expected
        assert zigzag_decode(expected) == value

    @pytest.mark.parametrize("value", [0, 1, -1, 7, -7, 12345, -12345, 2**40, -(2**40)])
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_decode_rejects_negative(self):
        with pytest.raises(StorageError):
            zigzag_decode(-1)


class TestUintSequences:
    def test_roundtrip(self):
        values = [0, 1, 127, 128, 300, 2**20, 5]
        data = encode_uint_sequence(values)
        decoded, offset = decode_uint_sequence(data)
        assert decoded == values
        assert offset == len(data)

    def test_empty_sequence(self):
        data = encode_uint_sequence([])
        decoded, offset = decode_uint_sequence(data)
        assert decoded == []
        assert offset == len(data)

    def test_concatenated_sequences(self):
        first = encode_uint_sequence([1, 2, 3])
        second = encode_uint_sequence([9])
        decoded_first, offset = decode_uint_sequence(first + second)
        decoded_second, end = decode_uint_sequence(first + second, offset)
        assert decoded_first == [1, 2, 3]
        assert decoded_second == [9]
        assert end == len(first) + len(second)


class TestDeltaIds:
    def test_roundtrip_sorted_ids(self):
        ids = [10, 11, 12, 15, 100, 101]
        data = delta_encode_ids(ids)
        decoded, offset = delta_decode_ids(data)
        assert decoded == ids
        assert offset == len(data)

    def test_roundtrip_unsorted_and_negative_deltas(self):
        ids = [50, 10, 300, 299, 0]
        decoded, _ = delta_decode_ids(delta_encode_ids(ids))
        assert decoded == ids

    def test_empty(self):
        decoded, _ = delta_decode_ids(delta_encode_ids([]))
        assert decoded == []

    def test_clustered_ids_compress_better_than_plain_varints(self):
        ids = list(range(10_000, 10_200))
        delta = delta_encode_ids(ids)
        plain = encode_uint_sequence(ids)
        assert len(delta) < len(plain)


class TestWeightQuantisation:
    def test_roundtrip_within_resolution(self):
        weights = [0.0, 1.2345, 17.5, 0.001, 123.456]
        ticks, resolution = quantize_weights(weights, resolution=1e-3)
        restored = dequantize_weights(ticks, resolution)
        for original, back in zip(weights, restored):
            assert abs(original - back) <= resolution / 2 + 1e-12

    def test_invalid_resolution(self):
        with pytest.raises(StorageError):
            quantize_weights([1.0], resolution=0.0)


class TestCompressionRatio:
    def test_ratio(self):
        assert compression_ratio(100, 40) == pytest.approx(0.4)

    def test_invalid_original(self):
        with pytest.raises(StorageError):
            compression_ratio(0, 10)
