"""Tests for the binary record codecs."""

import pytest

from repro.exceptions import StorageError
from repro.storage import RecordReader, RecordWriter
from repro.storage.record import decode_varint, encode_varint


class TestPrimitives:
    def test_uint32_round_trip(self):
        writer = RecordWriter()
        writer.uint32(0).uint32(1).uint32(0xFFFFFFFF)
        reader = RecordReader(writer.getvalue())
        assert reader.uint32() == 0
        assert reader.uint32() == 1
        assert reader.uint32() == 0xFFFFFFFF

    def test_uint32_out_of_range(self):
        with pytest.raises(StorageError):
            RecordWriter().uint32(-1)
        with pytest.raises(StorageError):
            RecordWriter().uint32(2**32)

    def test_uint16_round_trip(self):
        writer = RecordWriter()
        writer.uint16(0).uint16(65535)
        reader = RecordReader(writer.getvalue())
        assert reader.uint16() == 0
        assert reader.uint16() == 65535

    def test_float32_round_trip_approximate(self):
        writer = RecordWriter()
        writer.float32(3.14159)
        assert RecordReader(writer.getvalue()).float32() == pytest.approx(3.14159, rel=1e-6)

    def test_float64_round_trip_exact(self):
        value = 123456.789012345
        writer = RecordWriter()
        writer.float64(value)
        assert RecordReader(writer.getvalue()).float64() == value

    def test_string_round_trip(self):
        writer = RecordWriter()
        writer.string("héllo world")
        assert RecordReader(writer.getvalue()).string() == "héllo world"

    def test_raw_and_remaining(self):
        writer = RecordWriter()
        writer.raw(b"abc")
        reader = RecordReader(writer.getvalue())
        assert reader.remaining() == 3
        assert reader.raw(2) == b"ab"
        assert reader.remaining() == 1

    def test_raw_past_end(self):
        reader = RecordReader(b"ab")
        with pytest.raises(StorageError):
            reader.raw(3)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21 - 1, 2**32, 2**40])
    def test_round_trip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_small_values_are_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(StorageError):
            encode_varint(-1)

    def test_truncated_varint(self):
        with pytest.raises(StorageError):
            decode_varint(b"\x80")


class TestCompositeRecords:
    def test_uint32_list_round_trip(self):
        writer = RecordWriter()
        writer.uint32_list([5, 9, 1, 0])
        assert RecordReader(writer.getvalue()).uint32_list() == [5, 9, 1, 0]

    def test_empty_list(self):
        writer = RecordWriter()
        writer.uint32_list([])
        assert RecordReader(writer.getvalue()).uint32_list() == []

    def test_mixed_record(self):
        writer = RecordWriter()
        writer.uint32(7).float32(2.5).varint(300).string("fi").uint32_list([1, 2])
        reader = RecordReader(writer.getvalue())
        assert reader.uint32() == 7
        assert reader.float32() == pytest.approx(2.5)
        assert reader.varint() == 300
        assert reader.string() == "fi"
        assert reader.uint32_list() == [1, 2]
        assert reader.remaining() == 0

    def test_writer_length(self):
        writer = RecordWriter()
        writer.uint32(1).float32(1.0)
        assert len(writer) == 8
