"""Edge cases of the Hybrid scheme's replacement threshold."""

import math

import pytest

from repro.exceptions import SchemeError
from repro.network import shortest_path_cost
from repro.schemes import HybridScheme


@pytest.fixture(scope="module")
def shared(request):
    return {
        "network": request.getfixturevalue("small_network"),
        "spec": request.getfixturevalue("tiny_spec"),
        "partitioning": request.getfixturevalue("partitioning"),
        "border_index": request.getfixturevalue("border_index"),
        "products": request.getfixturevalue("border_products"),
    }


def build_hybrid(shared, threshold, subgraphs=None):
    return HybridScheme.build(
        shared["network"],
        spec=shared["spec"],
        region_set_threshold=threshold,
        partitioning=shared["partitioning"],
        border_index=shared["border_index"],
        products=shared["products"],
        passage_subgraphs=subgraphs,
    )


class TestHybridThresholdExtremes:
    def test_threshold_above_m_degenerates_to_region_sets_only(self, shared, query_pairs):
        max_size = shared["products"].max_region_set_size()
        scheme = build_hybrid(shared, threshold=max_size + 1)
        assert scheme.num_replaced_pairs == 0
        source, target = query_pairs[0]
        result = scheme.query(source, target)
        expected = shortest_path_cost(shared["network"], source, target)
        assert math.isclose(result.path.cost, expected, rel_tol=1e-4)
        assert result.adversary_view == scheme.plan.expected_adversary_view()

    def test_threshold_zero_replaces_every_nonempty_pair(self, shared, query_pairs):
        scheme = build_hybrid(
            shared, threshold=0, subgraphs=shared["products"].passage_subgraphs
        )
        nonempty = sum(1 for s in shared["products"].region_sets.values() if len(s) > 0)
        assert scheme.num_replaced_pairs == nonempty
        for source, target in query_pairs[:3]:
            result = scheme.query(source, target)
            expected = shortest_path_cost(shared["network"], source, target)
            assert math.isclose(result.path.cost, expected, rel_tol=1e-4)
            assert result.adversary_view == scheme.plan.expected_adversary_view()

    def test_lower_threshold_means_more_space_and_fewer_final_round_pages(self, shared):
        max_size = shared["products"].max_region_set_size()
        loose = build_hybrid(shared, threshold=max_size + 1)
        tight = build_hybrid(
            shared, threshold=max(1, max_size // 4), subgraphs=shared["products"].passage_subgraphs
        )
        assert tight.storage_bytes >= loose.storage_bytes
        assert tight.plan.rounds[-1].total_pages <= loose.plan.rounds[-1].total_pages

    def test_missing_subgraphs_for_replaced_pairs_rejected(self, shared):
        with pytest.raises(SchemeError):
            build_hybrid(shared, threshold=1, subgraphs={})
