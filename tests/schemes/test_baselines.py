"""Tests specific to the LM, AF and OBF baselines."""

import math

import pytest

from repro.exceptions import PlanViolationError
from repro.network import shortest_path_cost
from repro.schemes import DATA_FILE, LandmarkScheme, ObfuscationScheme, generate_plan_pairs


class TestLandmarkBaseline:
    def test_plan_is_one_header_round_then_page_rounds(self, landmark_scheme):
        plan = landmark_scheme.plan
        assert plan.rounds[0].includes_header
        assert plan.rounds[1].fetches == ((DATA_FILE, 2),)
        for round_spec in plan.rounds[2:]:
            assert round_spec.fetches == ((DATA_FILE, 1),)
        assert plan.total_pir_pages() == landmark_scheme.max_pages

    def test_more_landmarks_means_bigger_database(self, small_network, tiny_spec, query_pairs):
        small = LandmarkScheme.build(
            small_network, spec=tiny_spec, num_landmarks=2, plan_pairs=query_pairs
        )
        large = LandmarkScheme.build(
            small_network, spec=tiny_spec, num_landmarks=8, plan_pairs=query_pairs
        )
        assert large.storage_bytes > small.storage_bytes

    def test_query_outside_plan_pairs_may_violate_plan(self, small_network, tiny_spec):
        """A plan derived from too small a sample is rejected loudly, never silently leaked."""
        trivial_pairs = [(0, 0)]
        scheme = LandmarkScheme.build(
            small_network, spec=tiny_spec, num_landmarks=2, plan_pairs=trivial_pairs
        )
        far_pairs = generate_plan_pairs(small_network, count=30, seed=3)
        saw_violation = False
        for source, target in far_pairs:
            try:
                scheme.query(source, target)
            except PlanViolationError:
                saw_violation = True
                break
        assert saw_violation

    def test_reads_large_fraction_of_database(self, landmark_scheme):
        """The fixed plan forces every query to pay for the worst query."""
        data_pages = landmark_scheme.database.file(DATA_FILE).num_pages
        assert landmark_scheme.max_pages >= data_pages * 0.2


class TestArcFlagBaseline:
    def test_pages_per_region_at_least_one(self, arcflag_scheme):
        assert arcflag_scheme.pages_per_region >= 1
        data_pages = arcflag_scheme.database.file(DATA_FILE).num_pages
        expected = arcflag_scheme.partitioning.num_regions * arcflag_scheme.pages_per_region
        assert data_pages == expected

    def test_af_database_larger_than_raw_network(self, arcflag_scheme, ci_scheme):
        """Arc-flag bit vectors inflate the region data beyond CI's plain region data."""
        assert (
            arcflag_scheme.database.file(DATA_FILE).num_pages
            >= ci_scheme.database.file(DATA_FILE).num_pages
        )

    def test_plan_pages_are_multiples_of_region_pages(self, arcflag_scheme):
        for round_spec in arcflag_scheme.plan.rounds[1:]:
            assert round_spec.pages_for(DATA_FILE) % arcflag_scheme.pages_per_region == 0


class TestObfuscationBaseline:
    def test_returns_true_shortest_path(self, small_network, query_pairs, tiny_spec):
        scheme = ObfuscationScheme(small_network, spec=tiny_spec, set_size=5)
        source, target = query_pairs[0]
        result = scheme.query(source, target)
        expected = shortest_path_cost(small_network, source, target)
        assert math.isclose(result.path.cost, expected, rel_tol=1e-9)
        assert result.candidate_paths == 25

    def test_response_grows_quadratically_with_set_size(self, small_network, query_pairs, tiny_spec):
        source, target = query_pairs[0]
        small = ObfuscationScheme(small_network, spec=tiny_spec, set_size=5).query(source, target)
        large = ObfuscationScheme(small_network, spec=tiny_spec, set_size=20).query(source, target)
        assert large.response.server_s > 10 * small.response.server_s

    def test_decoys_exclude_the_real_location(self, small_network, tiny_spec):
        scheme = ObfuscationScheme(small_network, spec=tiny_spec, set_size=10)
        decoys = scheme.choose_decoys(exclude=3, count=9)
        assert len(decoys) == 9
        assert 3 not in decoys
        assert len(set(decoys)) == 9

    def test_invalid_set_size(self, small_network, tiny_spec):
        from repro.exceptions import SchemeError

        with pytest.raises(SchemeError):
            ObfuscationScheme(small_network, spec=tiny_spec, set_size=0)

    def test_too_many_decoys_rejected(self, tiny_grid, tiny_spec):
        from repro.exceptions import SchemeError

        scheme = ObfuscationScheme(tiny_grid, spec=tiny_spec, set_size=5)
        with pytest.raises(SchemeError):
            scheme.choose_decoys(exclude=0, count=tiny_grid.num_nodes)
