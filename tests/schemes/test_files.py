"""Tests for header, look-up and region-data file builders."""

import pytest

from repro.exceptions import SchemeError
from repro.partition import packed_kdtree_partition
from repro.schemes import QueryPlan, RoundSpec
from repro.schemes.files import (
    DATA_FILE,
    HeaderInfo,
    build_lookup_file,
    build_region_data_file,
    decode_region_pages,
    lookup_entries_per_page,
    read_lookup_entry,
)
from repro.storage import Database


def make_header(**overrides):
    defaults = dict(
        scheme_name="CI",
        page_size=256,
        num_regions=10,
        data_file="data",
        index_file="index",
        lookup_file="lookup",
        data_pages_per_region=1,
        data_page_offset=0,
        lookup_entries_per_page=64,
        index_fetch_pages=2,
        data_round_pages=7,
        num_index_pages=40,
        num_data_pages=10,
        num_lookup_pages=2,
        tree_splits=[(0, 2, 0.0, 3, 0)],
        plan=QueryPlan.from_rounds([RoundSpec(includes_header=True)]),
    )
    defaults.update(overrides)
    return HeaderInfo(**defaults)


class TestHeaderInfo:
    def test_encode_decode_round_trip(self, partitioning):
        header = make_header(
            num_regions=partitioning.num_regions, tree_splits=partitioning.tree_splits()
        )
        decoded = HeaderInfo.decode(header.encode())
        assert decoded.scheme_name == "CI"
        assert decoded.num_regions == partitioning.num_regions
        assert decoded.index_fetch_pages == 2
        assert decoded.data_round_pages == 7
        assert decoded.plan == header.plan
        assert decoded.tree_splits == partitioning.tree_splits()

    def test_region_of_point_matches_partitioning(self, small_network, partitioning):
        header = make_header(
            num_regions=partitioning.num_regions, tree_splits=partitioning.tree_splits()
        )
        for node in list(small_network.nodes())[::17]:
            assert header.region_of_point(node.x, node.y) == partitioning.region_of_node(
                node.node_id
            )

    def test_lookup_page_for(self):
        header = make_header(num_regions=10, lookup_entries_per_page=16)
        page, slot = header.lookup_page_for(0, 5)
        assert (page, slot) == (0, 5)
        page, slot = header.lookup_page_for(3, 7)  # index 37
        assert (page, slot) == (2, 5)

    def test_data_pages_for_region_with_clustering_and_offset(self):
        header = make_header(data_pages_per_region=3, data_page_offset=100)
        assert header.data_pages_for_region(0) == [100, 101, 102]
        assert header.data_pages_for_region(2) == [106, 107, 108]

    def test_index_window_clamps_at_file_end(self):
        header = make_header(index_fetch_pages=3, num_index_pages=10)
        assert header.index_pages_starting_at(0) == [0, 1, 2]
        assert header.index_pages_starting_at(9) == [7, 8, 9]
        assert header.index_pages_starting_at(8) == [7, 8, 9]

    def test_index_window_smaller_file_than_window(self):
        header = make_header(index_fetch_pages=5, num_index_pages=3)
        assert header.index_pages_starting_at(1) == [0, 1, 2]


class TestLookupFile:
    def test_entries_round_trip(self):
        database = Database(page_size=64)
        lookup = build_lookup_file(database, num_regions=5, index_page_of_pair=lambda i, j: i * 5 + j)
        entries_per_page = lookup_entries_per_page(64)
        for region_i in range(5):
            for region_j in range(5):
                index = region_i * 5 + region_j
                page = lookup.read_page(index // entries_per_page)
                assert read_lookup_entry(page, index % entries_per_page) == index

    def test_page_count(self):
        database = Database(page_size=64)
        lookup = build_lookup_file(database, num_regions=8, index_page_of_pair=lambda i, j: 0)
        assert lookup.num_pages == (64 + 15) // 16  # 64 entries of 4 bytes, 16 per page


class TestRegionDataFile:
    def test_single_page_regions_round_trip(self, small_network, partitioning, tiny_spec):
        database = Database(tiny_spec.page_size)
        data_file = build_region_data_file(database, small_network, partitioning, 1)
        assert data_file.num_pages == partitioning.num_regions
        for region in partitioning.regions():
            decoded = decode_region_pages([data_file.read_page(region.region_id)])
            assert set(decoded) == set(region.node_ids)

    def test_clustered_regions_round_trip(self, small_network, tiny_spec):
        pages_per_region = 2
        capacity = pages_per_region * tiny_spec.page_size - 8
        partitioning = packed_kdtree_partition(small_network, capacity)
        database = Database(tiny_spec.page_size)
        data_file = build_region_data_file(database, small_network, partitioning, pages_per_region)
        assert data_file.num_pages == pages_per_region * partitioning.num_regions
        for region in partitioning.regions():
            pages = [
                data_file.read_page(page_number)
                for page_number in range(
                    region.region_id * pages_per_region,
                    (region.region_id + 1) * pages_per_region,
                )
            ]
            decoded = decode_region_pages(pages)
            assert set(decoded) == set(region.node_ids)

    def test_oversized_region_rejected(self, small_network, partitioning):
        database = Database(page_size=32)  # far too small for any region payload
        with pytest.raises(SchemeError):
            build_region_data_file(database, small_network, partitioning, 1)
