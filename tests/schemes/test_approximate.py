"""Tests for the Approximate Passage Index scheme (APX)."""

import pytest

from repro.exceptions import SchemeError
from repro.network import shortest_path_cost
from repro.privacy import check_indistinguishability
from repro.schemes import (
    ApproximatePassageIndexScheme,
    DATA_FILE,
    INDEX_FILE,
    LOOKUP_FILE,
    measure_cost_deviation,
)

EPSILON = 0.25


@pytest.fixture(scope="module")
def apx_scheme(small_network, tiny_spec, partitioning, border_index):
    return ApproximatePassageIndexScheme.build(
        small_network,
        epsilon=EPSILON,
        spec=tiny_spec,
        partitioning=partitioning,
        border_index=border_index,
    )


class TestApproximateBuild:
    def test_negative_epsilon_rejected(self, small_network, tiny_spec):
        with pytest.raises(SchemeError):
            ApproximatePassageIndexScheme.build(small_network, epsilon=-0.5, spec=tiny_spec)

    def test_scheme_name_and_bound(self, apx_scheme):
        assert apx_scheme.name == "APX"
        assert apx_scheme.epsilon == pytest.approx(EPSILON)
        assert apx_scheme.deviation_bound == pytest.approx(1.0 + EPSILON)

    def test_same_file_layout_as_pi(self, apx_scheme, pi_scheme):
        assert set(apx_scheme.database.file_names()) == set(pi_scheme.database.file_names())
        assert apx_scheme.plan.num_rounds == pi_scheme.plan.num_rounds == 3

    def test_index_is_no_larger_than_exact_pi(self, apx_scheme, pi_scheme):
        apx_pages = apx_scheme.database.file(INDEX_FILE).num_pages
        pi_pages = pi_scheme.database.file(INDEX_FILE).num_pages
        assert apx_pages <= pi_pages

    def test_storage_no_larger_than_exact_pi(self, apx_scheme, pi_scheme):
        assert apx_scheme.storage_bytes <= pi_scheme.storage_bytes

    def test_sparsification_stats_attached(self, apx_scheme):
        stats = apx_scheme.sparsification_stats
        assert stats.epsilon == pytest.approx(EPSILON)
        assert stats.pairs_selected + stats.pairs_skipped == stats.pairs_total


class TestApproximateQueries:
    def test_returned_paths_are_valid_and_within_bound(
        self, apx_scheme, small_network, query_pairs
    ):
        for source, target in query_pairs:
            result = apx_scheme.query(source, target)
            path = result.path
            assert path.source == source
            assert path.target == target
            # every hop is a real network edge
            for a, b in path.edges():
                assert small_network.has_edge(a, b)
            exact = shortest_path_cost(small_network, source, target)
            assert path.cost <= (1.0 + EPSILON) * exact * (1.0 + 1e-4) + 1e-9
            assert path.cost >= exact * (1.0 - 1e-4) - 1e-9

    def test_zero_epsilon_returns_exact_costs(
        self, small_network, tiny_spec, partitioning, border_index, query_pairs
    ):
        scheme = ApproximatePassageIndexScheme.build(
            small_network,
            epsilon=0.0,
            spec=tiny_spec,
            partitioning=partitioning,
            border_index=border_index,
        )
        for source, target in query_pairs:
            result = scheme.query(source, target)
            exact = shortest_path_cost(small_network, source, target)
            assert result.path.cost == pytest.approx(exact, rel=1e-4)

    def test_adversary_views_identical_across_queries(self, apx_scheme, query_pairs):
        results = [apx_scheme.query(source, target) for source, target in query_pairs]
        report = check_indistinguishability(results, apx_scheme.plan)
        assert report.leaks_nothing

    def test_plan_files_touched(self, apx_scheme, query_pairs):
        source, target = query_pairs[0]
        result = apx_scheme.query(source, target)
        accesses = result.pages_per_file
        assert accesses[LOOKUP_FILE] == 1
        assert accesses[DATA_FILE] == apx_scheme.header.data_round_pages
        assert accesses[INDEX_FILE] == apx_scheme.header.index_fetch_pages


class TestMeasureCostDeviation:
    def test_ratios_within_bound(self, apx_scheme, small_network, query_pairs):
        ratios = measure_cost_deviation(apx_scheme, small_network, query_pairs)
        assert len(ratios) == len(query_pairs)
        for ratio in ratios:
            assert 1.0 - 1e-4 <= ratio <= (1.0 + EPSILON) * (1.0 + 1e-4)

    def test_same_source_and_target_reports_ratio_one(self, apx_scheme, small_network):
        node = next(small_network.node_ids())
        ratios = measure_cost_deviation(apx_scheme, small_network, [(node, node)])
        assert ratios == [1.0]
