"""Tests for query plans."""

from repro.pir import AdversaryEvent
from repro.schemes import QueryPlan, RoundSpec
from repro.storage import RecordReader


def sample_plan():
    return QueryPlan.from_rounds(
        [
            RoundSpec(includes_header=True),
            RoundSpec(fetches=(("lookup", 1),)),
            RoundSpec(fetches=(("index", 3),)),
            RoundSpec(fetches=(("index", 2), ("data", 5))),
        ]
    )


class TestQueryPlan:
    def test_round_and_page_counts(self):
        plan = sample_plan()
        assert plan.num_rounds == 4
        assert plan.total_pir_pages() == 11
        assert plan.pages_per_file() == {"lookup": 1, "index": 5, "data": 5}

    def test_round_spec_helpers(self):
        round_spec = RoundSpec(fetches=(("index", 2), ("data", 5)))
        assert round_spec.pages_for("index") == 2
        assert round_spec.pages_for("missing") == 0
        assert round_spec.total_pages == 7

    def test_expected_adversary_view(self):
        plan = sample_plan()
        view = plan.expected_adversary_view()
        assert view.events[0] == AdversaryEvent(1, "header", "")
        assert view.events[1] == AdversaryEvent(2, "pir", "lookup")
        # round 4 must list index pages before data pages, in plan order
        round4 = [event for event in view.events if event.round_number == 4]
        assert [event.file_name for event in round4] == ["index"] * 2 + ["data"] * 5
        assert view.num_rounds() == 4

    def test_encode_decode_round_trip(self):
        plan = sample_plan()
        decoded = QueryPlan.decode(RecordReader(plan.encode()))
        assert decoded == plan
        assert decoded.expected_adversary_view() == plan.expected_adversary_view()

    def test_empty_plan(self):
        plan = QueryPlan.from_rounds([])
        assert plan.num_rounds == 0
        assert plan.total_pir_pages() == 0
        assert plan.expected_adversary_view().events == ()
