"""Scheme-specific structural tests for CI, PI, HY and PI*."""

import pytest

from repro.schemes import (
    COMBINED_FILE,
    DATA_FILE,
    INDEX_FILE,
    LOOKUP_FILE,
)


class TestConciseIndexStructure:
    def test_four_files_plus_header(self, ci_scheme):
        names = set(ci_scheme.database.file_names())
        assert names == {LOOKUP_FILE, INDEX_FILE, DATA_FILE}
        assert ci_scheme.database.header_size_bytes > 0

    def test_plan_shape(self, ci_scheme):
        plan = ci_scheme.plan
        assert plan.num_rounds == 4
        assert plan.rounds[0].includes_header
        assert plan.rounds[1].fetches == ((LOOKUP_FILE, 1),)
        assert plan.rounds[2].fetches[0][0] == INDEX_FILE
        assert plan.rounds[3].fetches == ((DATA_FILE, ci_scheme.max_region_set_size + 2),)

    def test_one_data_page_per_region(self, ci_scheme):
        assert ci_scheme.database.file(DATA_FILE).num_pages == ci_scheme.partitioning.num_regions

    def test_m_matches_precomputation(self, ci_scheme, border_products):
        assert ci_scheme.max_region_set_size == border_products.max_region_set_size()

    def test_header_decodes_to_scheme_parameters(self, ci_scheme):
        from repro.schemes import HeaderInfo

        header = HeaderInfo.decode(ci_scheme.database.header)
        assert header.scheme_name == "CI"
        assert header.num_regions == ci_scheme.partitioning.num_regions
        assert header.data_round_pages == ci_scheme.max_region_set_size + 2


class TestPassageIndexStructure:
    def test_three_round_plan(self, pi_scheme):
        plan = pi_scheme.plan
        assert plan.num_rounds == 3
        last_round_files = [name for name, _ in plan.rounds[2].fetches]
        assert last_round_files == [INDEX_FILE, DATA_FILE]
        assert plan.rounds[2].pages_for(DATA_FILE) == 2

    def test_pi_fetches_fewer_data_pages_than_ci(self, ci_scheme, pi_scheme):
        assert pi_scheme.plan.pages_per_file()[DATA_FILE] < ci_scheme.plan.pages_per_file()[DATA_FILE]

    def test_pi_index_is_larger_than_ci_index(self, ci_scheme, pi_scheme):
        ci_index = ci_scheme.database.file(INDEX_FILE).num_pages
        pi_index = pi_scheme.database.file(INDEX_FILE).num_pages
        assert pi_index > ci_index

    def test_pi_storage_exceeds_ci_storage(self, ci_scheme, pi_scheme):
        assert pi_scheme.storage_mb > ci_scheme.storage_mb


class TestHybridStructure:
    def test_combined_file_only(self, hybrid_scheme):
        names = set(hybrid_scheme.database.file_names())
        assert names == {LOOKUP_FILE, COMBINED_FILE}

    def test_replacement_happened(self, hybrid_scheme, border_products):
        threshold = hybrid_scheme.region_set_threshold
        expected = sum(
            1
            for regions in border_products.region_sets.values()
            if len(regions) > threshold
        )
        assert hybrid_scheme.num_replaced_pairs == expected
        assert hybrid_scheme.num_replaced_pairs > 0

    def test_final_round_smaller_than_ci(self, hybrid_scheme, ci_scheme):
        hybrid_last = hybrid_scheme.plan.rounds[-1].total_pages
        ci_last = ci_scheme.plan.rounds[-1].total_pages
        assert hybrid_last <= ci_last

    def test_storage_between_ci_and_pi(self, ci_scheme, hybrid_scheme, pi_scheme):
        assert ci_scheme.storage_mb <= hybrid_scheme.storage_mb <= pi_scheme.storage_mb * 1.05


class TestClusteredStructure:
    def test_cluster_pages_reflected_in_plan(self, clustered_scheme):
        cluster = clustered_scheme.cluster_pages
        assert cluster == 2
        assert clustered_scheme.plan.rounds[-1].pages_for(DATA_FILE) == 2 * cluster

    def test_fewer_regions_than_single_page_scheme(self, clustered_scheme, ci_scheme):
        assert clustered_scheme.partitioning.num_regions < ci_scheme.partitioning.num_regions

    def test_smaller_index_than_pi(self, clustered_scheme, pi_scheme):
        clustered_index = clustered_scheme.database.file(INDEX_FILE).num_pages
        pi_index = pi_scheme.database.file(INDEX_FILE).num_pages
        assert clustered_index < pi_index

    def test_invalid_cluster_size_rejected(self, small_network, tiny_spec):
        from repro.exceptions import SchemeError
        from repro.schemes import ClusteredPassageIndexScheme

        with pytest.raises(SchemeError):
            ClusteredPassageIndexScheme.build(small_network, spec=tiny_spec, cluster_pages=0)
