"""Tests for CSR-native client-side assembly (:mod:`repro.schemes.assembly`)
and the passage-node placeholder-coordinate regression (A* heuristic safety).
"""

import pytest

from repro.engine import LruCache
from repro.exceptions import SchemeError
from repro.network import (
    RoadNetwork,
    astar_search,
    csr_shortest_path,
    euclidean_heuristic,
    reference_astar_search,
    shortest_path,
)
from repro.partition import encode_region_payload
from repro.schemes import assembly
from repro.schemes.files import decode_cache_scope
from repro.schemes.index_entries import IndexEntry


def _expensive_detour_network():
    """Payload nodes on an expensive road; a passage node offers a shortcut.

    The passage node's position is unknown to the client (it lives in no
    fetched region), so the merged graph places it at ``(0, 0)`` — far from
    the real geometry around ``(100, 100)``.
    """
    network = RoadNetwork()
    network.add_node(1, 100.0, 100.0)
    network.add_node(2, 101.0, 100.0)
    network.add_node(3, 102.0, 100.0)
    network.add_edge(1, 2, 10.0)
    network.add_edge(2, 3, 10.0)
    payload = {
        node.node_id: (node.x, node.y, list(network.neighbors(node.node_id)))
        for node in network.nodes()
    }
    entry = IndexEntry((0, 1), None, frozenset({(1, 4, 1.0), (4, 3, 1.0)}))
    return payload, entry


class TestPassageNodePlaceholderRegression:
    def test_merged_graph_is_flagged_heuristic_unsafe(self):
        payload, entry = _expensive_detour_network()
        graph = assembly.subgraph_from_entry(entry, [payload])
        assert graph.heuristic_safe is False

    def test_astar_returns_true_shortest_cost_despite_placeholders(self):
        payload, entry = _expensive_detour_network()
        graph = assembly.subgraph_from_entry(entry, [payload])
        truth = shortest_path(graph, 1, 3)
        assert truth.cost == pytest.approx(2.0)  # via the passage node
        assert astar_search(graph, 1, 3).cost == pytest.approx(truth.cost)
        assert reference_astar_search(graph, 1, 3).cost == pytest.approx(truth.cost)

    def test_euclidean_heuristic_on_placeholders_is_inadmissible(self):
        # documents the bug this guards against: forcing the Euclidean bound
        # on the placeholder-coordinate graph skips the passage shortcut
        payload, entry = _expensive_detour_network()
        graph = assembly.subgraph_from_entry(entry, [payload])
        suboptimal = astar_search(graph, 1, 3, heuristic=euclidean_heuristic(graph, 3))
        assert suboptimal.cost == pytest.approx(20.0)

    def test_graphs_without_placeholders_keep_euclidean_astar(self):
        payload, _ = _expensive_detour_network()
        entry = IndexEntry((0, 1), None, frozenset({(3, 1, 1.0)}))  # known nodes only
        graph = assembly.subgraph_from_entry(entry, [payload])
        assert graph.heuristic_safe is True
        assert astar_search(graph, 1, 3).cost == pytest.approx(20.0)


def _region_payload_bytes():
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]):
        network.add_node(node_id, x, y)
    network.add_undirected_edge(0, 1, 1.0)
    network.add_undirected_edge(1, 2, 1.0)
    network.add_undirected_edge(2, 3, 1.0)
    group_a = encode_region_payload(network, [0, 1])
    group_b = encode_region_payload(network, [2, 3])
    return network, [[group_a], [group_b]]


class TestAssembleCsr:
    def test_region_assembly_matches_reference_graph(self):
        _, payload_groups = _region_payload_bytes()
        csr = assembly.assemble_region_csr(payload_groups)
        reference = assembly.reference_region_graph(payload_groups)
        for source, target in [(0, 3), (3, 0), (1, 2)]:
            expected = shortest_path(reference, source, target)
            actual = csr_shortest_path(csr, source, target)
            assert actual.nodes == expected.nodes
            assert actual.cost == pytest.approx(expected.cost)

    def test_passage_assembly_appends_entry_edges(self):
        _, payload_groups = _region_payload_bytes()
        entry = IndexEntry((0, 1), None, frozenset({(0, 3, 0.5)}))
        csr = assembly.assemble_passage_csr(payload_groups, [], (0, 1), entry=entry)
        assert csr_shortest_path(csr, 0, 3).cost == pytest.approx(0.5)
        reference = assembly.reference_passage_graph(payload_groups, [], (0, 1), entry=entry)
        assert shortest_path(reference, 0, 3).cost == pytest.approx(0.5)

    def test_missing_entry_raises_scheme_error(self):
        _, payload_groups = _region_payload_bytes()
        with pytest.raises(SchemeError, match="missing passage-subgraph entry"):
            assembly.assemble_passage_csr(payload_groups, [], (4, 5))

    def test_assembled_graphs_are_cached_by_payload_bytes(self):
        _, payload_groups = _region_payload_bytes()
        cache = LruCache(16)
        with decode_cache_scope(cache):
            first = assembly.assemble_region_csr(payload_groups)
            second = assembly.assemble_region_csr(payload_groups)
        assert first is second
        without_cache = assembly.assemble_region_csr(payload_groups)
        assert without_cache is not first

    def test_cache_key_distinguishes_entries(self):
        _, payload_groups = _region_payload_bytes()
        entry_a = IndexEntry((0, 1), None, frozenset({(0, 3, 0.5)}))
        entry_b = IndexEntry((0, 2), None, frozenset({(3, 0, 0.25)}))
        cache = LruCache(16)
        with decode_cache_scope(cache):
            csr_a = assembly.assemble_passage_csr(payload_groups, [], (0, 1), entry=entry_a)
            csr_b = assembly.assemble_passage_csr(payload_groups, [], (0, 2), entry=entry_b)
        assert csr_a is not csr_b
        assert csr_shortest_path(csr_a, 0, 3).cost == pytest.approx(0.5)
        assert csr_shortest_path(csr_b, 3, 0).cost == pytest.approx(0.25)
