"""Tests for the scheme base machinery: round manager, plan enforcement, cost mapping."""

import random

import pytest

from repro.costmodel import CostModel, SystemSpec
from repro.exceptions import PlanViolationError
from repro.pir import AccessTrace, UsablePirSimulator
from repro.schemes import QueryPlan, RoundSpec, response_time_from_trace, verify_plan_conformance
from repro.schemes.base import RoundManager
from repro.storage import Database


@pytest.fixture()
def toy_database():
    database = Database(page_size=64)
    for name, pages in (("lookup", 2), ("data", 8)):
        page_file = database.create_file(name)
        for index in range(pages):
            page_file.new_page().append(bytes([index]) * 4)
    database.set_header(b"HDR")
    return database


@pytest.fixture()
def round_manager(toy_database):
    spec = SystemSpec(page_size=64)
    pir = UsablePirSimulator(toy_database, spec=spec, enforce_limits=False)
    trace = AccessTrace()
    return RoundManager(pir, trace, random.Random(0)), trace


class TestRoundManager:
    def test_fetch_and_round_counters(self, round_manager):
        manager, trace = round_manager
        manager.begin_round()
        manager.fetch("lookup", 1)
        assert manager.pages_fetched_this_round("lookup") == 1
        manager.begin_round()
        assert manager.pages_fetched_this_round("lookup") == 0
        manager.fetch_many("data", [0, 1, 2])
        assert manager.pages_fetched_this_round("data") == 3
        assert trace.total_pir_accesses() == 4

    def test_pad_issues_dummy_requests(self, round_manager):
        manager, trace = round_manager
        manager.begin_round()
        manager.fetch("data", 0)
        manager.pad("data", 5)
        assert manager.pages_fetched_this_round("data") == 5
        assert trace.pir_accesses_per_file() == {"data": 5}

    def test_pad_rejects_overfetch(self, round_manager):
        manager, _ = round_manager
        manager.begin_round()
        manager.fetch_many("data", [0, 1, 2])
        with pytest.raises(PlanViolationError):
            manager.pad("data", 2)

    def test_header_download(self, round_manager):
        manager, trace = round_manager
        manager.begin_round()
        assert manager.download_header() == b"HDR"
        assert trace.header_bytes == 3


class TestPlanConformance:
    def test_matching_trace_passes(self):
        plan = QueryPlan.from_rounds(
            [RoundSpec(includes_header=True), RoundSpec(fetches=(("data", 2),))]
        )
        trace = AccessTrace()
        trace.begin_round()
        trace.record_header_download(10)
        trace.begin_round()
        trace.record_pir_access("data", 4)
        trace.record_pir_access("data", 1)
        verify_plan_conformance(trace, plan)

    def test_wrong_page_count_fails(self):
        plan = QueryPlan.from_rounds([RoundSpec(fetches=(("data", 2),))])
        trace = AccessTrace()
        trace.begin_round()
        trace.record_pir_access("data", 4)
        with pytest.raises(PlanViolationError):
            verify_plan_conformance(trace, plan)

    def test_wrong_file_order_fails(self):
        plan = QueryPlan.from_rounds([RoundSpec(fetches=(("index", 1), ("data", 1)))])
        trace = AccessTrace()
        trace.begin_round()
        trace.record_pir_access("data", 0)
        trace.record_pir_access("index", 0)
        with pytest.raises(PlanViolationError):
            verify_plan_conformance(trace, plan)


class TestResponseTimeFromTrace:
    def test_pir_and_header_components(self, toy_database):
        spec = SystemSpec(page_size=64)
        trace = AccessTrace()
        trace.begin_round()
        trace.record_header_download(len(toy_database.header))
        trace.begin_round()
        trace.record_pir_access("data", 0)
        trace.record_pir_access("data", 1)
        response = response_time_from_trace(trace, toy_database, CostModel(spec), client_seconds=0.25)
        assert response.client_s == 0.25
        assert response.pir_s > 0
        assert response.communication_s > 2 * spec.round_trip_s - 1e-9

    def test_empty_trace_costs_only_client_time(self, toy_database):
        response = response_time_from_trace(
            AccessTrace(), toy_database, CostModel(SystemSpec(page_size=64)), client_seconds=0.1
        )
        assert response.pir_s == 0.0
        assert response.communication_s == 0.0
        assert response.total_s == pytest.approx(0.1)
