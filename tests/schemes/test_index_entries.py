"""Tests for network-index entries, fragmentation and compression."""

import random

import pytest

from repro.exceptions import SchemeError
from repro.schemes.index_entries import IndexFileBuilder, decode_index_entry
from repro.storage import PageFile


def build_index(entries, page_size=128, compress=True, max_region_set_size=None):
    page_file = PageFile("index", page_size=page_size)
    builder = IndexFileBuilder(
        page_file, compress=compress, max_region_set_size=max_region_set_size
    )
    for key, value in entries:
        if value and isinstance(next(iter(value)), tuple):
            builder.add_subgraph(key[0], key[1], value)
        else:
            builder.add_region_set(key[0], key[1], value)
    return page_file, builder


def fetch_entry(page_file, builder, key):
    location = builder.location_of(key)
    pages = [
        page_file.read_page(number)
        for number in range(location.start_page, location.start_page + location.page_span)
    ]
    return decode_index_entry(pages, key)


class TestRegionSetEntries:
    def test_round_trip_small_sets(self):
        entries = [((0, 1), {2, 3}), ((0, 2), {3, 4, 5}), ((1, 2), set())]
        page_file, builder = build_index(entries)
        for key, regions in entries:
            entry = fetch_entry(page_file, builder, key)
            assert entry is not None
            assert entry.regions >= frozenset(regions)

    def test_effective_set_is_superset_but_bounded(self):
        """Compression may inflate a set, but never beyond the plan value m."""
        rng = random.Random(0)
        max_size = 12
        entries = []
        for i in range(6):
            for j in range(6):
                size = rng.randrange(0, max_size + 1)
                entries.append(((i, j), set(rng.sample(range(50), size))))
        page_file, builder = build_index(entries, max_region_set_size=max_size)
        for key, regions in entries:
            entry = fetch_entry(page_file, builder, key)
            assert entry.regions >= frozenset(regions)
            assert len(entry.regions) <= max_size

    def test_duplicate_pair_rejected(self):
        page_file = PageFile("index", page_size=128)
        builder = IndexFileBuilder(page_file)
        builder.add_region_set(0, 1, {2})
        with pytest.raises(SchemeError):
            builder.add_region_set(0, 1, {3})

    def test_missing_pair_rejected(self):
        _, builder = build_index([((0, 1), {2})])
        with pytest.raises(SchemeError):
            builder.location_of((5, 5))

    def test_fragmented_large_set(self):
        big = set(range(200))
        page_file, builder = build_index([((0, 1), big), ((0, 2), {1})], page_size=128)
        location = builder.location_of((0, 1))
        assert location.page_span > 1
        assert builder.max_page_span == location.page_span
        entry = fetch_entry(page_file, builder, (0, 1))
        assert entry.regions == frozenset(big)

    def test_compression_reduces_size_for_overlapping_sets(self):
        base = set(range(30))
        entries = [((0, j), set(base) | {100 + j}) for j in range(20)]
        _, compressed_builder = build_index(entries, page_size=256, compress=True)
        _, raw_builder = build_index(entries, page_size=256, compress=False)
        compressed_pages = compressed_builder.page_file.num_pages
        raw_pages = raw_builder.page_file.num_pages
        assert compressed_pages <= raw_pages
        assert compressed_pages < raw_pages  # overlap is large, so compression must help


class TestSubgraphEntries:
    def edges(self, seed, count):
        rng = random.Random(seed)
        return {(rng.randrange(100), rng.randrange(100), float(rng.randrange(1, 50))) for _ in range(count)}

    def test_round_trip(self):
        entries = [((0, 1), self.edges(1, 5)), ((0, 2), self.edges(2, 8))]
        page_file, builder = build_index(entries, page_size=256)
        for key, edges in entries:
            entry = fetch_entry(page_file, builder, key)
            assert entry.edges is not None
            assert {(u, v) for u, v, _ in entry.edges} >= {(u, v) for u, v, _ in edges}

    def test_weights_survive_round_trip(self):
        edges = {(1, 2, 3.5), (2, 3, 7.25)}
        page_file, builder = build_index([((0, 1), edges)], page_size=256)
        entry = fetch_entry(page_file, builder, (0, 1))
        assert entry.edges == frozenset(edges)

    def test_fragmented_large_subgraph(self):
        edges = self.edges(3, 150)
        page_file, builder = build_index([((0, 1), edges)], page_size=128)
        assert builder.location_of((0, 1)).page_span > 1
        entry = fetch_entry(page_file, builder, (0, 1))
        assert {(u, v) for u, v, _ in entry.edges} == {(u, v) for u, v, _ in edges}

    def test_subgraph_compression_adds_only_edges(self):
        shared = self.edges(4, 20)
        entries = [((0, j), set(shared) | {(200 + j, 201 + j, 1.0)}) for j in range(10)]
        page_file, builder = build_index(entries, page_size=1024, compress=True)
        for key, edges in entries:
            entry = fetch_entry(page_file, builder, key)
            # the effective subgraph may be inflated by reference edges but
            # always contains the true subgraph
            assert entry.edges >= frozenset(edges)

    def test_empty_subgraph(self):
        page_file = PageFile("index", page_size=128)
        builder = IndexFileBuilder(page_file)
        builder.add_subgraph(3, 3, set())
        entry = fetch_entry(page_file, builder, (3, 3))
        assert entry.edges == frozenset()


class TestDecoding:
    def test_missing_key_returns_none(self):
        page_file, builder = build_index([((0, 1), {2})])
        assert decode_index_entry([page_file.read_page(0)], (9, 9)) is None

    def test_decoding_ignores_page_padding(self):
        page_file, builder = build_index([((0, 1), {2, 3, 4})], page_size=256)
        page = page_file.read_page(0)
        assert len(page) == 256  # padded
        entry = decode_index_entry([page], (0, 1))
        assert entry.regions == frozenset({2, 3, 4})
