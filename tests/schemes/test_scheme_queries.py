"""Cross-scheme query tests: correctness, plan conformance and indistinguishability.

These are the executable counterparts of the paper's two central claims:

* every scheme returns a true shortest path (same cost as plain Dijkstra on
  the full network), and
* every query produces exactly the adversary view prescribed by the scheme's
  public query plan, so any two queries are indistinguishable (Theorem 1).
"""

import math

import pytest

from repro.network import shortest_path_cost
from repro.privacy import check_indistinguishability

SCHEME_FIXTURES = [
    "ci_scheme",
    "pi_scheme",
    "hybrid_scheme",
    "clustered_scheme",
    "landmark_scheme",
    "arcflag_scheme",
]


@pytest.fixture(params=SCHEME_FIXTURES)
def any_scheme(request):
    return request.getfixturevalue(request.param)


class TestQueryCorrectness:
    def test_returns_true_shortest_path_cost(self, any_scheme, small_network, query_pairs):
        for source, target in query_pairs:
            result = any_scheme.query(source, target)
            expected = shortest_path_cost(small_network, source, target)
            assert math.isclose(result.path.cost, expected, rel_tol=1e-4), (
                any_scheme.name,
                source,
                target,
            )
            assert result.path.source == source
            assert result.path.target == target

    def test_path_edges_exist_in_network(self, any_scheme, small_network, query_pairs):
        source, target = query_pairs[0]
        result = any_scheme.query(source, target)
        for edge_source, edge_target in result.path.edges():
            assert small_network.has_edge(edge_source, edge_target)

    def test_source_equals_target(self, any_scheme, small_network):
        some_node = next(iter(small_network.node_ids()))
        result = any_scheme.query(some_node, some_node)
        assert result.path.cost == 0.0
        assert result.path.nodes == (some_node,)

    def test_query_by_coordinates(self, any_scheme, small_network, query_pairs):
        source, target = query_pairs[1]
        source_node = small_network.node(source)
        target_node = small_network.node(target)
        result = any_scheme.query_by_coordinates(
            (source_node.x, source_node.y), (target_node.x, target_node.y)
        )
        expected = shortest_path_cost(small_network, source, target)
        assert math.isclose(result.path.cost, expected, rel_tol=1e-4)


class TestPrivacy:
    def test_all_queries_follow_the_plan(self, any_scheme, query_pairs):
        expected_view = any_scheme.plan.expected_adversary_view()
        for source, target in query_pairs:
            result = any_scheme.query(source, target)
            assert result.adversary_view == expected_view

    def test_queries_are_pairwise_indistinguishable(self, any_scheme, query_pairs):
        results = [any_scheme.query(source, target) for source, target in query_pairs[:4]]
        report = check_indistinguishability(results, any_scheme.plan)
        assert report.leaks_nothing
        assert report.distinct_views == 1

    def test_repeated_identical_query_looks_like_any_other(self, any_scheme, query_pairs):
        """Re-executing the same query is indistinguishable from a different query."""
        source, target = query_pairs[0]
        other_source, other_target = query_pairs[1]
        repeat_one = any_scheme.query(source, target)
        repeat_two = any_scheme.query(source, target)
        different = any_scheme.query(other_source, other_target)
        assert repeat_one.adversary_view == repeat_two.adversary_view == different.adversary_view

    def test_adversary_never_sees_page_numbers(self, any_scheme, query_pairs):
        source, target = query_pairs[0]
        result = any_scheme.query(source, target)
        for event in result.adversary_view.events:
            assert event.kind in ("header", "pir")
            assert not hasattr(event, "page_number")


class TestCostAccounting:
    def test_response_time_components_are_positive(self, any_scheme, query_pairs):
        source, target = query_pairs[0]
        result = any_scheme.query(source, target)
        assert result.response.pir_s > 0
        assert result.response.communication_s > 0
        assert result.response.total_s > result.response.pir_s

    def test_total_pir_pages_match_plan(self, any_scheme, query_pairs):
        source, target = query_pairs[0]
        result = any_scheme.query(source, target)
        assert result.total_pir_pages == any_scheme.plan.total_pir_pages()

    def test_storage_accounting(self, any_scheme):
        assert any_scheme.storage_bytes > 0
        assert any_scheme.storage_mb == pytest.approx(any_scheme.storage_bytes / 2**20)
