"""Tests for the Section 4 full-materialisation space analysis."""

import pytest

from repro.costmodel import SystemSpec
from repro.exceptions import SchemeError
from repro.network import grid_network
from repro.schemes.full_materialization import (
    NODE_ID_BYTES,
    estimate_full_materialization_bytes,
    full_materialization_report,
    scaled_estimate,
)


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, jitter=0.1, seed=2)


class TestEstimate:
    def test_basic_shape(self, network):
        estimate = estimate_full_materialization_bytes(network, sample_sources=5)
        assert estimate.num_nodes == network.num_nodes
        assert estimate.sampled_pairs > 0
        assert estimate.mean_path_nodes >= 1.0
        assert estimate.total_bytes > 0

    def test_total_bytes_formula(self, network):
        estimate = estimate_full_materialization_bytes(network, sample_sources=5)
        expected = int(
            network.num_nodes * network.num_nodes * estimate.mean_path_nodes * NODE_ID_BYTES
        )
        assert estimate.total_bytes == expected

    def test_deterministic_for_fixed_seed(self, network):
        first = estimate_full_materialization_bytes(network, sample_sources=6, seed=3)
        second = estimate_full_materialization_bytes(network, sample_sources=6, seed=3)
        assert first == second

    def test_small_network_within_pir_limit(self, network):
        estimate = estimate_full_materialization_bytes(network, sample_sources=5)
        assert not estimate.exceeds_pir_limit

    def test_tiny_limit_flags_excess(self, network):
        spec = SystemSpec(max_file_bytes=1024)
        estimate = estimate_full_materialization_bytes(network, sample_sources=5, spec=spec)
        assert estimate.exceeds_pir_limit
        assert estimate.times_over_limit > 1.0

    def test_invalid_arguments(self, network):
        with pytest.raises(SchemeError):
            estimate_full_materialization_bytes(network, sample_sources=0)


class TestScaledEstimate:
    def test_scaling_grows_superquadratically(self, network):
        base = estimate_full_materialization_bytes(network, sample_sources=5)
        double = scaled_estimate(base, network.num_nodes * 2)
        assert double.total_bytes > 4 * base.total_bytes  # pairs alone give x4
        assert double.total_bytes < 16 * base.total_bytes

    def test_invalid_target(self, network):
        base = estimate_full_materialization_bytes(network, sample_sources=5)
        with pytest.raises(SchemeError):
            scaled_estimate(base, 0)


class TestReport:
    def test_report_row(self, network):
        row = full_materialization_report(network, paper_nodes=6105, sample_sources=5)
        assert row["nodes"] == network.num_nodes
        assert row["paper_scale_nodes"] == 6105
        assert row["paper_scale_gib"] > row["total_gib"]

    def test_report_without_paper_scale(self, network):
        row = full_materialization_report(network, sample_sources=5)
        assert "paper_scale_gib" not in row
