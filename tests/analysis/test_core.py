"""Core machinery tests: suppressions, baseline, fingerprints, the walker."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Finding, run_analysis
from repro.analysis.core import (
    baseline_fingerprints,
    iter_python_files,
    load_baseline,
    write_baseline,
)

VIOLATION = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _engine_file(tmp_path: Path, text: str) -> Path:
    target = tmp_path / "src" / "repro" / "engine"
    target.mkdir(parents=True, exist_ok=True)
    path = target / "mod.py"
    path.write_text(text)
    return path


def test_violation_fires_without_suppression(tmp_path):
    _engine_file(tmp_path, VIOLATION)
    result = run_analysis([tmp_path], root=tmp_path)
    assert [(f.rule_id, f.line) for f in result.findings] == [("det-wallclock", 5)]


def test_inline_allow_on_the_offending_line(tmp_path):
    _engine_file(
        tmp_path,
        "import time\n\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[det-wallclock]\n",
    )
    result = run_analysis([tmp_path], root=tmp_path)
    assert result.findings == []
    assert [f.rule_id for f in result.suppressed] == ["det-wallclock"]


def test_inline_allow_on_the_line_above(tmp_path):
    _engine_file(
        tmp_path,
        "import time\n\n\ndef stamp():\n"
        "    # repro: allow[det-wallclock]\n"
        "    return time.time()\n",
    )
    result = run_analysis([tmp_path], root=tmp_path)
    assert result.findings == []
    assert len(result.suppressed) == 1


def test_wildcard_allow_and_unrelated_allow(tmp_path):
    _engine_file(
        tmp_path,
        "import time\n\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[*]\n",
    )
    assert run_analysis([tmp_path], root=tmp_path).findings == []

    _engine_file(
        tmp_path,
        "import time\n\n\ndef stamp():\n"
        "    return time.time()  # repro: allow[privacy-taint]\n",
    )
    result = run_analysis([tmp_path], root=tmp_path)
    assert [f.rule_id for f in result.findings] == ["det-wallclock"]


def test_baseline_roundtrip_silences_grandfathered_findings(tmp_path):
    _engine_file(tmp_path, VIOLATION)
    first = run_analysis([tmp_path], root=tmp_path)
    assert len(first.findings) == 1

    baseline_path = tmp_path / ".repro-lint-baseline.json"
    write_baseline(baseline_path, first.findings)
    document = load_baseline(baseline_path)
    assert len(baseline_fingerprints(document)) == 1

    second = run_analysis([tmp_path], root=tmp_path, baseline=document)
    assert second.findings == []
    assert [f.rule_id for f in second.baselined] == ["det-wallclock"]


def test_fingerprint_survives_unrelated_edits_above(tmp_path):
    path = _engine_file(tmp_path, VIOLATION)
    before = run_analysis([tmp_path], root=tmp_path).findings[0]
    # insert lines above the violation: line number moves, fingerprint stays
    path.write_text("import time\n\nPAGE = 4096\n\n\ndef stamp():\n    return time.time()\n")
    after = run_analysis([tmp_path], root=tmp_path).findings[0]
    assert after.line != before.line
    assert after.fingerprint == before.fingerprint


def test_fingerprint_tracks_rule_and_source_text():
    finding = Finding("det-wallclock", "a.py", 3, "m", source_line="t = time.time()")
    same = Finding("det-wallclock", "a.py", 99, "other msg", source_line="t = time.time()")
    other_rule = Finding("privacy-taint", "a.py", 3, "m", source_line="t = time.time()")
    assert finding.fingerprint == same.fingerprint
    assert finding.fingerprint != other_rule.fingerprint


def test_walker_skips_caches_and_dedupes(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-312.py").write_text("x = 1\n")
    files = list(iter_python_files([tmp_path, tmp_path / "pkg" / "a.py"]))
    assert [p.name for p in files] == ["a.py"]


def test_syntax_errors_are_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    result = run_analysis([tmp_path], root=tmp_path)
    assert result.findings == []
    assert len(result.parse_errors) == 1
    assert "broken.py" in result.parse_errors[0]


def test_finding_render_formats():
    finding = Finding("det-wallclock", "src/x.py", 7, "bad call", hint="use perf_counter")
    text = finding.format_text()
    assert "src/x.py:7" in text and "[det-wallclock]" in text and "hint:" in text
    payload = finding.to_json()
    assert payload["rule"] == "det-wallclock"
    assert payload["fingerprint"] == finding.fingerprint
    json.dumps(payload)  # JSON-serialisable as-is
