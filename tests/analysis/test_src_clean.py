"""The acceptance gate: the repository's own tree lints clean at HEAD.

This is the in-tree mirror of the CI lint job — if a PR introduces an
invariant violation anywhere under ``src``/``benchmarks``/``examples``, this
test names the file, line and rule.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_rules, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_lints_clean():
    roots = [
        REPO_ROOT / name
        for name in ("src", "benchmarks", "examples")
        if (REPO_ROOT / name).exists()
    ]
    result = run_analysis(roots, root=REPO_ROOT)
    assert not result.parse_errors, result.parse_errors
    formatted = "\n".join(f.format_text() for f in result.findings)
    assert result.findings == [], f"repro-lint findings at HEAD:\n{formatted}"
    assert result.files_checked > 50


def test_no_inline_self_exemptions_in_the_linter():
    # the linter must hold itself to the same rules it enforces: zero
    # findings AND zero suppressed findings in its own package
    analysis_dir = REPO_ROOT / "src" / "repro" / "analysis"
    result = run_analysis([analysis_dir], root=REPO_ROOT)
    assert result.findings == []
    assert result.suppressed == []
    assert result.baselined == []


def test_rule_families_active():
    rules = all_rules()
    assert len({rule.family for rule in rules}) >= 5
    assert len(rules) >= 8
