"""CLI tests: exit codes, JSON output, baseline workflow and --diff mode."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

VIOLATION = "import time\n\n\ndef stamp():\n    return time.time()\n"


def _engine_tree(root: Path, text: str = VIOLATION) -> Path:
    target = root / "src" / "repro" / "engine"
    target.mkdir(parents=True, exist_ok=True)
    path = target / "mod.py"
    path.write_text(text)
    return path


def test_clean_tree_exits_zero(capsys):
    code = main(["--root", str(FIXTURES / "clean")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 findings" in out


def test_firing_tree_exits_one_with_locations(capsys):
    code = main(["--root", str(FIXTURES / "firing")])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/engine/wallclock.py:7" in out
    assert "[det-wallclock]" in out
    assert "hint:" in out


def test_json_report_structure(capsys):
    code = main(["--json", "--root", str(FIXTURES / "firing")])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["counts"]["findings"] == len(document["findings"]) > 0
    sample = document["findings"][0]
    assert {"rule", "path", "line", "message", "hint", "fingerprint"} <= set(sample)


def test_explicit_paths_override_default_roots(capsys):
    code = main([
        str(FIXTURES / "firing" / "src" / "repro" / "engine" / "wallclock.py"),
        "--root", str(FIXTURES / "firing"),
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "1 finding," in out


def test_list_rules_groups_by_family(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for family in ("privacy", "determinism", "optional-deps", "concurrency",
                   "resources"):
        assert f"{family}:" in out
    assert "det-wallclock" in out


def test_write_baseline_then_clean_run(tmp_path, capsys):
    _engine_tree(tmp_path)
    assert main(["--root", str(tmp_path)]) == 1
    assert main(["--write-baseline", "--root", str(tmp_path)]) == 0
    capsys.readouterr()

    code = main(["--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out

    # --no-baseline resurfaces the grandfathered finding
    assert main(["--no-baseline", "--root", str(tmp_path)]) == 1


def test_bad_baseline_is_a_usage_error(tmp_path, capsys):
    _engine_tree(tmp_path)
    (tmp_path / ".repro-lint-baseline.json").write_text("[]")
    code = main(["--root", str(tmp_path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "bad baseline" in err


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=ci@test", "-c", "user.name=ci", *args],
        cwd=str(repo), check=True, capture_output=True,
    )


def test_diff_mode_reports_only_changed_lines(tmp_path, capsys):
    path = _engine_tree(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-qm", "seed")

    # add a second violation below the committed one
    path.write_text(VIOLATION + "\n\ndef stamp_ns():\n    return time.time_ns()\n")
    code = main(["--diff", "HEAD", "--root", str(tmp_path), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "mod.py:9" in out  # the new violation
    assert "mod.py:5" not in out  # the pre-existing one is out of diff scope

    # a full (non-diff) run still sees both
    capsys.readouterr()
    assert main(["--root", str(tmp_path), "--no-baseline"]) == 1
    assert "mod.py:5" in capsys.readouterr().out


def test_diff_mode_with_bad_ref_is_a_usage_error(tmp_path, capsys):
    _engine_tree(tmp_path)
    _git(tmp_path, "init", "-q")
    code = main(["--diff", "no-such-ref", "--root", str(tmp_path)])
    assert code == 2
    assert "git diff" in capsys.readouterr().err
