"""Firing fixture: page stores left open."""

from repro.storage import open_page_store


def count_pages(directory):
    store = open_page_store("sqlite", "data", directory=directory)
    return store.num_pages


def verify_pages(directory, expected):
    store = open_page_store("sqlite", "data", directory=directory)
    assert store.num_pages == expected
    store.close()
