"""Firing fixture: optional-dependency imports."""

import numpy

try:
    import scipy.sparse
except ImportError:
    scipy = None
