"""Firing fixture: unguarded mutable module state in pir."""

_CACHE = {}


def remember(key, value):
    global _CACHE
    _CACHE = dict(_CACHE, **{key: value})
