"""Firing fixture: set iteration into ordering-sensitive positions."""


def adjacency(entry):
    return [edge for edge in entry.edges]


def page_order():
    wanted = {3, 1, 2}
    order = []
    for region in wanted:
        order.append(region)
    return order
