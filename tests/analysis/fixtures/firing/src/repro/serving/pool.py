"""Firing fixture: wall-clock reads inside the persistent solve pool."""

import time


def stamp_submit(task):
    task.submitted_at = time.time()
    return task
