"""Firing fixture: a shard server leaking query plaintext over the wire."""


class LeakyServer:
    def __init__(self):
        self.queries_seen = []

    def answer(self, source, target):
        print("answering retrieval for", source, "->", target)
        self.queries_seen.append((source, target))
