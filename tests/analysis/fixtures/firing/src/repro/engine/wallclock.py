"""Firing fixture: wall-clock reads on the bit-identity surface."""

import time


def stamp_batch(batch):
    batch.started_at = time.time()
    return batch
