"""Firing fixture: process-global RNG draws."""

import random


def jitter(pages):
    random.shuffle(pages)
    return pages
