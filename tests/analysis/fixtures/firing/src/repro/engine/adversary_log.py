"""Firing fixture: unguarded adversary-view writes."""


class Tracker:
    def __init__(self):
        self.queries_seen = []

    def record(self, pair):
        self.queries_seen.append(pair)
