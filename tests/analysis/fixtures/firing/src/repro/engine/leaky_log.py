"""Firing fixture: query plaintext reaching operator-visible sinks."""


def announce(source, target):
    print("serving", source, "->", target)


def fail(pair):
    raise KeyError(f"no entry for pair {pair}")
