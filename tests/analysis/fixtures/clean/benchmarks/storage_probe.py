"""Clean fixture: every acquired store is closed on all paths (or escapes)."""

from contextlib import closing

from repro.storage import open_page_store


def count_pages(directory):
    with closing(open_page_store("sqlite", "data", directory=directory)) as store:
        return store.num_pages


def verify_pages(directory, expected):
    store = open_page_store("sqlite", "data", directory=directory)
    try:
        assert store.num_pages == expected
    finally:
        store.close()


def acquire(directory):
    # ownership transfer: the caller closes
    store = open_page_store("sqlite", "data", directory=directory)
    return store
