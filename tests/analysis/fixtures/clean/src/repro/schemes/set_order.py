"""Clean fixture: sorted() fences every set iteration."""


def adjacency(entry):
    return [edge for edge in sorted(entry.edges)]


def page_order(source_region, target_region, entry):
    wanted = {3, 1, 2}
    order = []
    for region in sorted(wanted):
        order.append(region)
    # a set comprehension feeding an order-free consumer directly is fine
    return sorted(set(order) | {source_region, target_region})


def span(entry):
    # order-free reductions over a frozenset attribute are fine
    return len(entry.edges), min(entry.regions)
