"""Clean fixture: seeded random.Random instances are sanctioned."""

import random


def jitter(pages, seed):
    rng = random.Random(seed)
    rng.shuffle(pages)
    return pages
