"""Clean fixture: adversary-view writes behind the log_queries opt-in."""


class Tracker:
    def __init__(self, log_queries=False):
        self.log_queries = log_queries
        self.queries_seen = []

    def record(self, pair):
        if self.log_queries:
            self.queries_seen.append(pair)

    def recorder(self, log_queries):
        # the bound-method seam used by the sharded engine
        return self.queries_seen.append if log_queries else None
