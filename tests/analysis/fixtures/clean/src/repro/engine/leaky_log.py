"""Clean fixture: messages carry no query plaintext."""


def announce(results):
    print("served", len(results), "queries")


def fail():
    raise KeyError("missing passage-subgraph entry for queried pair")
