"""Clean fixture: duration measurement via perf_counter is sanctioned."""

import time


def measure(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
