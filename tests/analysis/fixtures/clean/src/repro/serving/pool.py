"""Clean fixture: the pool measures durations with perf_counter only."""

import time


def timed_submit(pool, task):
    started = time.perf_counter()
    result = pool.run(task)
    return result, time.perf_counter() - started
