"""Clean fixture: the serving surface logs only mask subsets, opt-in."""


class Server:
    def __init__(self, log_queries=False):
        self.log_queries = log_queries
        self.queries_seen = []

    def answer(self, file_name, shard_id, subset):
        if self.log_queries:
            self.queries_seen.append((file_name, shard_id, subset))
        print("flushed", len(subset), "masks")
