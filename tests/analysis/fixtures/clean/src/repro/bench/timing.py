"""Clean fixture: wall-clock use outside the bit-identity surface is fine."""

import time


def timestamp():
    return time.time()
