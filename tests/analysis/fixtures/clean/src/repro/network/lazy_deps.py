"""Clean fixture: guarded function-level optional imports."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy


def sparse_solver():
    try:
        from scipy.sparse import csgraph
    except ImportError:
        return None
    return csgraph
