"""Clean fixture: the allowlisted guarded module-level numpy seam."""

try:
    import numpy as _np
except ImportError:
    _np = None


def have_numpy():
    return _np is not None
