"""Clean fixture: sanctioned module-state containers in pir."""

import threading
import weakref
from contextvars import ContextVar

_PRIMES = (2, 3, 5, 7)
_ACTIVE: ContextVar = ContextVar("active", default=None)
_SHARED = weakref.WeakKeyDictionary()
_SHARED_LOCK = threading.Lock()


def remember(key, value):
    with _SHARED_LOCK:
        _SHARED[key] = value


class SharedPackRegistry:
    """Stand-in for the sanctioned process-wide registry singleton."""

    def __init__(self):
        self._lock = threading.Lock()


_REGISTRY = SharedPackRegistry()
