"""Golden-fixture tests: every rule fires where expected and only there.

The fixture trees under ``fixtures/firing`` and ``fixtures/clean`` mirror the
repository layout (``src/repro/engine/...``) so the rules' path scoping is
exercised exactly as it is against the real tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, run_analysis

FIXTURES = Path(__file__).parent / "fixtures"
FIRING = FIXTURES / "firing"
CLEAN = FIXTURES / "clean"

#: Every finding the firing tree must produce: (path, line, rule id).
EXPECTED_FIRING = {
    ("src/repro/engine/wallclock.py", 7, "det-wallclock"),
    ("src/repro/engine/unseeded.py", 7, "det-unseeded-random"),
    ("src/repro/schemes/set_order.py", 5, "det-set-iteration"),
    ("src/repro/schemes/set_order.py", 11, "det-set-iteration"),
    ("src/repro/engine/leaky_log.py", 5, "privacy-taint"),
    ("src/repro/engine/leaky_log.py", 9, "privacy-taint"),
    ("src/repro/engine/adversary_log.py", 9, "privacy-queries-seen"),
    ("src/repro/network/eager_deps.py", 3, "optdeps-import"),
    ("src/repro/network/eager_deps.py", 6, "optdeps-import"),
    ("src/repro/pir/module_cache.py", 3, "conc-module-state"),
    ("src/repro/pir/module_cache.py", 7, "conc-module-state"),
    ("benchmarks/storage_probe.py", 7, "res-unclosed-store"),
    ("benchmarks/storage_probe.py", 12, "res-unclosed-store"),
    ("src/repro/serving/leaky_server.py", 9, "privacy-taint"),
    ("src/repro/serving/leaky_server.py", 10, "privacy-queries-seen"),
    ("src/repro/serving/pool.py", 7, "det-wallclock"),
}

ALL_RULE_IDS = sorted({rule_id for _, _, rule_id in EXPECTED_FIRING})


@pytest.fixture(scope="module")
def firing_findings():
    result = run_analysis([FIRING], root=FIRING)
    assert not result.parse_errors
    return result.findings


@pytest.fixture(scope="module")
def clean_findings():
    result = run_analysis([CLEAN], root=CLEAN)
    assert not result.parse_errors
    return result.findings


def test_firing_tree_matches_golden_set(firing_findings):
    actual = {(f.path, f.line, f.rule_id) for f in firing_findings}
    assert actual == EXPECTED_FIRING


def test_clean_tree_produces_no_findings(clean_findings):
    assert [(f.path, f.line, f.rule_id) for f in clean_findings] == []


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_each_rule_has_a_firing_fixture(firing_findings, rule_id):
    fired = [f for f in firing_findings if f.rule_id == rule_id]
    assert fired, f"no firing fixture exercises {rule_id}"
    for finding in fired:
        assert finding.message
        assert finding.hint  # every finding carries a fix hint
        assert finding.source_line  # and the offending source text


def test_registry_covers_five_families():
    rules = all_rules()
    families = {rule.family for rule in rules}
    assert len(families) >= 5
    assert {rule.id for rule in rules} >= set(ALL_RULE_IDS)


def test_rule_scoping_keeps_out_of_scope_files_silent(tmp_path):
    # the same wall-clock read outside the bit-identity surface is legal
    target = tmp_path / "src" / "repro" / "bench"
    target.mkdir(parents=True)
    (target / "timing.py").write_text(
        "import time\n\n\ndef timestamp():\n    return time.time()\n"
    )
    result = run_analysis([tmp_path], root=tmp_path)
    assert result.findings == []
