"""Open-loop load generator: single-process runs and forked client fleets.

Short, low-rate runs against real loopback clusters — enough load to check
the report's accounting (verified retrievals, pooled latency percentiles,
multi-process aggregation) without turning the test suite into a benchmark.
"""

import pytest

from repro.exceptions import PirError
from repro.serving import ShardCluster, run_loadgen, run_loadgen_multiproc
from repro.storage import Database


def make_database(num_pages=24, page_size=64):
    database = Database(page_size)
    page_file = database.create_file("data")
    for index in range(num_pages):
        page_file.new_page().append(bytes([index & 0xFF]) * (page_size // 2))
    return database


@pytest.fixture
def database():
    return make_database()


def run(addresses, database, **overrides):
    kwargs = dict(
        rate=300.0,
        duration_s=0.6,
        warmup_s=0.1,
        connections=4,
        seed=5,
        verify=True,
    )
    kwargs.update(overrides)
    return run_loadgen_multiproc(addresses, database, **kwargs)


class TestRunLoadgen:
    def test_report_accounts_for_every_arrival(self, database):
        with ShardCluster(database, num_shards=2) as cluster:
            report = run_loadgen(
                cluster.addresses, database,
                rate=300.0, duration_s=0.6, warmup_s=0.1, connections=4,
                seed=5, verify=True,
            )
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.verified
        assert report.completed == report.arrivals > 0
        assert report.client_procs == 1
        assert report.latencies_s == sorted(report.latencies_s)
        assert len(report.latencies_s) == report.measured
        assert report.p50_ms <= report.p99_ms <= report.max_ms


class TestRunLoadgenMultiproc:
    def test_single_process_delegates(self, database):
        with ShardCluster(database, num_shards=2) as cluster:
            report = run(cluster.addresses, database, client_procs=1)
        assert report.client_procs == 1
        assert report.errors == 0

    def test_forked_clients_aggregate_one_report(self, database):
        with ShardCluster(database, num_shards=2) as cluster:
            report = run(cluster.addresses, database, client_procs=2)
        assert report.client_procs == 2
        assert report.errors == 0
        assert report.mismatches == 0
        assert report.completed == report.arrivals > 0
        # percentiles are cut from the pooled samples, never averaged
        assert len(report.latencies_s) == report.measured
        assert report.latencies_s == sorted(report.latencies_s)
        assert report.p50_ms <= report.p99_ms <= report.max_ms
        assert any(
            "2 client process(es)" in line for line in report.summary_lines()
        )

    def test_bad_client_count_rejected(self, database):
        with pytest.raises(PirError):
            run_loadgen_multiproc([("127.0.0.1", 1)], database, client_procs=0)
