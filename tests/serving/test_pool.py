"""SolvePool semantics: reuse across batches, growth, teardown, engine wiring."""

import pytest

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.exceptions import SchemeError
from repro.network import grid_network
from repro.schemes import ConciseIndexScheme
from repro.serving import SolvePool


def square(value):
    return value * value


class TestSolvePool:
    def test_executor_is_reused_across_submits(self):
        with SolvePool() as pool:
            assert pool.starts == 0 and pool.size == 0
            first = pool.executor(2)
            assert pool.submit(2, square, 7).result() == 49
            assert pool.executor(2) is first
            assert pool.executor(1) is first  # never shrinks
            assert pool.starts == 1 and pool.size == 2

    def test_growing_replaces_the_executor_once(self):
        with SolvePool() as pool:
            small = pool.executor(1)
            grown = pool.executor(3)
            assert grown is not small
            assert pool.starts == 2 and pool.size == 3
            assert pool.submit(2, square, 3).result() == 9
            assert pool.starts == 2

    def test_max_workers_caps_growth(self):
        with SolvePool(max_workers=2) as pool:
            pool.executor(8)
            assert pool.size == 2
            assert pool.starts == 1

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SchemeError):
            SolvePool(max_workers=0)
        with SolvePool() as pool:
            with pytest.raises(SchemeError):
                pool.executor(0)

    def test_closed_pool_refuses_work(self):
        pool = SolvePool()
        pool.executor(1)
        pool.close()
        with pytest.raises(SchemeError):
            pool.executor(1)


@pytest.fixture(scope="module")
def scheme():
    network = grid_network(5, 5, seed=2)
    return ConciseIndexScheme.build(network, spec=SystemSpec(page_size=256))


@pytest.fixture(scope="module")
def pairs(scheme):
    nodes = sorted(scheme.network.node_ids())
    return [(nodes[0], nodes[-1]), (nodes[1], nodes[-2]), (nodes[2], nodes[-3])]


class TestEngineWarmPool:
    def test_consecutive_process_batches_share_one_pool_start(self, scheme, pairs):
        with QueryEngine(scheme) as engine:
            first = engine.run_batch(pairs, workers=2, worker_mode="process")
            second = engine.run_batch(pairs, workers=2, worker_mode="process")
            assert engine.solve_pool.starts == 1
            fingerprint = lambda batch: [
                (result.path.nodes, result.path.cost) for result in batch.results
            ]
            assert fingerprint(first) == fingerprint(second)

    def test_supplied_pool_is_shared_and_not_closed_by_the_engine(self, scheme, pairs):
        with SolvePool() as pool:
            with QueryEngine(scheme, solve_pool=pool) as engine_a:
                engine_a.run_batch(pairs[:1], workers=1, worker_mode="process")
            with QueryEngine(scheme, solve_pool=pool) as engine_b:
                engine_b.run_batch(pairs[:1], workers=1, worker_mode="process")
            # both engines rode the same warm pool; closing them left it open
            assert pool.starts == 1
            assert pool.submit(1, square, 4).result() == 16

    def test_engine_close_shuts_its_own_pool(self, scheme, pairs):
        engine = QueryEngine(scheme)
        engine.run_batch(pairs[:1], workers=1, worker_mode="process")
        pool = engine.solve_pool
        engine.close()
        with pytest.raises(SchemeError):
            pool.executor(1)
