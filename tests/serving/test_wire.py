"""Wire-protocol tests: framing, round trips and hostile inputs.

The serving protocol is the trust boundary of the shard service — a server
must survive truncated frames, oversized announcements and garbage payloads
without crashing, and every well-formed message must round-trip exactly.
Round trips are property-tested with hypothesis; the hostile-input cases are
hand-written.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PirError
from repro.serving import wire
from repro.serving.wire import (
    AnswerRequest,
    FrameDecoder,
    HelloRequest,
    RemoteServerError,
    ServerBusy,
    ShardInfo,
    WireError,
)

masks = st.integers(min_value=0, max_value=(1 << 512) - 1)
file_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF), min_size=1, max_size=32
)
blocks = st.binary(min_size=0, max_size=256)


class TestFraming:
    def test_frame_round_trip(self):
        payload = b"hello shard"
        frame = wire.encode_frame(payload)
        assert frame[: wire.HEADER_SIZE] != payload
        assert wire.decode_frame_length(frame[: wire.HEADER_SIZE]) == len(payload)
        assert frame[wire.HEADER_SIZE :] == payload

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(WireError):
            wire.encode_frame(b"x" * 64, max_frame_bytes=32)

    def test_oversized_announcement_rejected_before_buffering(self):
        header = wire.encode_frame(b"x" * 64)[: wire.HEADER_SIZE]
        with pytest.raises(WireError):
            wire.decode_frame_length(header, max_frame_bytes=32)

    @given(st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=8),
           st.integers(min_value=1, max_value=17))
    @settings(max_examples=60, deadline=None)
    def test_decoder_reassembles_any_chunking(self, payloads, chunk):
        stream = b"".join(wire.encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i : i + chunk]))
        assert out == payloads
        assert decoder.pending_bytes == 0

    def test_truncated_frame_stays_pending(self):
        frame = wire.encode_frame(b"truncated-body")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-3]) == []
        assert decoder.pending_bytes == len(frame) - 3
        assert decoder.feed(frame[-3:]) == [b"truncated-body"]

    def test_decoder_rejects_oversized_announcement(self):
        decoder = FrameDecoder(max_frame_bytes=16)
        with pytest.raises(WireError):
            decoder.feed(wire.encode_frame(b"y" * 64))


class TestRequestRoundTrips:
    def test_hello_round_trip(self):
        payload = wire.encode_hello_request()
        assert wire.decode_request(payload) == HelloRequest()

    @given(file_names, st.lists(masks, min_size=1, max_size=32))
    @settings(max_examples=80, deadline=None)
    def test_answer_request_round_trip(self, name, mask_list):
        payload = wire.encode_answer_request(name, mask_list)
        request = wire.decode_request(payload)
        assert isinstance(request, AnswerRequest)
        assert request.file_name == name
        assert request.masks == tuple(mask_list)

    def test_negative_mask_rejected(self):
        with pytest.raises(WireError):
            wire.encode_answer_request("f", [-1])

    def test_oversized_mask_rejected(self):
        huge = 1 << (8 * (wire.MAX_MASK_BYTES + 1))
        with pytest.raises(WireError):
            wire.encode_answer_request("f", [huge])

    def test_garbage_payload_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request(b"\xff\xfe\xfd")

    def test_trailing_bytes_rejected(self):
        payload = wire.encode_hello_request() + b"\x00"
        with pytest.raises(WireError):
            wire.decode_request(payload)


class TestResponseRoundTrips:
    @given(st.lists(blocks, min_size=0, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_answer_response_round_trip(self, block_list):
        payload = wire.encode_answer_ok(block_list)
        assert wire.decode_answer_response(payload) == list(block_list)

    def test_hello_response_round_trip(self):
        info = ShardInfo(
            shard_id=1,
            num_shards=4,
            strategy="round-robin",
            kernel="numpy",
            files=(
                wire.FileInfo(name="pages.bin", num_pages=7, page_size=256),
                wire.FileInfo(name="index.bin", num_pages=3, page_size=128),
            ),
        )
        assert wire.decode_hello_response(wire.encode_hello_ok(info)) == info

    def test_busy_raises_server_busy(self):
        with pytest.raises(ServerBusy):
            wire.decode_answer_response(wire.encode_busy("try later"))

    def test_error_raises_remote_error(self):
        with pytest.raises(RemoteServerError, match="bad mask"):
            wire.decode_answer_response(wire.encode_error("bad mask"))

    def test_wire_errors_are_pir_errors(self):
        assert issubclass(WireError, PirError)
        assert issubclass(ServerBusy, PirError)
        assert issubclass(RemoteServerError, PirError)


class TestInterleaving:
    def test_interleaved_requests_decode_in_order(self):
        """Pipelined frames on one stream come back in submission order."""
        requests = [
            wire.encode_answer_request("a", [1, 2]),
            wire.encode_hello_request(),
            wire.encode_answer_request("b", [0b101]),
        ]
        stream = b"".join(wire.encode_frame(p) for p in requests)
        decoder = FrameDecoder()
        decoded = [wire.decode_request(p) for p in decoder.feed(stream)]
        assert decoded[0] == AnswerRequest(file_name="a", masks=(1, 2))
        assert decoded[1] == HelloRequest()
        assert decoded[2] == AnswerRequest(file_name="b", masks=(5,))
