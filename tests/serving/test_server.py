"""Shard-server behaviour: serving, admission control, coalescing, drain.

Each test boots real servers on loopback (port 0) and talks to them over
actual sockets — the same path production clients use.  Answers are checked
against the local packed kernel, so a passing run is also a bit-correctness
check of the remote path.
"""

import random
import socket
import threading

import pytest

from repro.exceptions import PirError
from repro.pir.batch import mask_indices
from repro.pir.sharded import ShardedPageStore
from repro.serving import (
    RemotePirShard,
    RemoteServerError,
    ServerBusy,
    ShardCluster,
    ShardConnection,
    ShardServer,
)
from repro.serving import wire
from repro.storage import Database


def make_database(num_pages=10, page_size=64, files=("data",)):
    database = Database(page_size)
    for name in files:
        page_file = database.create_file(name)
        for index in range(num_pages):
            payload = bytes([index & 0xFF, len(name)]) * (page_size // 4)
            page_file.new_page().append(payload)
    return database


class TestHello:
    def test_hello_describes_the_shard_layout(self):
        database = make_database(num_pages=9, files=("data", "index"))
        store = ShardedPageStore(database, 2, "round-robin")
        with ShardServer(store, shard_id=1) as server:
            conn = ShardConnection(server.address)
            info = wire.decode_hello_response(conn.request(wire.encode_hello_request()))
            conn.close()
        assert info.shard_id == 1
        assert info.num_shards == 2
        assert info.strategy == "round-robin"
        assert {f.name for f in info.files} == {"data", "index"}
        for file_info in info.files:
            assert file_info.num_pages == store.shard_num_pages(1, file_info.name)
            assert file_info.page_size == 64

    def test_layout_check_rejects_mismatched_cluster(self):
        database = make_database(num_pages=9)
        store = ShardedPageStore(database, 2, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            shard = RemotePirShard(
                shard_id=1,  # wrong identity for this server
                store=store,
                address=server.address,
                rng=random.Random(0),
            )
            info = shard.hello()
            assert info.shard_id == 0 != shard.shard_id
            shard.close()


class TestAnswering:
    def test_answers_match_the_local_kernel(self):
        database = make_database(num_pages=12)
        store = ShardedPageStore(database, 3, "round-robin")
        with ShardServer(store, shard_id=2) as server:
            kernel = store.shard_kernel(2, "data", server.kernel)
            rng = random.Random(5)
            masks = [rng.getrandbits(kernel.num_blocks) for _ in range(6)]
            conn = ShardConnection(server.address)
            payload = conn.request(
                wire.encode_frame(b"")[:0]
                + wire.encode_answer_request("data", masks)
            )
            answers = wire.decode_answer_response(payload)
            conn.close()
            assert answers == kernel.answer_many(masks)
            assert server.stats()["masks_answered"] == len(masks)

    def test_remote_shard_reads_are_bit_identical(self):
        database = make_database(num_pages=11)
        store = ShardedPageStore(database, 2, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            shard = RemotePirShard(0, store, server.address, rng=random.Random(3))
            local = list(range(store.shard_num_pages(0, "data")))
            pages = shard.read_many("data", local)
            assert pages == store.read_local_batch(0, "data", local)
            assert shard.pages_served == len(local)
            shard.close()

    def test_unknown_file_is_an_error_and_server_survives(self):
        database = make_database()
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            conn = ShardConnection(server.address)
            with pytest.raises(RemoteServerError, match="no pages"):
                wire.decode_answer_response(
                    conn.request(wire.encode_answer_request("missing", [1]))
                )
            # same connection still answers afterwards
            answers = wire.decode_answer_response(
                conn.request(wire.encode_answer_request("data", [0b11]))
            )
            assert len(answers) == 1
            conn.close()

    def test_mask_beyond_shard_blocks_is_an_error(self):
        database = make_database(num_pages=4)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            conn = ShardConnection(server.address)
            with pytest.raises(RemoteServerError, match="beyond"):
                wire.decode_answer_response(
                    conn.request(wire.encode_answer_request("data", [1 << 64]))
                )
            conn.close()

    def test_malformed_payload_gets_an_error_response(self):
        database = make_database()
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            conn = ShardConnection(server.address)
            with pytest.raises(PirError):
                wire.decode_answer_response(conn.request(b"\xff\x00garbage"))
            conn.close()


class TestAdmissionControl:
    def test_overfull_request_answers_busy(self):
        database = make_database(num_pages=8)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0, max_pending_masks=1) as server:
            conn = ShardConnection(server.address)
            with pytest.raises(ServerBusy):
                wire.decode_answer_response(
                    conn.request(wire.encode_answer_request("data", [1, 2]))
                )
            assert server.stats()["busy_rejections"] == 1
            # a request that fits is still served
            answers = wire.decode_answer_response(
                conn.request(wire.encode_answer_request("data", [1]))
            )
            assert len(answers) == 1
            conn.close()

    def test_client_retries_busy_then_gives_up(self):
        database = make_database(num_pages=8)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0, max_pending_masks=1) as server:
            shard = RemotePirShard(
                0, store, server.address, rng=random.Random(1),
                busy_retries=3, busy_backoff_s=0.0,
            )
            with pytest.raises(ServerBusy):
                shard.read("data", 0)  # two masks never fit in one pending slot
            assert server.stats()["busy_rejections"] == 4  # initial try + 3 retries
            shard.close()


class TestCoalescing:
    def test_concurrent_requests_flush_as_one_batch(self):
        database = make_database(num_pages=16)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(
            store, shard_id=0, coalesce_window_s=0.25, max_batch_masks=64
        ) as server:
            results = []
            barrier = threading.Barrier(2)

            def one_request():
                conn = ShardConnection(server.address)
                barrier.wait()
                payload = conn.request(wire.encode_answer_request("data", [0b1, 0b10]))
                results.append(wire.decode_answer_response(payload))
                conn.close()

            threads = [threading.Thread(target=one_request) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()
        assert len(results) == 2 and all(len(r) == 2 for r in results)
        assert stats["masks_answered"] == 4
        # both requests landed inside one coalescing window
        assert stats["flushes"] == 1
        assert stats["largest_flush"] == 4

    def test_full_batch_flushes_without_waiting_for_the_window(self):
        database = make_database(num_pages=8)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(
            store, shard_id=0, coalesce_window_s=30.0, max_batch_masks=2
        ) as server:
            conn = ShardConnection(server.address)
            # 2 masks == max_batch_masks: flushes immediately despite the
            # pathological 30s window
            answers = wire.decode_answer_response(
                conn.request(wire.encode_answer_request("data", [1, 2]))
            )
            assert len(answers) == 2
            conn.close()


class TestQueryLogging:
    def test_queries_seen_stays_empty_unless_enabled(self):
        database = make_database(num_pages=8)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0) as server:
            conn = ShardConnection(server.address)
            conn.request(wire.encode_answer_request("data", [0b101]))
            conn.close()
            assert server.queries_seen == []

    def test_queries_seen_records_subsets_when_enabled(self):
        database = make_database(num_pages=8)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0, log_queries=True) as server:
            conn = ShardConnection(server.address)
            conn.request(wire.encode_answer_request("data", [0b101]))
            conn.close()
            assert server.queries_seen == [
                ("data", 0, frozenset(mask_indices(0b101)))
            ]


class TestLifecycle:
    def test_stop_refuses_new_connections(self):
        database = make_database()
        store = ShardedPageStore(database, 1, "round-robin")
        server = ShardServer(store, shard_id=0)
        address = server.start()
        server.stop()
        with pytest.raises((ConnectionError, OSError, PirError)):
            with socket.create_connection(address, timeout=2) as sock:
                sock.sendall(wire.encode_frame(wire.encode_hello_request()))
                if not sock.recv(1):
                    raise ConnectionError("server closed the listener")

    def test_cluster_boots_one_server_per_shard(self):
        database = make_database(num_pages=12)
        with ShardCluster(database, num_shards=3) as cluster:
            assert len(cluster.addresses) == 3
            assert len({address[1] for address in cluster.addresses}) == 3
            stats = cluster.stats()
            assert len(stats) == 3
            # every server answers HELLO with its own shard id
            for shard_id, address in enumerate(cluster.addresses):
                conn = ShardConnection(address)
                info = wire.decode_hello_response(
                    conn.request(wire.encode_hello_request())
                )
                conn.close()
                assert info.shard_id == shard_id

    def test_cluster_start_is_idempotent(self):
        database = make_database()
        cluster = ShardCluster(database, num_shards=2)
        try:
            cluster.start()
            first = list(cluster.addresses)
            cluster.start()
            assert list(cluster.addresses) == first
        finally:
            cluster.stop()


class TestAnswerThreads:
    """Multicore answering: kernel sub-calls split flushes, never answers."""

    def test_invalid_thread_count_rejected(self):
        database = make_database()
        store = ShardedPageStore(database, 1, "round-robin")
        with pytest.raises(PirError, match="answer_threads"):
            ShardServer(store, shard_id=0, answer_threads=0)

    def test_large_flush_splits_into_kernel_subcalls(self):
        from repro.serving.server import MIN_SPLIT_MASKS

        database = make_database(num_pages=12)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0, answer_threads=3) as server:
            kernel = store.shard_kernel(0, "data", server.kernel)
            rng = random.Random(7)
            masks = [
                rng.getrandbits(kernel.num_blocks) for _ in range(2 * MIN_SPLIT_MASKS)
            ]
            conn = ShardConnection(server.address)
            answers = wire.decode_answer_response(
                conn.request(wire.encode_answer_request("data", masks))
            )
            conn.close()
            stats = server.stats()
        # answer order is the request order even though chunks ran in parallel
        assert answers == kernel.answer_many(masks)
        assert stats["flushes"] == 1
        assert stats["kernel_subcalls"] == 2  # 128 masks / 64-mask split floor

    def test_small_flush_is_one_subcall(self):
        database = make_database(num_pages=12)
        store = ShardedPageStore(database, 1, "round-robin")
        with ShardServer(store, shard_id=0, answer_threads=4) as server:
            conn = ShardConnection(server.address)
            wire.decode_answer_response(
                conn.request(wire.encode_answer_request("data", [0b101, 0b11]))
            )
            conn.close()
            stats = server.stats()
        assert stats["flushes"] == 1
        assert stats["kernel_subcalls"] == 1

    def test_answers_bit_identical_across_thread_counts(self):
        database = make_database(num_pages=14)
        rng = random.Random(9)
        masks = [rng.getrandbits(14) for _ in range(150)]
        outcomes = {}
        for answer_threads in (1, 4):
            store = ShardedPageStore(database, 1, "round-robin")
            with ShardServer(
                store, shard_id=0, answer_threads=answer_threads
            ) as server:
                conn = ShardConnection(server.address)
                outcomes[answer_threads] = wire.decode_answer_response(
                    conn.request(wire.encode_answer_request("data", masks))
                )
                conn.close()
        assert outcomes[1] == outcomes[4]

    def test_cluster_passes_answer_threads_through(self):
        database = make_database(num_pages=9)
        with ShardCluster(database, num_shards=2, answer_threads=2) as cluster:
            assert all(server.answer_threads == 2 for server in cluster.servers)
            for stats in cluster.stats():
                assert stats["kernel_subcalls"] == 0
