"""Tests for the border-to-border pre-computation (S_ij and G_ij)."""

import math

import pytest

from repro.network import shortest_path, shortest_path_cost
from repro.partition import merge_region_payloads, encode_region_payload, decode_region_payload
from repro.precompute import compute_border_products


class TestRegionSets:
    def test_every_ordered_pair_has_an_entry(self, partitioning, border_products):
        expected = partitioning.num_regions ** 2
        assert len(border_products.region_sets) == expected

    def test_region_sets_exclude_their_own_endpoints(self, border_products):
        for (region_i, region_j), regions in border_products.region_sets.items():
            assert region_i not in regions
            assert region_j not in regions

    def test_max_region_set_size(self, border_products):
        max_size = border_products.max_region_set_size()
        assert max_size == max(len(r) for r in border_products.region_sets.values())
        assert max_size >= 1

    def test_region_set_covering_guarantee(
        self, small_network, partitioning, border_products, rng
    ):
        """Fetching R_s, R_t and S_st yields a subgraph containing a true shortest path."""
        node_ids = list(small_network.node_ids())
        for _ in range(8):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            region_s = partitioning.region_of_node(source)
            region_t = partitioning.region_of_node(target)
            regions = set(border_products.region_set(region_s, region_t)) | {region_s, region_t}
            node_set = [
                node_id
                for region_id in regions
                for node_id in partitioning.region(region_id).node_ids
            ]
            subgraph = small_network.subgraph(node_set)
            expected = shortest_path_cost(small_network, source, target)
            observed = shortest_path(subgraph, source, target).cost
            assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_symmetric_network_gives_symmetric_sets(self, border_products, partitioning):
        """Our generators add both edge directions, so S_ij == S_ji."""
        region_ids = list(partitioning.region_ids())[:6]
        for region_i in region_ids:
            for region_j in region_ids:
                assert border_products.region_set(region_i, region_j) == border_products.region_set(
                    region_j, region_i
                )

    def test_missing_pair_returns_empty_set(self, border_products):
        assert border_products.region_set(10_000, 10_001) == frozenset()


class TestPassageSubgraphs:
    def test_subgraph_edges_exist_in_network(self, small_network, border_products):
        for edges in border_products.passage_subgraphs.values():
            for source, target in edges:
                assert small_network.has_edge(source, target)

    def test_subgraph_covering_guarantee(
        self, small_network, partitioning, border_products, rng
    ):
        """R_s, R_t region data plus G_st edges contain a true shortest path."""
        from repro.network import RoadNetwork

        node_ids = list(small_network.node_ids())
        for _ in range(8):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            region_s = partitioning.region_of_node(source)
            region_t = partitioning.region_of_node(target)
            graph = RoadNetwork()
            keep = set(partitioning.region(region_s).node_ids) | set(
                partitioning.region(region_t).node_ids
            )
            for node_id in keep:
                node = small_network.node(node_id)
                graph.add_node(node_id, node.x, node.y)
            for node_id in keep:
                for neighbor, weight in small_network.neighbors(node_id):
                    if neighbor in keep:
                        graph.add_edge(node_id, neighbor, weight)
            for edge_source, edge_target in border_products.passage_subgraph(region_s, region_t):
                if edge_source not in graph:
                    graph.add_node(edge_source, 0.0, 0.0)
                if edge_target not in graph:
                    graph.add_node(edge_target, 0.0, 0.0)
                if not graph.has_edge(edge_source, edge_target):
                    graph.add_edge(
                        edge_source, edge_target, small_network.edge_weight(edge_source, edge_target)
                    )
            expected = shortest_path_cost(small_network, source, target)
            observed = shortest_path(graph, source, target).cost
            assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_restricted_pairs_only(self, small_network, partitioning, border_index):
        pairs = [(0, 1), (1, 0)]
        products = compute_border_products(
            small_network,
            partitioning,
            border_index,
            want_region_sets=False,
            want_subgraphs=True,
            subgraph_pairs=pairs,
        )
        assert set(products.passage_subgraphs) == set(pairs)
        assert not products.region_sets

    def test_nothing_requested_returns_empty(self, small_network, partitioning, border_index):
        products = compute_border_products(
            small_network,
            partitioning,
            border_index,
            want_region_sets=False,
            want_subgraphs=False,
        )
        assert not products.region_sets
        assert not products.passage_subgraphs
