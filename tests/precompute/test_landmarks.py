"""Tests for landmark (ALT) pre-computation."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network import dijkstra_tree, shortest_path_cost
from repro.precompute import build_landmark_index, select_anchors


@pytest.fixture(scope="module")
def landmark_index(request):
    network = request.getfixturevalue("medium_network")
    return build_landmark_index(network, num_anchors=4, seed=2)


class TestAnchorSelection:
    def test_requested_count(self, medium_network):
        anchors = select_anchors(medium_network, 6, seed=1)
        assert len(anchors) == 6
        assert len(set(anchors)) == 6

    def test_too_many_anchors_rejected(self, medium_network):
        with pytest.raises(GraphError):
            select_anchors(medium_network, medium_network.num_nodes + 1)

    def test_zero_anchors_rejected(self, medium_network):
        with pytest.raises(GraphError):
            select_anchors(medium_network, 0)

    def test_anchors_are_spread_out(self, medium_network):
        """Farthest-point selection should not return clustered anchors."""
        anchors = select_anchors(medium_network, 4, seed=3)
        min_x, min_y, max_x, max_y = medium_network.bounding_box()
        diagonal = math.hypot(max_x - min_x, max_y - min_y)
        pairwise = [
            medium_network.euclidean_distance(a, b)
            for i, a in enumerate(anchors)
            for b in anchors[i + 1:]
        ]
        assert min(pairwise) > diagonal / 10


class TestLandmarkIndex:
    def test_vectors_cover_all_nodes(self, medium_network, landmark_index):
        assert set(landmark_index.vectors) == set(medium_network.node_ids())
        for vector in landmark_index.vectors.values():
            assert len(vector) == landmark_index.num_anchors

    def test_vectors_are_true_distances(self, medium_network, landmark_index):
        anchor = landmark_index.anchors[0]
        tree = dijkstra_tree(medium_network, anchor)
        for node_id in list(medium_network.node_ids())[::53]:
            assert landmark_index.vector(node_id)[0] == pytest.approx(tree.distance_to(node_id))

    def test_lower_bound_is_admissible(self, medium_network, landmark_index, rng):
        node_ids = list(medium_network.node_ids())
        for _ in range(10):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            bound = landmark_index.lower_bound(source, target)
            true_cost = shortest_path_cost(medium_network, source, target)
            assert bound <= true_cost + 1e-9

    def test_lower_bound_is_zero_for_same_node(self, medium_network, landmark_index):
        some_node = next(iter(medium_network.node_ids()))
        assert landmark_index.lower_bound(some_node, some_node) == 0.0

    def test_heuristic_matches_lower_bound(self, medium_network, landmark_index):
        node_ids = list(medium_network.node_ids())
        heuristic = landmark_index.heuristic_for(node_ids[7])
        assert heuristic(node_ids[3]) == pytest.approx(
            landmark_index.lower_bound(node_ids[3], node_ids[7])
        )
