"""Tests for arc-flag pre-computation."""

import math

import pytest

from repro.network import shortest_path, shortest_path_cost
from repro.precompute import build_arc_flags


@pytest.fixture(scope="module")
def arc_flags(request):
    network = request.getfixturevalue("small_network")
    partitioning = request.getfixturevalue("partitioning")
    border_index = request.getfixturevalue("border_index")
    return build_arc_flags(network, partitioning, border_index)


class TestArcFlags:
    def test_every_edge_has_a_flag_vector(self, small_network, arc_flags):
        for edge in small_network.edges():
            assert (edge.source, edge.target) in arc_flags.flags

    def test_edges_into_a_region_are_flagged_for_it(self, small_network, partitioning, arc_flags):
        for edge in small_network.edges():
            head_region = partitioning.region_of_node(edge.target)
            assert arc_flags.is_useful(edge.source, edge.target, head_region)

    def test_flags_prune_a_meaningful_fraction_of_edges(self, arc_flags):
        """Arc flags are only useful if most region bits are unset."""
        assert 0.0 < arc_flags.flag_fraction() < 0.9

    def test_restricted_search_preserves_shortest_path_costs(
        self, small_network, partitioning, arc_flags, rng
    ):
        """Soundness: pruning unflagged edges never changes the shortest-path cost."""
        from repro.network import RoadNetwork

        node_ids = list(small_network.node_ids())
        for _ in range(8):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            destination_region = partitioning.region_of_node(target)
            restricted = RoadNetwork()
            for node in small_network.nodes():
                restricted.add_node(node.node_id, node.x, node.y)
            for edge in small_network.edges():
                if arc_flags.is_useful(edge.source, edge.target, destination_region):
                    restricted.add_edge(edge.source, edge.target, edge.weight)
            expected = shortest_path_cost(small_network, source, target)
            observed = shortest_path(restricted, source, target).cost
            assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_bit_vector_width_and_contents(self, partitioning, small_network, arc_flags):
        edge = next(iter(small_network.edges()))
        vector = arc_flags.bit_vector(edge.source, edge.target)
        assert len(vector) == (partitioning.num_regions + 7) // 8
        flagged = arc_flags.flags[(edge.source, edge.target)]
        for region in flagged:
            assert vector[region // 8] & (1 << (region % 8))

    def test_unknown_edge_is_never_useful(self, arc_flags):
        assert not arc_flags.is_useful(10**6, 10**6 + 1, 0)
