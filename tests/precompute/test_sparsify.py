"""Tests for the approximate (bounded-deviation) passage-subgraph pre-computation."""

import pytest

from repro.exceptions import PartitionError
from repro.precompute import (
    ApproximateProducts,
    BorderProducts,
    compute_approximate_passage_subgraphs,
)
from repro.precompute.sparsify import _bounded_reachable


@pytest.fixture(scope="module")
def approx_products(small_network, partitioning, border_index):
    return compute_approximate_passage_subgraphs(
        small_network, partitioning, border_index, epsilon=0.2
    )


@pytest.fixture(scope="module")
def exact_subgraphs(small_network, partitioning, border_index, border_products):
    return border_products.passage_subgraphs


class TestBoundedReachable:
    def test_trivial_same_node(self):
        assert _bounded_reachable({}, 5, 5, 0.0)

    def test_unknown_source(self):
        assert not _bounded_reachable({}, 1, 2, 10.0)

    def test_simple_path_within_budget(self):
        adjacency = {1: [(2, 1.0)], 2: [(3, 1.0)]}
        assert _bounded_reachable(adjacency, 1, 3, 2.0)
        assert not _bounded_reachable(adjacency, 1, 3, 1.9)

    def test_disconnected_target(self):
        adjacency = {1: [(2, 1.0)]}
        assert not _bounded_reachable(adjacency, 1, 99, 100.0)

    def test_picks_cheapest_route(self):
        adjacency = {1: [(2, 5.0), (3, 1.0)], 3: [(2, 1.0)]}
        assert _bounded_reachable(adjacency, 1, 2, 2.0)


class TestApproximateProducts:
    def test_negative_epsilon_rejected(self, small_network, partitioning, border_index):
        with pytest.raises(PartitionError):
            compute_approximate_passage_subgraphs(
                small_network, partitioning, border_index, epsilon=-0.1
            )

    def test_covers_all_region_pairs(self, approx_products, partitioning):
        expected_pairs = {
            (i, j) for i in partitioning.region_ids() for j in partitioning.region_ids()
        }
        assert set(approx_products.passage_subgraphs.keys()) == expected_pairs

    def test_subgraphs_are_subsets_of_exact_ones(self, approx_products, exact_subgraphs):
        for key, edges in approx_products.passage_subgraphs.items():
            assert edges <= exact_subgraphs[key]

    def test_total_edges_do_not_exceed_exact(self, approx_products, exact_subgraphs):
        approx_total = sum(len(edges) for edges in approx_products.passage_subgraphs.values())
        exact_total = sum(len(edges) for edges in exact_subgraphs.values())
        assert approx_total <= exact_total
        assert approx_total > 0

    def test_stats_are_consistent(self, approx_products):
        stats = approx_products.stats
        assert stats.pairs_selected + stats.pairs_skipped == stats.pairs_total
        assert 0.0 <= stats.selection_ratio <= 1.0
        assert 0.0 <= stats.edge_ratio <= 1.0
        assert stats.kept_edges <= stats.exact_edges

    def test_deviation_bound(self, approx_products):
        assert approx_products.deviation_bound == pytest.approx(1.2)

    def test_as_border_products(self, approx_products):
        repackaged = approx_products.as_border_products()
        assert isinstance(repackaged, BorderProducts)
        assert repackaged.passage_subgraphs == approx_products.passage_subgraphs
        assert repackaged.region_sets == {}

    def test_zero_epsilon_still_skips_covered_pairs(
        self, small_network, partitioning, border_index
    ):
        products = compute_approximate_passage_subgraphs(
            small_network, partitioning, border_index, epsilon=0.0
        )
        # epsilon = 0 deduplicates border pairs whose exact paths are nested
        # inside other selected paths; some skipping always happens on a
        # non-trivial network.
        assert products.stats.pairs_skipped > 0
        assert products.stats.kept_edges <= products.stats.exact_edges

    def test_larger_epsilon_never_increases_selection(
        self, small_network, partitioning, border_index, approx_products
    ):
        loose = compute_approximate_passage_subgraphs(
            small_network, partitioning, border_index, epsilon=1.0
        )
        assert loose.stats.pairs_selected <= approx_products.stats.pairs_total
        assert loose.stats.kept_edges <= loose.stats.exact_edges

    def test_empty_stats_ratios(self):
        from repro.precompute import SparsificationStats

        stats = SparsificationStats(epsilon=0.1)
        assert stats.selection_ratio == 0.0
        assert stats.edge_ratio == 0.0
