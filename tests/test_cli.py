"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestParser:
    def test_no_command_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "does-not-exist"])

    def test_dataset_and_network_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "build",
                    "--dataset",
                    "oldenburg",
                    "--network",
                    str(tmp_path / "net.txt"),
                ]
            )


class TestDatasetsCommand:
    def test_lists_all_registry_entries(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for label in ("Old.", "Ger.", "Arg.", "Den.", "Ind.", "Nor."):
            assert label in output


class TestGenerateCommand:
    def test_writes_network_file(self, tmp_path, capsys):
        output = tmp_path / "net.txt"
        assert main(["generate", "--nodes", "60", "--seed", "3", "--output", str(output)]) == 0
        assert output.exists()
        assert "60 nodes" in capsys.readouterr().out

    def test_generated_file_can_back_a_build(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "80", "--seed", "5", "--output", str(network_file)])
        code = main(
            [
                "build",
                "--network",
                str(network_file),
                "--scheme",
                "CI",
                "--page-size",
                "256",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "scheme        : CI" in output
        assert "query plan" in output


class TestBuildCommand:
    def test_build_and_save(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "9", "--output", str(network_file)])
        save_dir = tmp_path / "db"
        code = main(
            [
                "build",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--save",
                str(save_dir),
            ]
        )
        assert code == 0
        assert (save_dir / "manifest.json").exists()
        assert "database saved" in capsys.readouterr().out


class TestQueryCommand:
    def test_query_with_random_endpoints(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "query",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--show-view",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "path cost" in output
        assert "response time" in output
        assert "round 1" in output

    def test_query_with_explicit_endpoints(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "query",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--source",
                "0",
                "--target",
                "33",
            ]
        )
        assert code == 0
        assert "0 -> 33" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_runs_workload_through_engine(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--queries",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "queries         : 5" in output
        assert "costs correct   : True" in output
        assert "indistinguishable: True" in output
        assert "page cache" in output

    def test_batch_with_workers_and_cache_knobs(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--queries",
                "6",
                "--workers",
                "2",
                "--cache-entries",
                "64",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workers         : 2 (pipelined)" in output
        assert "costs correct   : True" in output

    def test_batch_rejects_invalid_workers(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--queries",
                "3",
                "--workers",
                "0",
            ]
        )
        assert code == 2
        assert "--workers must be positive" in capsys.readouterr().err

    def test_batch_with_shards_and_process_workers(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--queries",
                "5",
                "--shards",
                "4",
                "--workers",
                "2",
                "--worker-mode",
                "process",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "worker mode     : process" in output
        assert "pir shards      : 4" in output
        assert "costs correct   : True" in output
        assert "indistinguishable: True" in output

    def test_batch_cache_entries_zero_disables_caching(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--queries",
                "4",
                "--cache-entries",
                "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "page cache      : 0 hits" in output
        assert "costs correct   : True" in output

    def test_batch_rejects_negative_cache_entries(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--queries",
                "3",
                "--cache-entries",
                "-1",
            ]
        )
        assert code == 2
        assert "--cache-entries must be non-negative" in capsys.readouterr().err

    def test_batch_rejects_invalid_shards(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--queries",
                "3",
                "--shards",
                "0",
            ]
        )
        assert code == 2
        assert "--shards must be positive" in capsys.readouterr().err

    def test_batch_no_verify_skips_costs(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "batch",
                "--network",
                str(network_file),
                "--page-size",
                "256",
                "--queries",
                "3",
                "--no-verify",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "costs correct" not in output
        assert "queries         : 3" in output


class TestExperimentCommand:
    def test_table2_runs_quickly(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "experiment: table2" in capsys.readouterr().out

    def test_ablation_oram(self, capsys):
        assert main(["experiment", "ablation-oram"]) == 0
        output = capsys.readouterr().out
        assert "trivial_scan_per_access" in output


class TestServeCommand:
    def test_serve_boots_and_drains(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "serve",
                "--network", str(network_file),
                "--page-size", "256",
                "--shards", "2",
                "--run-seconds", "0.1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "2 shard server(s)" in output
        assert "shard 0: 127.0.0.1:" in output
        assert "shard 1: 127.0.0.1:" in output
        assert "draining and shutting down" in output

    def test_serve_rejects_invalid_shards(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            ["serve", "--network", str(network_file), "--shards", "0"]
        )
        assert code == 2
        assert "--shards must be positive" in capsys.readouterr().err

    def test_serve_with_answer_threads(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "serve",
                "--network", str(network_file),
                "--page-size", "256",
                "--shards", "2",
                "--answer-threads", "3",
                "--run-seconds", "0.1",
            ]
        )
        assert code == 0
        assert "3 answer thread(s)" in capsys.readouterr().out

    def test_serve_rejects_invalid_answer_threads(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            ["serve", "--network", str(network_file), "--answer-threads", "0"]
        )
        assert code == 2
        assert "--answer-threads must be positive" in capsys.readouterr().err


class TestLoadgenCommand:
    def test_loadgen_reports_throughput_and_checks_engine(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "loadgen",
                "--network", str(network_file),
                "--page-size", "256",
                "--shards", "2",
                "--rate", "200",
                "--duration", "0.6",
                "--warmup", "0.1",
                "--check-engine",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "open-loop load" in output
        assert "mismatches=0" in output
        assert "retrievals/s" in output
        assert "remote results bit-identical to in-process" in output

    def test_loadgen_with_client_procs_aggregates(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "loadgen",
                "--network", str(network_file),
                "--page-size", "256",
                "--shards", "2",
                "--rate", "200",
                "--duration", "0.6",
                "--warmup", "0.1",
                "--client-procs", "2",
                "--answer-threads", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mismatches=0" in output
        assert "2 client process(es)" in output

    def test_loadgen_rejects_invalid_client_procs(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            ["loadgen", "--network", str(network_file), "--client-procs", "0"]
        )
        assert code == 2
        assert "--answer-threads/--client-procs" in capsys.readouterr().err

    def test_loadgen_rejects_warmup_longer_than_duration(self, tmp_path, capsys):
        network_file = tmp_path / "net.txt"
        main(["generate", "--nodes", "70", "--seed", "2", "--output", str(network_file)])
        code = main(
            [
                "loadgen",
                "--network", str(network_file),
                "--duration", "0.5",
                "--warmup", "1.0",
            ]
        )
        assert code == 2
        assert "--warmup must be shorter" in capsys.readouterr().err
