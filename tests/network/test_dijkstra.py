"""Tests for Dijkstra, bidirectional Dijkstra and shortest-path trees."""

import math

import pytest

from repro.exceptions import NoPathError
from repro.network import (
    RoadNetwork,
    SearchStats,
    all_pairs_sample_costs,
    bidirectional_dijkstra,
    dijkstra_tree,
    shortest_path,
    shortest_path_cost,
)


def build_diamond():
    """A diamond where the two-hop route beats the direct (expensive) edge."""
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (1, 1), (1, -1), (2, 0)]):
        network.add_node(node_id, float(x), float(y))
    network.add_undirected_edge(0, 1, 1.0)
    network.add_undirected_edge(1, 3, 1.0)
    network.add_undirected_edge(0, 2, 2.0)
    network.add_undirected_edge(2, 3, 2.0)
    network.add_undirected_edge(0, 3, 5.0)
    return network


class TestPointToPoint:
    def test_shortest_path_prefers_cheap_route(self):
        network = build_diamond()
        path = shortest_path(network, 0, 3)
        assert path.nodes == (0, 1, 3)
        assert path.cost == pytest.approx(2.0)

    def test_trivial_query_source_equals_target(self):
        network = build_diamond()
        path = shortest_path(network, 2, 2)
        assert path.nodes == (2,)
        assert path.cost == 0.0

    def test_no_path_raises(self):
        network = build_diamond()
        network.add_node(99, 10.0, 10.0)
        with pytest.raises(NoPathError):
            shortest_path(network, 0, 99)

    def test_shortest_path_cost_helper(self):
        network = build_diamond()
        assert shortest_path_cost(network, 0, 3) == pytest.approx(2.0)

    def test_stats_are_collected(self):
        network = build_diamond()
        stats = SearchStats()
        shortest_path(network, 0, 3, stats=stats)
        assert stats.settled_nodes >= 2
        assert stats.relaxed_edges >= 2

    def test_directed_asymmetry(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        network.add_edge(0, 1, 1.0)
        assert shortest_path_cost(network, 0, 1) == 1.0
        with pytest.raises(NoPathError):
            shortest_path(network, 1, 0)


class TestShortestPathTree:
    def test_tree_distances_and_paths(self):
        network = build_diamond()
        tree = dijkstra_tree(network, 0)
        assert tree.distance_to(3) == pytest.approx(2.0)
        assert tree.distance_to(2) == pytest.approx(2.0)
        assert tree.path_to(3).nodes == (0, 1, 3)
        assert tree.has_path_to(1)

    def test_tree_target_early_termination(self):
        network = build_diamond()
        tree = dijkstra_tree(network, 0, targets=[1])
        assert tree.distance_to(1) == pytest.approx(1.0)

    def test_tree_missing_target_raises(self):
        network = build_diamond()
        network.add_node(42, 5.0, 5.0)
        tree = dijkstra_tree(network, 0)
        with pytest.raises(NoPathError):
            tree.distance_to(42)
        assert not tree.has_path_to(42)

    def test_path_reconstruction_cost_matches_distance(self, medium_network):
        tree = dijkstra_tree(medium_network, 0)
        for target in list(medium_network.node_ids())[::37]:
            if not tree.has_path_to(target):
                continue
            path = tree.path_to(target)
            assert path.cost == pytest.approx(tree.distance_to(target))
            assert path.source == 0
            assert path.target == target


class TestBidirectional:
    def test_matches_unidirectional_on_diamond(self):
        network = build_diamond()
        forward = shortest_path(network, 0, 3)
        both = bidirectional_dijkstra(network, 0, 3)
        assert both.cost == pytest.approx(forward.cost)

    def test_matches_unidirectional_on_random_network(self, medium_network, rng):
        node_ids = list(medium_network.node_ids())
        for _ in range(10):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            expected = shortest_path_cost(medium_network, source, target)
            observed = bidirectional_dijkstra(medium_network, source, target).cost
            assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_trivial_and_missing(self):
        network = build_diamond()
        assert bidirectional_dijkstra(network, 1, 1).cost == 0.0
        network.add_node(77, 9.0, 9.0)
        with pytest.raises(NoPathError):
            bidirectional_dijkstra(network, 0, 77)


class TestBatchCosts:
    def test_all_pairs_sample_costs(self):
        network = build_diamond()
        pairs = [(0, 3), (0, 2), (1, 2)]
        costs = all_pairs_sample_costs(network, pairs)
        assert costs[(0, 3)] == pytest.approx(2.0)
        assert costs[(0, 2)] == pytest.approx(2.0)
        assert costs[(1, 2)] == pytest.approx(3.0)
