"""Tests for the streaming generators, DIMACS I/O and node-record databases."""

import io
import struct

import pytest

from repro.exceptions import GraphError
from repro.network import (
    grid_network,
    iter_dimacs_records,
    network_from_records,
    read_dimacs,
    stream_cluster_network,
    stream_grid_network,
    write_dimacs,
)
from repro.network.dijkstra import shortest_path_cost
from repro.storage import iter_node_records, stream_node_database


def float32(value):
    return struct.unpack("<f", struct.pack("<f", value))[0]


class TestStreamGridNetwork:
    def test_matches_grid_topology(self):
        rows, cols = 7, 9
        network = network_from_records(stream_grid_network(rows, cols, seed=5))
        reference = grid_network(rows, cols, seed=5)
        assert network.num_nodes == reference.num_nodes
        assert network.num_edges == reference.num_edges
        # identical undirected adjacency structure (weights differ: the
        # streaming generator uses stateless hash jitter, not a sequential RNG)
        for node_id in range(rows * cols):
            assert sorted(n for n, _ in network.neighbors(node_id)) == \
                sorted(n for n, _ in reference.neighbors(node_id))

    def test_edges_are_symmetric_and_positive(self):
        network = network_from_records(stream_grid_network(6, 6, seed=9))
        for node_id in range(36):
            for neighbor, weight in network.neighbors(node_id):
                assert weight > 0
                assert dict(network.neighbors(neighbor))[node_id] == weight

    def test_deterministic_and_seed_sensitive(self):
        first = list(stream_grid_network(4, 4, seed=1))
        second = list(stream_grid_network(4, 4, seed=1))
        other = list(stream_grid_network(4, 4, seed=2))
        assert first == second
        assert first != other

    def test_records_are_o1_without_materialization(self):
        # pull a few records from a network far too big to materialize;
        # the generator must not precompute anything global
        stream = stream_grid_network(10**4, 10**4)
        for _ in range(5):
            node_id, x, y, neighbors = next(stream)
            assert 2 <= len(neighbors) <= 4

    def test_rejects_empty_grid(self):
        with pytest.raises(GraphError):
            next(stream_grid_network(0, 5))


class TestStreamClusterNetwork:
    def test_connected_and_symmetric(self):
        network = network_from_records(stream_cluster_network(6, 5, seed=3))
        assert network.num_nodes == 30
        # gateway chaining keeps everything reachable
        assert shortest_path_cost(network, 0, 29) > 0
        for node_id in range(30):
            for neighbor, weight in network.neighbors(node_id):
                assert dict(network.neighbors(neighbor))[node_id] == weight

    def test_rejects_degenerate_clusters(self):
        with pytest.raises(GraphError):
            next(stream_cluster_network(3, 2))


class TestDimacs:
    def test_round_trip_preserves_structure_and_costs(self):
        original = grid_network(6, 6, seed=8)
        gr, co = io.StringIO(), io.StringIO()
        write_dimacs(original, gr, co, scale=10**6)
        gr.seek(0), co.seek(0)
        recovered = read_dimacs(gr, co, scale=10**6)
        assert recovered.num_nodes == original.num_nodes
        assert recovered.num_edges == original.num_edges
        assert shortest_path_cost(recovered, 0, 35) == pytest.approx(
            shortest_path_cost(original, 0, 35), rel=1e-5
        )

    def test_streaming_records_match_materialized_read(self):
        original = grid_network(5, 4, seed=2)
        gr, co = io.StringIO(), io.StringIO()
        write_dimacs(original, gr, co)
        gr.seek(0), co.seek(0)
        materialized = read_dimacs(io.StringIO(gr.getvalue()), io.StringIO(co.getvalue()))
        streamed = network_from_records(iter_dimacs_records(gr, co))
        assert streamed.num_nodes == materialized.num_nodes
        assert streamed.num_edges == materialized.num_edges
        for node_id in range(streamed.num_nodes):
            assert sorted(streamed.neighbors(node_id)) == sorted(materialized.neighbors(node_id))

    def test_without_coordinates_nodes_sit_at_origin(self):
        gr = io.StringIO("c tiny\np sp 3 2\na 1 2 5\na 2 3 7\n")
        network = read_dimacs(gr, scale=1.0)
        assert network.num_nodes == 3
        assert dict(network.neighbors(0))[1] == 5.0
        node = next(n for n in network.nodes() if n.node_id == 0)
        assert (node.x, node.y) == (0.0, 0.0)

    def test_streaming_rejects_ungrouped_arcs(self):
        gr = io.StringIO("p sp 3 3\na 1 2 1\na 2 3 1\na 1 3 1\n")
        with pytest.raises(GraphError):
            list(iter_dimacs_records(gr))

    def test_isolated_nodes_are_emitted(self):
        gr = io.StringIO("p sp 4 1\na 1 2 3\n")
        records = list(iter_dimacs_records(gr))
        assert [record[0] for record in records] == [0, 1, 2, 3]
        assert records[0][3] == [(1, 3.0 / 1000.0)]
        assert all(record[3] == [] for record in records[1:])

    def test_malformed_lines_raise(self):
        with pytest.raises(GraphError):
            read_dimacs(io.StringIO("p sp 2\n"))
        with pytest.raises(GraphError):
            read_dimacs(io.StringIO("p sp 2 1\nq 1 2 3\n"))


class TestStreamNodeDatabase:
    @pytest.mark.parametrize("backend", ["memory", "mmap", "sqlite"])
    @pytest.mark.parametrize("payload_pad", [0, 96])
    def test_records_round_trip_through_page_store(self, backend, payload_pad, tmp_path):
        records = list(stream_grid_network(9, 7, seed=6))
        database, count = stream_node_database(
            records,
            page_size=512,
            store_backend=backend,
            store_dir=tmp_path if backend != "memory" else None,
            payload_pad=payload_pad,
        )
        try:
            assert count == len(records)
            recovered = list(iter_node_records(database))
            assert len(recovered) == count
            for (nid, x, y, adj), (rid, rx, ry, radj) in zip(records, recovered):
                assert rid == nid
                assert rx == float32(x) and ry == float32(y)
                assert [n for n, _ in radj] == [n for n, _ in adj]
                assert all(rw == float32(w) for (_, rw), (_, w) in zip(radj, adj))
        finally:
            database.close()

    def test_streamed_network_answers_queries(self, tmp_path):
        records = list(stream_cluster_network(4, 6, seed=7))
        database, _ = stream_node_database(
            records, page_size=256, store_backend="sqlite", store_dir=tmp_path
        )
        try:
            network = network_from_records(iter_node_records(database))
            direct = network_from_records(records)
            assert shortest_path_cost(network, 0, 23) == pytest.approx(
                shortest_path_cost(direct, 0, 23), rel=1e-5
            )
        finally:
            database.close()
