"""Tests for A* search and its heuristics."""

import math

import pytest

from repro.exceptions import NoPathError
from repro.network import (
    RoadNetwork,
    SearchStats,
    astar_search,
    euclidean_heuristic,
    shortest_path,
    shortest_path_cost,
    zero_heuristic,
)


class TestAstarCorrectness:
    def test_matches_dijkstra_on_random_network(self, medium_network, rng):
        node_ids = list(medium_network.node_ids())
        for _ in range(12):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            expected = shortest_path_cost(medium_network, source, target)
            observed = astar_search(medium_network, source, target).cost
            assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_zero_heuristic_degenerates_to_dijkstra(self, medium_network, rng):
        node_ids = list(medium_network.node_ids())
        source, target = node_ids[3], node_ids[-7]
        expected = shortest_path_cost(medium_network, source, target)
        observed = astar_search(medium_network, source, target, heuristic=zero_heuristic).cost
        assert math.isclose(observed, expected, rel_tol=1e-9)

    def test_source_equals_target(self, medium_network):
        path = astar_search(medium_network, 5, 5)
        assert path.nodes == (5,)
        assert path.cost == 0.0

    def test_no_path_raises(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        with pytest.raises(NoPathError):
            astar_search(network, 0, 1)


class TestAstarEfficiency:
    def test_euclidean_heuristic_settles_no_more_nodes(self, medium_network, rng):
        """A* with an admissible heuristic should not expand more nodes than Dijkstra."""
        node_ids = list(medium_network.node_ids())
        guided_total = 0
        blind_total = 0
        for _ in range(8):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            guided = SearchStats()
            astar_search(medium_network, source, target, stats=guided)
            blind = SearchStats()
            astar_search(medium_network, source, target, heuristic=zero_heuristic, stats=blind)
            guided_total += guided.settled_nodes
            blind_total += blind.settled_nodes
        assert guided_total <= blind_total

    def test_on_settle_callback_sees_source_first_and_target_last(self, medium_network):
        settled = []
        astar_search(medium_network, 2, 117, on_settle=settled.append)
        assert settled[0] == 2
        assert settled[-1] == 117

    def test_heuristic_is_admissible(self, medium_network, rng):
        """The Euclidean lower bound never exceeds the true remaining cost."""
        node_ids = list(medium_network.node_ids())
        target = node_ids[11]
        heuristic = euclidean_heuristic(medium_network, target)
        from repro.network import dijkstra_tree

        tree = dijkstra_tree(medium_network.reversed(), target)
        for node_id in node_ids[::23]:
            if tree.has_path_to(node_id):
                assert heuristic(node_id) <= tree.distance_to(node_id) + 1e-9
