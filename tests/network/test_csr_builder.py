"""Tests for :class:`repro.network.indexed.CsrBuilder` and ``csr_shortest_path``.

The builder must replicate the dict-merge reference semantics exactly:
identical node ordering, identical adjacency ordering, identical edge
filtering and duplicate handling — so that searches over the built CSR
return the same paths as searches over the merged :class:`RoadNetwork`.
"""

import pytest

from repro.exceptions import GraphError, NoPathError
from repro.network import (
    CsrBuilder,
    CsrGraph,
    csr_shortest_path,
    random_planar_network,
    shortest_path,
)
from repro.network.indexed import csr_for
from repro.partition import merge_region_payloads


def _payload(entries):
    """Build a decoded-payload mapping: {node: (x, y, [(nbr, w), ...])}."""
    return {node: (x, y, list(adj)) for node, (x, y, adj) in entries.items()}


class TestCsrBuilderSemantics:
    def test_single_payload_matches_reference_merge(self):
        payload = _payload({
            1: (0.0, 0.0, [(2, 1.0), (3, 2.5)]),
            2: (1.0, 0.0, [(1, 1.0)]),
            3: (0.0, 1.0, [(1, 2.5), (9, 4.0)]),  # 9 is outside: dropped
        })
        reference = merge_region_payloads([payload])
        built = CsrBuilder().add_payload(payload).build()
        compiled = CsrGraph.from_network(reference)
        assert built.node_ids == compiled.node_ids
        assert list(built.offsets) == list(compiled.offsets)
        assert list(built.targets) == list(compiled.targets)
        assert list(built.weights) == list(compiled.weights)
        assert list(built.xs) == list(compiled.xs)
        assert list(built.ys) == list(compiled.ys)

    def test_overlapping_payloads_last_wins_first_position(self):
        first = _payload({1: (0.0, 0.0, [(2, 1.0)]), 2: (1.0, 0.0, [])})
        second = _payload({2: (1.0, 0.0, [(1, 3.0)]), 3: (2.0, 0.0, [(2, 1.5)])})
        reference = merge_region_payloads([first, second])
        built = CsrBuilder().add_payload(first).add_payload(second).build()
        compiled = CsrGraph.from_network(reference)
        assert built.node_ids == compiled.node_ids
        assert list(built.targets) == list(compiled.targets)
        assert list(built.weights) == list(compiled.weights)

    def test_extra_edges_are_appended_and_deduplicated(self):
        payload = _payload({
            1: (0.0, 0.0, [(2, 1.0)]),
            2: (1.0, 0.0, []),
        })
        # (1, 2) duplicates a payload edge and must be skipped; (2, 1) is new
        built = (
            CsrBuilder()
            .add_payload(payload)
            .add_edges([(1, 2, 9.0), (2, 1, 4.0), (2, 1, 5.0)])
            .build()
        )
        assert built.heuristic_safe  # no placeholder nodes were interned
        edges = [
            (built.node_ids[u], built.node_ids[built.targets[k]], built.weights[k])
            for u in range(built.num_nodes)
            for k in range(built.offsets[u], built.offsets[u + 1])
        ]
        assert edges == [(1, 2, 1.0), (2, 1, 4.0)]

    def test_placeholder_nodes_mark_graph_heuristic_unsafe(self):
        payload = _payload({1: (5.0, 5.0, []), 2: (6.0, 5.0, [])})
        built = (
            CsrBuilder()
            .add_payload(payload)
            .add_edges([(1, 77, 1.0), (77, 2, 1.0)])
            .build()
        )
        assert not built.heuristic_safe
        assert 77 in built
        dense = built.dense_id(77)
        assert (built.xs[dense], built.ys[dense]) == (0.0, 0.0)
        # interned after every payload node, in encounter order
        assert built.node_ids == [1, 2, 77]

    def test_payload_edge_to_passage_only_node_stays_dropped(self):
        # a payload edge pointing at a node that only the passage entry
        # carries is dropped, exactly like the reference merge (which filters
        # before the entry nodes exist)
        payload = _payload({1: (0.0, 0.0, [(7, 2.0)]), 2: (1.0, 0.0, [])})
        built = (
            CsrBuilder().add_payload(payload).add_edges([(2, 7, 1.0)]).build()
        )
        dense_one = built.dense_id(1)
        assert built.offsets[dense_one] == built.offsets[dense_one + 1]  # no out-edges


class TestCsrShortestPath:
    def test_matches_network_search_on_compiled_graph(self, medium_network):
        csr = csr_for(medium_network)
        node_ids = list(medium_network.node_ids())
        for source, target in [(node_ids[0], node_ids[-1]), (node_ids[3], node_ids[200])]:
            expected = shortest_path(medium_network, source, target)
            actual = csr_shortest_path(csr, source, target)
            assert actual.nodes == expected.nodes
            assert actual.cost == pytest.approx(expected.cost)

    def test_small_graph_pure_python_core(self):
        payload = _payload({
            1: (0.0, 0.0, [(2, 1.0), (3, 5.0)]),
            2: (0.5, 0.0, [(3, 1.0)]),
            3: (1.0, 0.0, []),
        })
        csr = CsrBuilder().add_payload(payload).build()
        path = csr_shortest_path(csr, 1, 3)
        assert path.nodes == (1, 2, 3)
        assert path.cost == pytest.approx(2.0)

    def test_source_equals_target(self):
        payload = _payload({1: (0.0, 0.0, [])})
        csr = CsrBuilder().add_payload(payload).build()
        path = csr_shortest_path(csr, 1, 1)
        assert path.nodes == (1,)
        assert path.cost == 0.0

    def test_unknown_and_unreachable_ids(self):
        payload = _payload({1: (0.0, 0.0, []), 2: (1.0, 0.0, [])})
        csr = CsrBuilder().add_payload(payload).build()
        with pytest.raises(GraphError):
            csr_shortest_path(csr, 1, 99)
        with pytest.raises(NoPathError):
            csr_shortest_path(csr, 1, 2)

    def test_randomized_equivalence_with_reference_merge(self, rng):
        # split a random network into chunky "payloads" and compare searches
        network = random_planar_network(120, seed=21)
        payloads = []
        node_ids = list(network.node_ids())
        chunk = 40
        for start in range(0, len(node_ids), chunk):
            group = node_ids[start:start + chunk]
            payloads.append(
                {
                    node: (
                        network.node(node).x,
                        network.node(node).y,
                        list(network.neighbors(node)),
                    )
                    for node in group
                }
            )
        # drop one payload so cross-payload filtering actually triggers
        kept = payloads[:-1]
        reference = merge_region_payloads(kept)
        builder = CsrBuilder()
        for payload in kept:
            builder.add_payload(payload)
        built = builder.build()
        compiled = CsrGraph.from_network(reference)
        assert built.node_ids == compiled.node_ids
        assert list(built.offsets) == list(compiled.offsets)
        assert list(built.targets) == list(compiled.targets)
        kept_ids = [n for p in kept for n in p]
        for _ in range(25):
            source, target = rng.choice(kept_ids), rng.choice(kept_ids)
            try:
                expected = shortest_path(reference, source, target)
            except NoPathError:
                with pytest.raises(NoPathError):
                    csr_shortest_path(built, source, target)
                continue
            actual = csr_shortest_path(built, source, target)
            assert actual.nodes == expected.nodes
            assert actual.cost == pytest.approx(expected.cost, rel=1e-12)
