"""Tests for road-network text serialization."""

import io

import pytest

from repro.exceptions import GraphError
from repro.network import (
    network_from_string,
    network_to_string,
    random_planar_network,
    read_network,
    write_network,
)


class TestRoundTrip:
    def test_string_round_trip_preserves_structure(self):
        original = random_planar_network(80, seed=4)
        restored = network_from_string(network_to_string(original))
        assert restored.num_nodes == original.num_nodes
        assert restored.num_edges == original.num_edges
        for node in original.nodes():
            other = restored.node(node.node_id)
            assert other.x == node.x
            assert other.y == node.y
        for edge in original.edges():
            assert restored.edge_weight(edge.source, edge.target) == edge.weight

    def test_file_round_trip(self, tmp_path):
        original = random_planar_network(40, seed=5)
        destination = tmp_path / "network.txt"
        write_network(original, destination)
        restored = read_network(destination)
        assert restored.num_nodes == original.num_nodes
        assert restored.num_edges == original.num_edges

    def test_stream_round_trip(self):
        original = random_planar_network(30, seed=6)
        buffer = io.StringIO()
        write_network(original, buffer)
        buffer.seek(0)
        restored = read_network(buffer)
        assert restored.num_nodes == original.num_nodes


class TestParsing:
    def test_comments_and_blank_lines_are_ignored(self):
        text = """
        # a tiny network
        v 0 0.0 0.0

        v 1 1.0 0.0
        e 0 1 1.5
        """
        network = network_from_string(text)
        assert network.num_nodes == 2
        assert network.edge_weight(0, 1) == 1.5

    def test_malformed_node_line_raises(self):
        with pytest.raises(GraphError):
            network_from_string("v 0 0.0\n")

    def test_malformed_edge_line_raises(self):
        with pytest.raises(GraphError):
            network_from_string("v 0 0.0 0.0\nv 1 1.0 1.0\ne 0 1\n")

    def test_unknown_record_type_raises(self):
        with pytest.raises(GraphError):
            network_from_string("x 1 2 3\n")

    def test_edges_may_precede_nodes(self):
        """Edges are resolved after all nodes are read."""
        text = "e 0 1 2.0\nv 0 0.0 0.0\nv 1 1.0 0.0\n"
        network = network_from_string(text)
        assert network.edge_weight(0, 1) == 2.0
