"""Tests for the road-network graph substrate."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network import RoadNetwork


def build_triangle():
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    network.add_node(1, 3.0, 0.0)
    network.add_node(2, 0.0, 4.0)
    network.add_edge(0, 1, 3.0)
    network.add_edge(1, 2, 5.0)
    network.add_edge(2, 0, 4.0)
    return network


class TestNodeAndEdgeConstruction:
    def test_add_node_and_lookup(self):
        network = RoadNetwork()
        node = network.add_node(7, 1.5, -2.5)
        assert node.node_id == 7
        assert network.node(7).x == 1.5
        assert network.node(7).y == -2.5
        assert 7 in network
        assert len(network) == 1

    def test_re_adding_same_node_is_idempotent(self):
        network = RoadNetwork()
        network.add_node(1, 2.0, 3.0)
        network.add_node(1, 2.0, 3.0)
        assert network.num_nodes == 1

    def test_re_adding_node_with_different_coordinates_fails(self):
        network = RoadNetwork()
        network.add_node(1, 2.0, 3.0)
        with pytest.raises(GraphError):
            network.add_node(1, 2.0, 4.0)

    def test_unknown_node_lookup_fails(self):
        network = RoadNetwork()
        with pytest.raises(GraphError):
            network.node(99)

    def test_edge_requires_existing_endpoints(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            network.add_edge(2, 0, 1.0)

    def test_edge_weight_must_be_positive(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            network.add_edge(0, 1, -2.0)

    def test_undirected_edge_adds_both_directions(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        network.add_undirected_edge(0, 1, 2.0)
        assert network.has_edge(0, 1)
        assert network.has_edge(1, 0)
        assert network.num_edges == 2


class TestGraphQueries:
    def test_neighbors_and_degree(self):
        network = build_triangle()
        assert network.neighbors(0) == [(1, 3.0)]
        assert network.out_degree(1) == 1
        assert network.num_edges == 3

    def test_edge_weight_lookup(self):
        network = build_triangle()
        assert network.edge_weight(1, 2) == 5.0
        with pytest.raises(GraphError):
            network.edge_weight(0, 2)

    def test_edges_iteration_covers_all(self):
        network = build_triangle()
        edges = {(edge.source, edge.target) for edge in network.edges()}
        assert edges == {(0, 1), (1, 2), (2, 0)}

    def test_euclidean_distance(self):
        network = build_triangle()
        assert network.euclidean_distance(0, 1) == pytest.approx(3.0)
        assert network.euclidean_distance(1, 2) == pytest.approx(5.0)

    def test_bounding_box(self):
        network = build_triangle()
        assert network.bounding_box() == (0.0, 0.0, 3.0, 4.0)

    def test_bounding_box_of_empty_network_fails(self):
        with pytest.raises(GraphError):
            RoadNetwork().bounding_box()

    def test_nearest_node(self):
        network = build_triangle()
        assert network.nearest_node(0.1, 0.1) == 0
        assert network.nearest_node(2.9, 0.2) == 1
        assert network.nearest_node(0.0, 3.8) == 2

    def test_directed_cycle_is_connected(self):
        # 0 -> 1 -> 2 -> 0 reaches everything from any start node
        network = build_triangle()
        assert network.is_connected()
        assert RoadNetwork().is_connected()

    def test_isolated_node_breaks_connectivity(self):
        network = build_triangle()
        network.add_node(42, 9.0, 9.0)
        assert not network.is_connected()


class TestDerivedGraphs:
    def test_subgraph_keeps_only_internal_edges(self):
        network = build_triangle()
        sub = network.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)
        assert sub.num_edges == 1

    def test_reversed_flips_every_edge(self):
        network = build_triangle()
        reverse = network.reversed()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert reverse.has_edge(0, 2)
        assert reverse.num_edges == network.num_edges

    def test_copy_is_independent(self):
        network = build_triangle()
        duplicate = network.copy()
        duplicate.add_node(10, 9.0, 9.0)
        assert 10 not in network
        assert duplicate.num_nodes == network.num_nodes + 1

    def test_max_node_id(self):
        network = build_triangle()
        assert network.max_node_id() == 2
        with pytest.raises(GraphError):
            RoadNetwork().max_node_id()

    def test_node_distance_helper(self):
        network = build_triangle()
        a = network.node(0)
        b = network.node(2)
        assert a.distance_to(b) == pytest.approx(4.0)
        assert math.isclose(b.distance_to(a), 4.0)
