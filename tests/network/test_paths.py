"""Tests for path objects and validation."""

import pytest

from repro.exceptions import GraphError
from repro.network import Path, RoadNetwork, validate_path


@pytest.fixture()
def line_network():
    network = RoadNetwork()
    for node_id in range(4):
        network.add_node(node_id, float(node_id), 0.0)
    network.add_undirected_edge(0, 1, 1.0)
    network.add_undirected_edge(1, 2, 2.0)
    network.add_undirected_edge(2, 3, 3.0)
    return network


class TestPath:
    def test_from_nodes_sums_costs(self, line_network):
        path = Path.from_nodes(line_network, [0, 1, 2, 3])
        assert path.cost == pytest.approx(6.0)
        assert path.source == 0
        assert path.target == 3
        assert path.num_edges == 3
        assert len(path) == 4

    def test_edges_listing(self, line_network):
        path = Path.from_nodes(line_network, [0, 1, 2])
        assert path.edges() == [(0, 1), (1, 2)]

    def test_single_node_path(self, line_network):
        path = Path.from_nodes(line_network, [2])
        assert path.cost == 0.0
        assert path.num_edges == 0

    def test_empty_path_rejected(self, line_network):
        with pytest.raises(GraphError):
            Path.from_nodes(line_network, [])

    def test_invalid_edge_rejected(self, line_network):
        with pytest.raises(GraphError):
            Path.from_nodes(line_network, [0, 2])


class TestValidatePath:
    def test_valid_path_passes(self, line_network):
        path = Path.from_nodes(line_network, [0, 1, 2])
        validate_path(line_network, path)

    def test_wrong_cost_rejected(self, line_network):
        path = Path((0, 1, 2), 100.0)
        with pytest.raises(GraphError):
            validate_path(line_network, path)

    def test_nonexistent_edge_rejected(self, line_network):
        path = Path((0, 3), 1.0)
        with pytest.raises(GraphError):
            validate_path(line_network, path)
