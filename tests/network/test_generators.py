"""Tests for the synthetic road-network generators."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network import grid_network, random_planar_network


class TestGridNetwork:
    def test_node_and_edge_counts(self):
        network = grid_network(4, 5, jitter=0.0, seed=0)
        assert network.num_nodes == 20
        # 4*(5-1) horizontal + 5*(4-1) vertical undirected edges, two directions each
        assert network.num_edges == 2 * (4 * 4 + 5 * 3)

    def test_grid_is_connected(self):
        network = grid_network(5, 5, seed=2)
        assert network.is_connected()

    def test_dropping_edges_keeps_connectivity(self):
        network = grid_network(6, 6, drop_fraction=0.3, seed=3)
        assert network.is_connected()

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid_network(0, 3)

    def test_cannot_drop_all_edges(self):
        with pytest.raises(GraphError):
            grid_network(3, 3, drop_fraction=1.0)

    def test_weights_match_euclidean_length(self):
        network = grid_network(3, 3, jitter=0.1, seed=4)
        for edge in network.edges():
            assert edge.weight == pytest.approx(
                network.euclidean_distance(edge.source, edge.target), abs=1e-9
            )


class TestRandomPlanarNetwork:
    def test_size_and_sparsity(self):
        network = random_planar_network(500, edge_factor=1.15, seed=1)
        assert network.num_nodes == 500
        undirected = network.num_edges // 2
        assert undirected == pytest.approx(1.15 * 500, abs=3)

    def test_connected(self):
        network = random_planar_network(300, seed=2)
        assert network.is_connected()

    def test_deterministic_for_same_seed(self):
        first = random_planar_network(150, seed=9)
        second = random_planar_network(150, seed=9)
        assert first.num_edges == second.num_edges
        assert {(e.source, e.target) for e in first.edges()} == {
            (e.source, e.target) for e in second.edges()
        }

    def test_different_seeds_differ(self):
        first = random_planar_network(150, seed=1)
        second = random_planar_network(150, seed=2)
        coordinates_first = [(n.x, n.y) for n in first.nodes()]
        coordinates_second = [(n.x, n.y) for n in second.nodes()]
        assert coordinates_first != coordinates_second

    def test_weights_at_least_euclidean(self):
        """Edge weights are Euclidean length times a detour factor >= 1, so the
        Euclidean heuristic stays admissible."""
        network = random_planar_network(200, seed=3)
        for edge in network.edges():
            euclid = network.euclidean_distance(edge.source, edge.target)
            assert edge.weight >= euclid - 1e-9

    def test_rejects_too_few_nodes(self):
        with pytest.raises(GraphError):
            random_planar_network(2)

    def test_rejects_sub_tree_edge_factor(self):
        with pytest.raises(GraphError):
            random_planar_network(100, edge_factor=0.5)

    def test_coordinates_within_extent(self):
        network = random_planar_network(100, extent=50.0, seed=6)
        min_x, min_y, max_x, max_y = network.bounding_box()
        assert 0.0 <= min_x <= max_x <= 50.0
        assert 0.0 <= min_y <= max_y <= 50.0
