"""Tests for the array-backed (CSR) graph core and its compiled cache."""

import math

import pytest

from repro.exceptions import GraphError, NoPathError
from repro.network import (
    CsrGraph,
    RoadNetwork,
    SearchStats,
    bidirectional_dijkstra,
    build_csr,
    csr_for,
    dijkstra_tree,
    shortest_path,
)


def build_diamond():
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (1, 1), (1, -1), (2, 0)]):
        network.add_node(node_id, float(x), float(y))
    network.add_undirected_edge(0, 1, 1.0)
    network.add_undirected_edge(1, 3, 1.0)
    network.add_undirected_edge(0, 2, 2.0)
    network.add_undirected_edge(2, 3, 2.0)
    network.add_undirected_edge(0, 3, 5.0)
    return network


class TestCsrCompilation:
    def test_counts_match_network(self, medium_network):
        csr = build_csr(medium_network)
        assert csr.num_nodes == medium_network.num_nodes
        assert csr.num_edges == medium_network.num_edges

    def test_id_mapping_roundtrip(self, medium_network):
        csr = build_csr(medium_network)
        for node_id in medium_network.node_ids():
            assert csr.original_id(csr.dense_id(node_id)) == node_id
            assert node_id in csr

    def test_unknown_node_rejected(self):
        csr = build_csr(build_diamond())
        with pytest.raises(GraphError):
            csr.dense_id(999)
        assert 999 not in csr

    def test_adjacency_preserves_weights(self):
        network = build_diamond()
        csr = build_csr(network)
        adjacency = csr.adjacency()
        for node_id in network.node_ids():
            dense = csr.dense_id(node_id)
            expected = sorted(
                (weight, csr.dense_id(neighbor))
                for neighbor, weight in network.neighbors(node_id)
            )
            assert sorted(adjacency[dense]) == expected

    def test_reverse_transposes_edges(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        network.add_edge(0, 1, 2.5)
        csr = build_csr(network)
        reverse = csr.reverse()
        assert reverse.num_edges == 1
        dense_one = csr.dense_id(1)
        dense_zero = csr.dense_id(0)
        assert reverse.adjacency()[dense_one] == ((2.5, dense_zero),)
        assert reverse.adjacency()[dense_zero] == ()
        # the transpose of the transpose is the original object
        assert reverse.reverse() is csr

    def test_cache_reuses_compiled_graph(self):
        network = build_diamond()
        first = csr_for(network)
        assert csr_for(network) is first

    def test_cache_invalidated_by_growth(self):
        network = build_diamond()
        first = csr_for(network)
        network.add_node(10, 5.0, 5.0)
        network.add_edge(3, 10, 1.0)
        second = csr_for(network)
        assert second is not first
        assert second.num_nodes == network.num_nodes
        assert second.num_edges == network.num_edges


class TestFastPathSemantics:
    def test_unknown_target_rejected_up_front(self):
        """An unknown target id fails fast instead of degrading into a
        full-graph scan that can never settle it."""
        network = build_diamond()
        with pytest.raises(GraphError):
            dijkstra_tree(network, 0, targets=[999])

    def test_unreachable_target_still_scans_component(self):
        network = build_diamond()
        network.add_node(42, 9.0, 9.0)  # exists but disconnected
        tree = dijkstra_tree(network, 0, targets=[42])
        assert not tree.has_path_to(42)
        with pytest.raises(NoPathError):
            tree.distance_to(42)

    def test_empty_target_set_stops_immediately(self):
        network = build_diamond()
        stats = SearchStats()
        tree = dijkstra_tree(network, 0, targets=[], stats=stats)
        assert stats.settled_nodes == 1
        assert tree.distance_to(0) == 0.0

    def test_parallel_edges_keep_cheapest(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 1.0, 0.0)
        network.add_edge(0, 1, 5.0)
        network.add_edge(0, 1, 2.0)  # parallel, cheaper
        assert shortest_path(network, 0, 1).cost == pytest.approx(2.0)

    def test_bidirectional_stats_parity(self, medium_network):
        """Bidirectional runs record the same statistics fields as
        :func:`dijkstra_tree`: settles, relaxations and the visit order."""
        uni_stats = SearchStats()
        bi_stats = SearchStats()
        node_ids = list(medium_network.node_ids())
        source, target = node_ids[0], node_ids[-1]
        uni = shortest_path(medium_network, source, target, stats=uni_stats)
        both = bidirectional_dijkstra(medium_network, source, target, stats=bi_stats)
        assert both.cost == pytest.approx(uni.cost)
        assert bi_stats.settled_nodes > 0
        assert bi_stats.relaxed_edges > 0
        assert len(bi_stats.visited_nodes) == bi_stats.settled_nodes
        # both endpoints are settled first, one per direction
        assert set(bi_stats.visited_nodes[:2]) == {source, target}
        # the bidirectional search should not do more work than it reports:
        # every visited node is a real network node
        assert all(node in medium_network for node in bi_stats.visited_nodes)

    def test_bidirectional_stats_on_diamond(self):
        network = build_diamond()
        stats = SearchStats()
        path = bidirectional_dijkstra(network, 0, 3, stats=stats)
        assert path.cost == pytest.approx(2.0)
        assert stats.settled_nodes >= 2
        assert stats.relaxed_edges >= 2
        assert stats.visited_nodes


class TestCsrGraphDirect:
    def test_from_network_empty_adjacency(self):
        network = RoadNetwork()
        network.add_node(7, 0.0, 0.0)
        csr = CsrGraph.from_network(network)
        assert csr.num_nodes == 1
        assert csr.num_edges == 0
        assert csr.adjacency() == [()]
