"""Tests for the sharded/pipelined side of the query engine."""

import pytest

from repro.bench.workloads import generate_workload
from repro.engine import QueryEngine
from repro.exceptions import SchemeError


class TestWorkerSharding:
    def test_invalid_worker_count_rejected(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        with pytest.raises(SchemeError):
            engine.run_batch(query_pairs, workers=0)

    def test_workers_capped_at_batch_size(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:3], verify_costs=False, workers=10)
        assert batch.workers == 3
        assert batch.num_queries == 3

    def test_serial_batch_reports_one_worker(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:2], verify_costs=False)
        assert batch.workers == 1

    def test_results_preserve_input_order(self, ci_scheme, small_network):
        pairs = generate_workload(small_network, count=10, seed=51)
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(pairs, verify_costs=True, workers=3)
        assert batch.pairs == pairs
        assert batch.all_costs_correct
        for pair, result in zip(batch.pairs, batch.results):
            assert result.path.cost == pytest.approx(batch.true_costs[pair], rel=1e-4)

    def test_parallel_batch_verifies_views_and_costs(self, pi_scheme, query_pairs):
        engine = QueryEngine(pi_scheme)
        batch = engine.run_batch(query_pairs, workers=2)
        assert batch.indistinguishable
        assert batch.all_costs_correct

    def test_worker_caches_persist_across_batches(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        first = engine.run_batch(query_pairs, verify_costs=False, workers=2)
        second = engine.run_batch(query_pairs, verify_costs=False, workers=2)
        assert first.cache_hits + first.cache_misses > 0
        # the reused worker caches already hold every decoded page and graph
        assert second.cache_misses == 0
        assert second.cache_hits > 0

    def test_schemes_without_prepare_split_run_pipelined(self, landmark_scheme, query_pairs):
        # LM uses the default prepare_query (no retrieve/solve split); the
        # pipelined sharded engine must still execute it correctly
        engine = QueryEngine(landmark_scheme)
        batch = engine.run_batch(query_pairs[:4], verify_costs=False, workers=2)
        assert batch.num_queries == 4
        assert batch.indistinguishable


class TestShardedEngine:
    """``QueryEngine(shards=S)``: worker contexts own per-shard connections."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_store_matches_unsharded(self, ci_scheme, query_pairs, shards):
        plain = QueryEngine(ci_scheme).run_batch(query_pairs, verify_costs=False)
        sharded = QueryEngine(ci_scheme, shards=shards).run_batch(
            query_pairs, verify_costs=False, workers=2
        )
        assert sharded.shards == shards
        for plain_result, sharded_result in zip(plain.results, sharded.results):
            assert plain_result.path.nodes == sharded_result.path.nodes
            assert plain_result.adversary_view == sharded_result.adversary_view
            assert (
                plain_result.trace.private_page_requests()
                == sharded_result.trace.private_page_requests()
            )

    def test_worker_contexts_own_distinct_shard_connections(self, ci_scheme, query_pairs):
        from repro.pir import ShardedPirSimulator

        engine = QueryEngine(ci_scheme, shards=3)
        engine.run_batch(query_pairs, verify_costs=False, workers=2)
        contexts = engine._contexts
        assert len(contexts) >= 2
        simulators = [context.pir for context in contexts]
        assert all(isinstance(pir, ShardedPirSimulator) for pir in simulators)
        assert len({id(pir) for pir in simulators}) == len(simulators)
        # both contexts actually served pages through their own connections
        assert all(sum(pir.shard_load()) > 0 for pir in simulators[:2])

    def test_invalid_shard_count_rejected(self, ci_scheme):
        with pytest.raises(SchemeError):
            QueryEngine(ci_scheme, shards=0)


class TestProcessWorkers:
    """``worker_mode="process"``: CPU-bound solves run on a process pool."""

    def test_process_mode_matches_thread_mode(self, ci_scheme, query_pairs):
        thread = QueryEngine(ci_scheme).run_batch(query_pairs, workers=2)
        process = QueryEngine(ci_scheme).run_batch(
            query_pairs, workers=2, worker_mode="process"
        )
        assert process.worker_mode == "process"
        assert process.all_costs_correct and process.indistinguishable
        for thread_result, process_result in zip(thread.results, process.results):
            assert thread_result.path.nodes == process_result.path.nodes
            assert thread_result.path.cost == pytest.approx(
                process_result.path.cost, rel=1e-12
            )
            assert thread_result.adversary_view == process_result.adversary_view

    def test_process_mode_handles_schemes_without_remote_split(
        self, landmark_scheme, query_pairs
    ):
        # LM has no RemoteSolve; its eager prepared queries solve in-process
        engine = QueryEngine(landmark_scheme)
        batch = engine.run_batch(query_pairs[:4], verify_costs=False,
                                 workers=2, worker_mode="process")
        assert batch.num_queries == 4
        assert batch.indistinguishable

    def test_remote_solve_is_picklable(self, ci_scheme, pi_scheme, query_pairs):
        import pickle

        for scheme in (ci_scheme, pi_scheme):
            prepared = scheme.prepare_query(*query_pairs[0])
            assert prepared.remote is not None
            remote = pickle.loads(pickle.dumps(prepared.remote))
            assert remote.cache_key is not None
            path, solve_seconds = remote.function(*remote.args)
            assert path.nodes == prepared.solve().path.nodes
            assert solve_seconds >= 0.0

    def test_process_mode_hotspot_workload_matches_serial(self, ci_scheme, small_network):
        # repeated pairs exercise the engine's in-flight solve dedup
        from repro.bench.workloads import generate_hotspot_workload

        pairs = generate_hotspot_workload(
            small_network, count=12, seed=83, hot_pairs=3, hot_fraction=0.75
        )
        serial = QueryEngine(ci_scheme).run_batch(pairs, workers=1, pipeline=False)
        process = QueryEngine(ci_scheme).run_batch(pairs, workers=2, worker_mode="process")
        for serial_result, process_result in zip(serial.results, process.results):
            assert serial_result.path.nodes == process_result.path.nodes
            assert serial_result.adversary_view == process_result.adversary_view
            assert (
                serial_result.trace.private_page_requests()
                == process_result.trace.private_page_requests()
            )

    def test_process_mode_reuses_cached_assemblies(self, ci_scheme, query_pairs):
        # a warm context cache (from a thread-mode batch) short-circuits the
        # process pool: the repeated batch solves via in-process cache hits
        engine = QueryEngine(ci_scheme)
        engine.run_batch(query_pairs, verify_costs=False)
        warm = engine.run_batch(query_pairs, verify_costs=False, worker_mode="process")
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert warm.indistinguishable

    def test_finish_requires_remote_split(self, landmark_scheme, query_pairs):
        prepared = landmark_scheme.prepare_query(*query_pairs[0])
        assert prepared.remote is None
        with pytest.raises(SchemeError):
            prepared.finish(None, 0.0)


class TestPreparedQueries:
    def test_prepare_then_solve_matches_query(self, ci_scheme, query_pairs):
        source, target = query_pairs[0]
        prepared = ci_scheme.prepare_query(source, target)
        from_prepared = prepared.solve()
        direct = ci_scheme.query(source, target)
        assert from_prepared.path.nodes == direct.path.nodes
        assert from_prepared.adversary_view == direct.adversary_view

    def test_default_prepare_runs_query_eagerly(self, landmark_scheme, query_pairs):
        source, target = query_pairs[0]
        prepared = landmark_scheme.prepare_query(source, target)
        result = prepared.solve()
        assert result.path.cost > 0
