"""Tests for the sharded/pipelined side of the query engine."""

import pytest

from repro.bench.workloads import generate_workload
from repro.engine import QueryEngine
from repro.exceptions import SchemeError


class TestWorkerSharding:
    def test_invalid_worker_count_rejected(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        with pytest.raises(SchemeError):
            engine.run_batch(query_pairs, workers=0)

    def test_workers_capped_at_batch_size(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:3], verify_costs=False, workers=10)
        assert batch.workers == 3
        assert batch.num_queries == 3

    def test_serial_batch_reports_one_worker(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:2], verify_costs=False)
        assert batch.workers == 1

    def test_results_preserve_input_order(self, ci_scheme, small_network):
        pairs = generate_workload(small_network, count=10, seed=51)
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(pairs, verify_costs=True, workers=3)
        assert batch.pairs == pairs
        assert batch.all_costs_correct
        for pair, result in zip(batch.pairs, batch.results):
            assert result.path.cost == pytest.approx(batch.true_costs[pair], rel=1e-4)

    def test_parallel_batch_verifies_views_and_costs(self, pi_scheme, query_pairs):
        engine = QueryEngine(pi_scheme)
        batch = engine.run_batch(query_pairs, workers=2)
        assert batch.indistinguishable
        assert batch.all_costs_correct

    def test_worker_caches_persist_across_batches(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        first = engine.run_batch(query_pairs, verify_costs=False, workers=2)
        second = engine.run_batch(query_pairs, verify_costs=False, workers=2)
        assert first.cache_hits + first.cache_misses > 0
        # the reused worker caches already hold every decoded page and graph
        assert second.cache_misses == 0
        assert second.cache_hits > 0

    def test_schemes_without_prepare_split_run_pipelined(self, landmark_scheme, query_pairs):
        # LM uses the default prepare_query (no retrieve/solve split); the
        # pipelined sharded engine must still execute it correctly
        engine = QueryEngine(landmark_scheme)
        batch = engine.run_batch(query_pairs[:4], verify_costs=False, workers=2)
        assert batch.num_queries == 4
        assert batch.indistinguishable


class TestPreparedQueries:
    def test_prepare_then_solve_matches_query(self, ci_scheme, query_pairs):
        source, target = query_pairs[0]
        prepared = ci_scheme.prepare_query(source, target)
        from_prepared = prepared.solve()
        direct = ci_scheme.query(source, target)
        assert from_prepared.path.nodes == direct.path.nodes
        assert from_prepared.adversary_view == direct.adversary_view

    def test_default_prepare_runs_query_eagerly(self, landmark_scheme, query_pairs):
        source, target = query_pairs[0]
        prepared = landmark_scheme.prepare_query(source, target)
        result = prepared.solve()
        assert result.path.cost > 0
