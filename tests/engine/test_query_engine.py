"""Tests for the batched query engine and its LRU page cache."""

import threading

import pytest

from repro.engine import BatchResult, LruCache, NullCache, QueryEngine
from repro.exceptions import SchemeError


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_counts(self):
        cache = LruCache(4)
        assert cache.get("missing") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_eviction_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh "a"; "b" is now the oldest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)    # refresh, not insert: nothing evicted
        cache.put("c", 3)     # evicts "b" (oldest), not "a"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_clear(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_get_put_stays_consistent(self):
        """The pipelined worker pattern: one thread fills the cache while
        another reads it.  The cache must never exceed capacity, never lose
        accounting, and never raise from the concurrent dict mutation."""
        cache = LruCache(32)
        keys = [f"page-{index}" for index in range(100)]
        errors = []
        barrier = threading.Barrier(4)

        def writer(offset):
            try:
                barrier.wait()
                for _ in range(5):
                    for index, key in enumerate(keys):
                        cache.put(key, index + offset)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                barrier.wait()
                for _ in range(5):
                    for key in keys:
                        value = cache.get(key)
                        assert value is None or isinstance(value, int)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(0,)),
            threading.Thread(target=writer, args=(1000,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= cache.capacity
        assert cache.hits + cache.misses == 2 * 5 * len(keys)


class TestNullCache:
    def test_every_get_misses(self):
        cache = NullCache()
        cache.put("a", 1)
        assert cache.get("a") is None
        assert cache.misses == 1
        assert cache.hits == 0
        assert cache.hit_rate == 0.0
        assert len(cache) == 0
        assert "a" not in cache
        cache.clear()


class TestQueryEngine:
    def test_single_query_matches_scheme(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        source, target = query_pairs[0]
        engine_result = engine.execute(source, target)
        direct_result = ci_scheme.query(source, target)
        assert engine_result.path.cost == pytest.approx(direct_result.path.cost)
        assert engine_result.adversary_view == direct_result.adversary_view

    def test_batch_verifies_costs_and_views(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs)
        assert isinstance(batch, BatchResult)
        assert batch.num_queries == len(query_pairs)
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch.true_costs is not None
        for pair, result in zip(batch.pairs, batch.results):
            assert result.path.cost == pytest.approx(batch.true_costs[pair], rel=1e-4)

    def test_batch_shares_decoded_pages(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        first = engine.run_batch(query_pairs, verify_costs=False)
        second = engine.run_batch(query_pairs, verify_costs=False)
        # the header alone guarantees hits from the second query onward,
        # and the repeated batch should be served almost entirely from cache
        assert first.cache_hits > 0
        assert second.cache_hits > first.cache_hits or second.cache_misses == 0
        assert second.cache_misses <= first.cache_misses

    def test_batch_without_verification_skips_truth(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:2], verify_costs=False)
        assert batch.true_costs is None
        assert batch.all_costs_correct  # vacuously true

    def test_empty_batch_returns_empty_result(self, ci_scheme):
        """Regression: ``run_batch([])`` used to crash — ``min(workers, 0)``
        produced ``ThreadPoolExecutor(max_workers=0)`` → ``ValueError``."""
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch([])
        assert isinstance(batch, BatchResult)
        assert batch.num_queries == 0
        assert batch.workers == 0
        assert batch.results == []
        assert batch.pairs == []
        assert batch.true_costs == {}
        assert batch.all_costs_correct
        assert batch.indistinguishable
        assert batch.queries_per_second == 0.0
        assert batch.mean_response_s == 0.0

    def test_empty_batch_without_verification(self, ci_scheme):
        batch = QueryEngine(ci_scheme).run_batch([], verify_costs=False, workers=4)
        assert batch.num_queries == 0
        assert batch.true_costs is None

    def test_disabled_cache_counts_misses_only(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme, cache_entries=0)
        first = engine.run_batch(query_pairs, verify_costs=False)
        second = engine.run_batch(query_pairs, verify_costs=False)
        assert first.cache_hits == 0
        assert second.cache_hits == 0  # nothing is ever retained
        assert second.cache_misses > 0
        assert second.all_costs_correct

    def test_disabled_cache_matches_cached_results(self, ci_scheme, query_pairs):
        cached = QueryEngine(ci_scheme).run_batch(query_pairs, verify_costs=False)
        uncached = QueryEngine(ci_scheme, cache_entries=0).run_batch(
            query_pairs, verify_costs=False
        )
        for with_cache, without_cache in zip(cached.results, uncached.results):
            assert with_cache.path.nodes == without_cache.path.nodes
            assert with_cache.adversary_view == without_cache.adversary_view

    def test_negative_cache_entries_rejected(self, ci_scheme):
        with pytest.raises(SchemeError):
            QueryEngine(ci_scheme, cache_entries=-1)

    def test_invalid_worker_mode_rejected(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        with pytest.raises(SchemeError):
            engine.run_batch(query_pairs, worker_mode="greenlet")

    def test_throughput_metrics(self, ci_scheme, query_pairs):
        engine = QueryEngine(ci_scheme)
        batch = engine.run_batch(query_pairs[:3], verify_costs=False)
        assert batch.wall_seconds > 0.0
        assert batch.queries_per_second > 0.0
        assert 0.0 <= batch.cache_hit_rate <= 1.0

    def test_engine_works_across_schemes(self, pi_scheme, query_pairs):
        engine = QueryEngine(pi_scheme)
        batch = engine.run_batch(query_pairs[:4])
        assert batch.all_costs_correct
        assert batch.indistinguishable
