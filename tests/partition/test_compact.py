"""Tests for the compact region-payload codec and the codec comparison report."""

import pytest

from repro.exceptions import StorageError
from repro.network import grid_network
from repro.partition import (
    CompactCodecConfig,
    compare_region_codecs,
    decode_region_payload,
    decode_region_payload_compact,
    encode_region_payload,
    encode_region_payload_compact,
    packed_kdtree_partition,
)


@pytest.fixture(scope="module")
def network():
    return grid_network(7, 7, jitter=0.1, seed=4)


@pytest.fixture(scope="module")
def node_ids(network):
    return sorted(network.node_ids())[:20]


class TestCompactCodecRoundtrip:
    def test_node_set_preserved(self, network, node_ids):
        data = encode_region_payload_compact(network, node_ids)
        decoded = decode_region_payload_compact(data)
        assert set(decoded.keys()) == set(node_ids)

    def test_coordinates_within_quantisation_error(self, network, node_ids):
        decoded = decode_region_payload_compact(
            encode_region_payload_compact(network, node_ids)
        )
        xs = [network.node(node_id).x for node_id in node_ids]
        ys = [network.node(node_id).y for node_id in node_ids]
        span_x = max(xs) - min(xs)
        span_y = max(ys) - min(ys)
        tolerance_x = span_x / 65535 + 1e-9
        tolerance_y = span_y / 65535 + 1e-9
        for node_id in node_ids:
            x, y, _ = decoded[node_id]
            node = network.node(node_id)
            assert abs(x - node.x) <= tolerance_x
            assert abs(y - node.y) <= tolerance_y

    def test_adjacency_preserved_with_weight_tolerance(self, network, node_ids):
        config = CompactCodecConfig(weight_resolution=1e-3)
        decoded = decode_region_payload_compact(
            encode_region_payload_compact(network, node_ids, config)
        )
        for node_id in node_ids:
            _, _, adjacency = decoded[node_id]
            expected = network.neighbors(node_id)
            assert [neighbor for neighbor, _ in adjacency] == [n for n, _ in expected]
            for (_, weight), (_, true_weight) in zip(adjacency, expected):
                assert abs(weight - true_weight) <= 1e-3

    def test_compact_is_smaller_than_standard(self, network, node_ids):
        standard = encode_region_payload(network, node_ids)
        compact = encode_region_payload_compact(network, node_ids)
        assert len(compact) < len(standard)

    def test_single_node_region(self, network):
        only = [next(iter(network.node_ids()))]
        decoded = decode_region_payload_compact(
            encode_region_payload_compact(network, only)
        )
        assert set(decoded.keys()) == set(only)

    def test_truncated_payload_rejected(self):
        with pytest.raises(StorageError):
            decode_region_payload_compact(b"short")

    def test_invalid_config(self):
        with pytest.raises(StorageError):
            CompactCodecConfig(weight_resolution=-1.0)

    def test_matches_standard_decoder_structure(self, network, node_ids):
        standard = decode_region_payload(encode_region_payload(network, node_ids))
        compact = decode_region_payload_compact(
            encode_region_payload_compact(network, node_ids)
        )
        assert set(standard.keys()) == set(compact.keys())
        for node_id in standard:
            assert len(standard[node_id][2]) == len(compact[node_id][2])


class TestCompareRegionCodecs:
    def test_report_shape_and_savings(self, network):
        partitioning = packed_kdtree_partition(network, 256 - 8)
        report = compare_region_codecs(network, partitioning, page_size=256)
        assert report.num_regions == partitioning.num_regions
        assert report.compact_bytes < report.standard_bytes
        assert 0.0 < report.byte_ratio < 1.0
        assert 0.0 < report.page_ratio <= 1.0
        assert report.compact_pages <= report.standard_pages

    def test_invalid_page_size(self, network):
        partitioning = packed_kdtree_partition(network, 256 - 8)
        with pytest.raises(StorageError):
            compare_region_codecs(network, partitioning, page_size=0)
