"""Tests for the plain KD-tree partitioner."""

import pytest

from repro.exceptions import PartitionError
from repro.network import RoadNetwork, random_planar_network
from repro.partition import node_record_size, plain_kdtree_partition


class TestPlainKdTree:
    def test_every_region_fits_the_capacity(self, medium_network):
        capacity = 248
        partitioning = plain_kdtree_partition(medium_network, capacity)
        for region in partitioning.regions():
            size = sum(node_record_size(medium_network, n) for n in region.node_ids)
            assert size <= capacity

    def test_all_nodes_covered_exactly_once(self, medium_network):
        partitioning = plain_kdtree_partition(medium_network, 248)
        assigned = [n for region in partitioning.regions() for n in region.node_ids]
        assert sorted(assigned) == sorted(medium_network.node_ids())

    def test_split_tree_consistent_with_assignment(self, medium_network):
        partitioning = plain_kdtree_partition(medium_network, 248)
        partitioning.validate()

    def test_single_region_when_everything_fits(self):
        network = random_planar_network(10, seed=1)
        partitioning = plain_kdtree_partition(network, 10_000)
        assert partitioning.num_regions == 1

    def test_capacity_smaller_than_a_record_rejected(self, medium_network):
        with pytest.raises(PartitionError):
            plain_kdtree_partition(medium_network, 8)

    def test_empty_network_rejected(self):
        with pytest.raises(PartitionError):
            plain_kdtree_partition(RoadNetwork(), 100)

    def test_handles_duplicate_coordinates_on_one_axis(self):
        """Nodes aligned on a vertical line force splits on the other axis."""
        network = RoadNetwork()
        for index in range(20):
            network.add_node(index, 1.0, float(index))
        for index in range(19):
            network.add_undirected_edge(index, index + 1, 1.0)
        partitioning = plain_kdtree_partition(network, 64)
        assert partitioning.num_regions >= 2
        partitioning.validate()

    def test_region_count_scales_with_capacity(self, medium_network):
        small_pages = plain_kdtree_partition(medium_network, 200).num_regions
        large_pages = plain_kdtree_partition(medium_network, 800).num_regions
        assert small_pages > large_pages
