"""Tests for the packed KD-tree partitioner (Section 5.6)."""

import pytest

from repro.exceptions import PartitionError
from repro.network import RoadNetwork, random_planar_network
from repro.partition import (
    node_record_size,
    packed_kdtree_partition,
    plain_kdtree_partition,
)


def region_payload_size(network, region):
    return sum(node_record_size(network, node_id) for node_id in region.node_ids)


class TestPackedKdTree:
    def test_every_region_fits_the_capacity(self, medium_network):
        capacity = 248
        partitioning = packed_kdtree_partition(medium_network, capacity)
        for region in partitioning.regions():
            assert region_payload_size(medium_network, region) <= capacity

    def test_all_nodes_covered(self, medium_network):
        partitioning = packed_kdtree_partition(medium_network, 248)
        assigned = [n for region in partitioning.regions() for n in region.node_ids]
        assert sorted(assigned) == sorted(medium_network.node_ids())

    def test_split_tree_consistent_with_assignment(self, medium_network):
        partitioning = packed_kdtree_partition(medium_network, 248)
        partitioning.validate()

    def test_utilization_beats_plain_partitioning(self, medium_network):
        """The headline claim of Section 5.6: packed pages are nearly full.

        The guarantee is at most one (maximum-size) record of waste per page,
        so the comparison uses a page capacity several times larger than a
        record, as in the paper's setting.
        """
        capacity = 504
        packed = packed_kdtree_partition(medium_network, capacity)
        plain = plain_kdtree_partition(medium_network, capacity)

        def utilization(partitioning):
            total = sum(
                region_payload_size(medium_network, region) for region in partitioning.regions()
            )
            return total / (partitioning.num_regions * capacity)

        assert utilization(packed) > utilization(plain)
        assert utilization(packed) > 0.80

    def test_utilization_exceeds_95_percent_at_paper_page_size(self):
        network = random_planar_network(1600, seed=5)
        capacity = 4088
        partitioning = packed_kdtree_partition(network, capacity)
        total = sum(region_payload_size(network, region) for region in partitioning.regions())
        assert total / (partitioning.num_regions * capacity) > 0.9

    def test_fewer_regions_than_plain(self, medium_network):
        capacity = 504
        packed = packed_kdtree_partition(medium_network, capacity)
        plain = plain_kdtree_partition(medium_network, capacity)
        assert packed.num_regions <= plain.num_regions

    def test_single_region_when_everything_fits(self):
        network = random_planar_network(10, seed=1)
        partitioning = packed_kdtree_partition(network, 10_000)
        assert partitioning.num_regions == 1

    def test_capacity_without_leeway_rejected(self, medium_network):
        largest = max(node_record_size(medium_network, n) for n in medium_network.node_ids())
        with pytest.raises(PartitionError):
            packed_kdtree_partition(medium_network, largest)

    def test_empty_network_rejected(self):
        with pytest.raises(PartitionError):
            packed_kdtree_partition(RoadNetwork(), 100)

    def test_clustered_capacity_reduces_region_count(self, medium_network):
        single = packed_kdtree_partition(medium_network, 248)
        clustered = packed_kdtree_partition(medium_network, 2 * 248)
        assert clustered.num_regions < single.num_regions
