"""Tests for border-node computation."""

import math

import pytest

from repro.network import shortest_path_cost
from repro.partition import compute_border_nodes


class TestBorderNodes:
    def test_border_nodes_only_on_inter_region_edges(self, small_network, partitioning, border_index):
        for border_id, (node_a, node_b) in border_index.original_edge_of_border.items():
            assert partitioning.region_of_node(node_a) != partitioning.region_of_node(node_b)
            assert border_index.is_border(border_id)

    def test_every_crossing_edge_has_exactly_one_border_node(
        self, small_network, partitioning, border_index
    ):
        crossing = set()
        for edge in small_network.edges():
            if partitioning.region_of_node(edge.source) != partitioning.region_of_node(edge.target):
                crossing.add((min(edge.source, edge.target), max(edge.source, edge.target)))
        assert len(crossing) == border_index.num_border_nodes

    def test_border_nodes_belong_to_both_adjacent_regions(self, partitioning, border_index):
        for border_id, (region_a, region_b) in border_index.regions_of_border.items():
            assert border_id in border_index.borders_of_region[region_a]
            assert border_id in border_index.borders_of_region[region_b]
            assert region_a != region_b

    def test_augmented_network_preserves_shortest_path_costs(
        self, small_network, border_index, rng
    ):
        """Subdividing crossing edges must not change any shortest-path cost."""
        node_ids = list(small_network.node_ids())
        for _ in range(6):
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            original = shortest_path_cost(small_network, source, target)
            augmented = shortest_path_cost(border_index.augmented, source, target)
            assert math.isclose(original, augmented, rel_tol=1e-9, abs_tol=1e-9)

    def test_augmented_network_contains_all_original_nodes(self, small_network, border_index):
        for node_id in small_network.node_ids():
            assert node_id in border_index.augmented

    def test_border_node_ids_do_not_collide_with_original_ids(self, small_network, border_index):
        max_original = small_network.max_node_id()
        for border_id in border_index.border_nodes():
            assert border_id > max_original

    def test_regions_of_node_helper(self, small_network, partitioning, border_index):
        some_original = next(iter(small_network.node_ids()))
        assert border_index.regions_of_node(partitioning, some_original) == (
            partitioning.region_of_node(some_original),
        )
        some_border = border_index.border_nodes()[0]
        regions = border_index.regions_of_node(partitioning, some_border)
        assert len(regions) == 2

    def test_every_region_with_neighbours_has_border_nodes(self, partitioning, border_index):
        """Every region of a connected network borders at least one other region."""
        if partitioning.num_regions > 1:
            empty = [r for r, borders in border_index.borders_of_region.items() if not borders]
            assert not empty
