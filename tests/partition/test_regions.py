"""Tests for regions, partitionings and the split tree."""

import pytest

from repro.exceptions import PartitionError
from repro.network import RoadNetwork
from repro.partition import LeafNode, Partitioning, Region, SplitNode


def tiny_network():
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    network.add_node(1, 1.0, 0.0)
    network.add_node(2, 5.0, 0.0)
    network.add_node(3, 6.0, 0.0)
    network.add_undirected_edge(0, 1, 1.0)
    network.add_undirected_edge(1, 2, 4.0)
    network.add_undirected_edge(2, 3, 1.0)
    return network


def tiny_partitioning():
    network = tiny_network()
    regions = [Region(0, (0, 1)), Region(1, (2, 3))]
    tree = SplitNode(0, 5.0, LeafNode(0), LeafNode(1))
    return network, Partitioning(network, regions, tree)


class TestPartitioning:
    def test_region_of_node(self):
        _, partitioning = tiny_partitioning()
        assert partitioning.region_of_node(0) == 0
        assert partitioning.region_of_node(3) == 1

    def test_region_of_point(self):
        _, partitioning = tiny_partitioning()
        assert partitioning.region_of_point(0.5, 0.0) == 0
        assert partitioning.region_of_point(5.5, 0.0) == 1
        # exactly at the split value goes right (strict less-than goes left)
        assert partitioning.region_of_point(5.0, 0.0) == 1

    def test_validate_passes_for_consistent_partitioning(self):
        _, partitioning = tiny_partitioning()
        partitioning.validate()

    def test_validate_detects_inconsistency(self):
        network = tiny_network()
        regions = [Region(0, (0, 2)), Region(1, (1, 3))]  # nodes swapped across the split
        tree = SplitNode(0, 5.0, LeafNode(0), LeafNode(1))
        partitioning = Partitioning(network, regions, tree)
        with pytest.raises(PartitionError):
            partitioning.validate()

    def test_duplicate_node_assignment_rejected(self):
        network = tiny_network()
        regions = [Region(0, (0, 1)), Region(1, (1, 2, 3))]
        tree = SplitNode(0, 5.0, LeafNode(0), LeafNode(1))
        with pytest.raises(PartitionError):
            Partitioning(network, regions, tree)

    def test_unassigned_node_rejected(self):
        network = tiny_network()
        regions = [Region(0, (0, 1))]
        with pytest.raises(PartitionError):
            Partitioning(network, regions, LeafNode(0))

    def test_unknown_region_lookup(self):
        _, partitioning = tiny_partitioning()
        with pytest.raises(PartitionError):
            partitioning.region(5)
        with pytest.raises(PartitionError):
            partitioning.region_of_node(99)

    def test_tree_splits_round_trip(self):
        _, partitioning = tiny_partitioning()
        records = partitioning.tree_splits()
        rebuilt = Partitioning.tree_from_splits(records)
        assert isinstance(rebuilt, SplitNode)
        assert rebuilt.value == 5.0
        assert isinstance(rebuilt.left, LeafNode)
        assert rebuilt.left.region_id == 0
        assert rebuilt.right.region_id == 1

    def test_empty_split_records_rejected(self):
        with pytest.raises(PartitionError):
            Partitioning.tree_from_splits([])

    def test_accessors(self):
        _, partitioning = tiny_partitioning()
        assert partitioning.num_regions == 2
        assert [region.region_id for region in partitioning.regions()] == [0, 1]
        assert list(partitioning.region_ids()) == [0, 1]
        assert partitioning.region(0).num_nodes == 2
