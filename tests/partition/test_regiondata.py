"""Tests for region-data record encoding."""

import pytest

from repro.network import random_planar_network
from repro.partition import (
    decode_region_payload,
    encode_node_record,
    encode_region_payload,
    merge_region_payloads,
    node_record_size,
)


@pytest.fixture(scope="module")
def network():
    return random_planar_network(60, seed=8)


class TestNodeRecords:
    def test_record_size_matches_encoding(self, network):
        for node_id in network.node_ids():
            assert node_record_size(network, node_id) == len(encode_node_record(network, node_id))

    def test_record_size_grows_with_degree(self, network):
        by_degree = sorted(network.node_ids(), key=network.out_degree)
        low = node_record_size(network, by_degree[0])
        high = node_record_size(network, by_degree[-1])
        assert high > low


class TestRegionPayload:
    def test_round_trip(self, network):
        node_ids = list(network.node_ids())[:10]
        payload = encode_region_payload(network, node_ids)
        decoded = decode_region_payload(payload)
        assert set(decoded) == set(node_ids)
        for node_id in node_ids:
            x, y, adjacency = decoded[node_id]
            node = network.node(node_id)
            assert x == pytest.approx(node.x, rel=1e-6)
            assert y == pytest.approx(node.y, rel=1e-6)
            assert len(adjacency) == network.out_degree(node_id)

    def test_round_trip_with_trailing_padding(self, network):
        node_ids = list(network.node_ids())[:5]
        payload = encode_region_payload(network, node_ids) + b"\x00" * 64
        decoded = decode_region_payload(payload)
        assert set(decoded) == set(node_ids)

    def test_empty_region(self, network):
        assert decode_region_payload(encode_region_payload(network, [])) == {}


class TestMergeRegionPayloads:
    def test_merge_builds_induced_subgraph(self, network):
        node_ids = list(network.node_ids())
        group_a = node_ids[:20]
        group_b = node_ids[20:40]
        payload_a = decode_region_payload(encode_region_payload(network, group_a))
        payload_b = decode_region_payload(encode_region_payload(network, group_b))
        merged = merge_region_payloads([payload_a, payload_b])
        kept = set(group_a) | set(group_b)
        assert set(merged.node_ids()) == kept
        # every edge in the merged graph exists in the original network and
        # stays within the merged node set
        for edge in merged.edges():
            assert edge.source in kept and edge.target in kept
            assert network.has_edge(edge.source, edge.target)

    def test_edges_to_missing_nodes_are_dropped(self, network):
        some_node = next(iter(network.node_ids()))
        payload = decode_region_payload(encode_region_payload(network, [some_node]))
        merged = merge_region_payloads([payload])
        assert merged.num_nodes == 1
        assert merged.num_edges == 0
