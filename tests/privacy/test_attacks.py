"""Tests for the volume and frequency inference attacks."""

import pytest

from repro.exceptions import ReproError
from repro.privacy import (
    frequency_attack,
    observation_from_counts,
    observations_from_results,
    rank_correlation,
    simulate_unpadded_volumes,
    volume_attack,
)


class TestObservationHelpers:
    def test_observation_is_canonical(self):
        first = observation_from_counts({"data": 3, "index": 1})
        second = observation_from_counts({"index": 1, "data": 3})
        assert first == second

    def test_padded_results_produce_identical_observations(self, ci_scheme, query_pairs):
        results = [ci_scheme.query(source, target) for source, target in query_pairs[:4]]
        observations = observations_from_results(results)
        assert len(set(observations)) == 1


class TestRankCorrelation:
    def test_perfect_positive(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert rank_correlation([1, 2, 3, 4], [9, 7, 5, 3]) == pytest.approx(-1.0)

    def test_constant_sequence_gives_none(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) is None

    def test_short_sequence_gives_none(self):
        assert rank_correlation([1], [2]) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            rank_correlation([1, 2], [1, 2, 3])

    def test_handles_ties(self):
        value = rank_correlation([1, 1, 2, 3], [5, 5, 6, 7])
        assert value == pytest.approx(1.0)


class TestVolumeAttack:
    def test_padded_scheme_leaks_nothing(self, ci_scheme, small_network, query_pairs):
        results = [ci_scheme.query(source, target) for source, target in query_pairs]
        distances = [
            small_network.euclidean_distance(source, target) for source, target in query_pairs
        ]
        report = volume_attack(observations_from_results(results), distances)
        assert not report.leaks_information
        assert report.distinct_observations == 1
        assert report.observation_entropy_bits == pytest.approx(0.0)
        assert report.distinguishable_pair_fraction == pytest.approx(0.0)
        assert report.distance_rank_correlation is None

    def test_unpadded_volumes_leak(
        self, small_network, partitioning, border_products, query_pairs
    ):
        queries = list(query_pairs)
        observations = simulate_unpadded_volumes(
            border_products, partitioning, small_network, queries
        )
        report = volume_attack(observations)
        assert report.num_queries == len(queries)
        assert report.leaks_information
        assert report.observation_entropy_bits > 0.0
        assert report.distinguishable_pair_fraction > 0.0

    def test_unpadded_volumes_correlate_with_distance(
        self, small_network, partitioning, border_products
    ):
        from repro.bench import generate_workload

        queries = generate_workload(small_network, count=40, seed=77)
        observations = simulate_unpadded_volumes(
            border_products, partitioning, small_network, queries
        )
        distances = [
            small_network.euclidean_distance(source, target) for source, target in queries
        ]
        report = volume_attack(observations, distances)
        assert report.distance_rank_correlation is not None
        assert report.distance_rank_correlation > 0.3

    def test_empty_observations_rejected(self):
        with pytest.raises(ReproError):
            volume_attack([])

    def test_distance_length_mismatch_rejected(self):
        observation = observation_from_counts({"data": 1})
        with pytest.raises(ReproError):
            volume_attack([observation], distances=[1.0, 2.0])


class TestFrequencyAttack:
    def test_distinct_frequencies_fully_reidentified(self):
        observed = {"a": 50, "b": 30, "c": 10}
        public = {"a": 500, "b": 300, "c": 100}
        report = frequency_attack(observed, public)
        assert report.identification_rate == pytest.approx(1.0)

    def test_shuffled_frequencies_identify_fewer_items(self):
        observed = {"a": 10, "b": 30, "c": 50}
        public = {"a": 500, "b": 300, "c": 100}
        report = frequency_attack(observed, public)
        assert report.correctly_identified == 1  # only the middle item lines up

    def test_item_set_mismatch_rejected(self):
        with pytest.raises(ReproError):
            frequency_attack({"a": 1}, {"b": 1})

    def test_empty_inputs(self):
        report = frequency_attack({}, {})
        assert report.identification_rate == 0.0
