"""Tests for the privacy model helpers (Theorem 1 as executable checks)."""

from repro.pir import AdversaryEvent, AdversaryView
from repro.privacy import adversary_transcript, check_indistinguishability, views_identical
from repro.schemes import QueryPlan, RoundSpec


def view(*file_names):
    events = [AdversaryEvent(1, "header", "")]
    events.extend(AdversaryEvent(2, "pir", name) for name in file_names)
    return AdversaryView(tuple(events))


class TestViewsIdentical:
    def test_empty_and_singleton(self):
        assert views_identical([])
        assert views_identical([view("data")])

    def test_identical_views(self):
        assert views_identical([view("data", "data"), view("data", "data")])

    def test_different_views(self):
        assert not views_identical([view("data"), view("index")])


class TestCheckIndistinguishability:
    class _FakeResult:
        def __init__(self, adversary_view):
            self.adversary_view = adversary_view

    def test_conforming_results(self):
        plan = QueryPlan.from_rounds(
            [RoundSpec(includes_header=True), RoundSpec(fetches=(("data", 2),))]
        )
        conforming = plan.expected_adversary_view()
        results = [self._FakeResult(conforming) for _ in range(3)]
        report = check_indistinguishability(results, plan)
        assert report.leaks_nothing
        assert report.num_queries == 3
        assert report.distinct_views == 1
        assert report.matches_plan

    def test_nonconforming_results(self):
        plan = QueryPlan.from_rounds([RoundSpec(fetches=(("data", 1),))])
        results = [self._FakeResult(view("data")), self._FakeResult(view("index"))]
        report = check_indistinguishability(results, plan)
        assert not report.all_identical
        assert report.distinct_views == 2
        assert not report.leaks_nothing

    def test_identical_but_off_plan(self):
        plan = QueryPlan.from_rounds([RoundSpec(fetches=(("data", 3),))])
        results = [self._FakeResult(view("data")), self._FakeResult(view("data"))]
        report = check_indistinguishability(results, plan)
        assert report.all_identical
        assert not report.matches_plan
        assert not report.leaks_nothing


class TestTranscript:
    def test_transcript_rendering(self):
        transcript = adversary_transcript(view("lookup", "data"))
        assert transcript == [(1, "header", ""), (2, "pir", "lookup"), (2, "pir", "data")]
