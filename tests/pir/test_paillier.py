"""Tests for the Paillier cryptosystem used by the computational PIR."""

import pytest

from repro.exceptions import PirError
from repro.pir import generate_keypair, generate_prime
from repro.pir.paillier import _is_probable_prime


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256)


class TestPrimeGeneration:
    def test_known_primes(self):
        for prime in (2, 3, 5, 7, 97, 104729):
            assert _is_probable_prime(prime)

    def test_known_composites(self):
        for composite in (1, 4, 100, 561, 104730):
            assert not _is_probable_prime(composite)

    def test_generated_prime_has_requested_size(self):
        prime = generate_prime(64)
        assert prime.bit_length() == 64
        assert _is_probable_prime(prime)

    def test_too_small_request_rejected(self):
        with pytest.raises(PirError):
            generate_prime(4)


class TestPaillier:
    def test_encrypt_decrypt_round_trip(self, keypair):
        public, private = keypair
        for plaintext in (0, 1, 42, 2**64, public.n - 1):
            assert private.decrypt(public.encrypt(plaintext)) == plaintext

    def test_out_of_range_plaintext_rejected(self, keypair):
        public, _ = keypair
        with pytest.raises(PirError):
            public.encrypt(public.n)
        with pytest.raises(PirError):
            public.encrypt(-1)

    def test_encryption_is_randomised(self, keypair):
        public, _ = keypair
        assert public.encrypt(5) != public.encrypt(5)

    def test_additive_homomorphism(self, keypair):
        public, private = keypair
        combined = public.add(public.encrypt(20), public.encrypt(22))
        assert private.decrypt(combined) == 42

    def test_plaintext_multiplication(self, keypair):
        public, private = keypair
        scaled = public.multiply_plain(public.encrypt(7), 6)
        assert private.decrypt(scaled) == 42

    def test_out_of_range_ciphertext_rejected(self, keypair):
        public, private = keypair
        with pytest.raises(PirError):
            private.decrypt(public.n_squared)
