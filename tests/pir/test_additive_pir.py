"""Tests for the single-server computational (Paillier-based) PIR."""

import random

import pytest

from repro.exceptions import PirError
from repro.pir import AdditivePirClient, generate_keypair


@pytest.fixture(scope="module")
def shared_keypair():
    """One keypair for the whole module (key generation is the slow part)."""
    return generate_keypair(bits=256)


def make_blocks(count, size, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


class TestAdditivePir:
    def test_retrieves_every_block(self, shared_keypair):
        blocks = make_blocks(5, 24)
        client = AdditivePirClient(blocks, chunk_bytes=16, keypair=shared_keypair)
        for index, block in enumerate(blocks):
            assert client.retrieve(index) == block

    def test_block_size_not_multiple_of_chunk(self, shared_keypair):
        blocks = make_blocks(3, 23)
        client = AdditivePirClient(blocks, chunk_bytes=8, keypair=shared_keypair)
        assert client.retrieve(1) == blocks[1]

    def test_out_of_range_rejected(self, shared_keypair):
        client = AdditivePirClient(make_blocks(3, 16), chunk_bytes=8, keypair=shared_keypair)
        with pytest.raises(PirError):
            client.retrieve(3)

    def test_chunk_too_large_for_key_rejected(self, shared_keypair):
        with pytest.raises(PirError):
            AdditivePirClient(make_blocks(2, 64), chunk_bytes=64, keypair=shared_keypair)

    def test_server_sees_only_ciphertexts(self, shared_keypair):
        """The selection vector visible to the server consists of Paillier
        ciphertexts; the server cannot read the selected index from them
        directly (they are all large integers in the same range)."""
        blocks = make_blocks(4, 16)
        client = AdditivePirClient(blocks, chunk_bytes=8, keypair=shared_keypair, log_queries=True)
        client.retrieve(2)
        query = client.server.queries_seen[-1]
        assert len(query) == 4
        n_squared = client.public_key.n_squared
        assert all(0 < ciphertext < n_squared for ciphertext in query)
        # ciphertexts of 0 and 1 are indistinguishable without the secret key:
        # in particular they are all distinct values, not a plaintext 0/1 pattern
        assert len(set(query)) == len(query)
