"""Tests for batched PIR retrieval helpers and opt-in adversary logging."""

import random

import pytest

from repro.exceptions import PirError
from repro.pir import (
    TwoServerXorPir,
    XorPirServer,
    indices_mask,
    mask_indices,
    random_subset_masks,
    retrieve_many,
    xor_bytes,
)


def make_blocks(count=8, size=32, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


class TestMaskHelpers:
    def test_roundtrip(self):
        indices = [0, 3, 7, 12]
        assert mask_indices(indices_mask(indices)) == indices

    def test_empty_mask(self):
        assert mask_indices(0) == []
        assert indices_mask([]) == 0

    def test_negative_rejected(self):
        with pytest.raises(PirError):
            mask_indices(-1)
        with pytest.raises(PirError):
            indices_mask([-2])

    def test_random_masks_are_bounded(self):
        rng = random.Random(5)
        masks = random_subset_masks(rng, num_blocks=10, count=50)
        assert len(masks) == 50
        assert all(0 <= mask < (1 << 10) for mask in masks)

    def test_random_masks_count_zero(self):
        assert random_subset_masks(random.Random(1), 4, 0) == []

    def test_random_masks_invalid_arguments(self):
        with pytest.raises(PirError):
            random_subset_masks(random.Random(1), 0, 3)
        with pytest.raises(PirError):
            random_subset_masks(random.Random(1), 4, -1)

    def test_mask_validated_against_database_size(self):
        # bit 8 names block 8, one past a 8-block database
        with pytest.raises(PirError):
            mask_indices(1 << 8, num_blocks=8)
        assert mask_indices((1 << 8) - 1, num_blocks=8) == list(range(8))

    def test_mask_validation_off_without_num_blocks(self):
        assert mask_indices(1 << 40) == [40]


class TestAnswerMask:
    def test_mask_answer_matches_subset_answer(self):
        blocks = make_blocks(6, 16)
        server = XorPirServer(blocks)
        subset = {0, 2, 5}
        assert server.answer_mask(indices_mask(subset)) == server.answer(subset)

    def test_out_of_range_mask_rejected(self):
        server = XorPirServer(make_blocks(3, 8))
        with pytest.raises(PirError):
            server.answer_mask(1 << 3)

    def test_corrupted_mask_rejected_not_misdecoded(self):
        # a mask whose low bits are valid but which also names block 7 of a
        # 3-block database must error, not silently drop the invalid bit
        server = XorPirServer(make_blocks(3, 8))
        with pytest.raises(PirError):
            server.answer_mask(0b101 | (1 << 7))

    def test_answer_many(self):
        blocks = make_blocks(5, 8)
        server = XorPirServer(blocks)
        masks = [indices_mask({0}), indices_mask({1, 2})]
        answers = server.answer_many(masks)
        assert answers[0] == blocks[0]
        assert answers[1] == xor_bytes(blocks[1], blocks[2])


class TestBatchedProtocol:
    def test_retrieve_many_front_end(self):
        blocks = make_blocks(10, 24)
        pir = TwoServerXorPir(blocks)
        indices = [9, 0, 4, 4]
        assert retrieve_many(pir, indices) == [blocks[index] for index in indices]

    def test_retrieve_many_rejects_bad_index(self):
        pir = TwoServerXorPir(make_blocks(4, 8))
        with pytest.raises(PirError):
            pir.retrieve_many([0, 4])

    def test_retrieve_many_empty(self):
        pir = TwoServerXorPir(make_blocks(4, 8))
        assert pir.retrieve_many([]) == []

    def test_logging_defaults_off(self):
        """The adversary-view log must not grow during normal operation
        (it previously grew by one entry per retrieval, unbounded)."""
        pir = TwoServerXorPir(make_blocks(6, 8))
        pir.retrieve_many(list(range(6)) * 3)
        pir.retrieve(2)
        assert pir.server_a.queries_seen == []
        assert pir.server_b.queries_seen == []

    def test_logging_opt_in_records_batch(self):
        pir = TwoServerXorPir(make_blocks(6, 8), log_queries=True)
        pir.retrieve_many([1, 3])
        assert len(pir.server_a.queries_seen) == 2
        assert len(pir.server_b.queries_seen) == 2
        # server B's subset differs from server A's by exactly the wanted index
        for wanted, seen_a, seen_b in zip(
            [1, 3], pir.server_a.queries_seen, pir.server_b.queries_seen
        ):
            assert seen_a.symmetric_difference(seen_b) == {wanted}
