"""Tests for the square-root ORAM and its PIR adapter."""

import secrets

import pytest

from repro.exceptions import PirError
from repro.pir import (
    OramBackedPir,
    OramServer,
    SquareRootOram,
    oblivious_sort_network,
    stream_encrypt,
)


def make_blocks(count, size=16):
    return [bytes([i % 256]) * size for i in range(count)]


class TestStreamCipher:
    def test_roundtrip(self):
        key = b"k" * 16
        nonce = b"n" * 20
        plaintext = b"the quick brown fox"
        ciphertext = stream_encrypt(key, nonce, plaintext)
        assert ciphertext != plaintext
        assert stream_encrypt(key, nonce, ciphertext) == plaintext

    def test_different_nonces_give_different_ciphertexts(self):
        key = b"k" * 16
        plaintext = b"same plaintext bytes"
        first = stream_encrypt(key, b"a" * 20, plaintext)
        second = stream_encrypt(key, b"b" * 20, plaintext)
        assert first != second

    def test_empty_plaintext(self):
        assert stream_encrypt(b"k", b"n", b"") == b""


class TestObliviousSortNetwork:
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 5, 8, 13, 16, 31, 64])
    def test_network_sorts_reversed_input(self, length):
        data = list(range(length))[::-1]
        for i, j in oblivious_sort_network(length):
            if data[i] > data[j]:
                data[i], data[j] = data[j], data[i]
        assert data == sorted(data)

    @pytest.mark.parametrize("length", [6, 10, 17, 33])
    def test_network_sorts_random_permutations(self, length):
        rng = secrets.SystemRandom()
        for _ in range(5):
            data = list(range(length))
            rng.shuffle(data)
            for i, j in oblivious_sort_network(length):
                if data[i] > data[j]:
                    data[i], data[j] = data[j], data[i]
            assert data == sorted(data)

    def test_schedule_depends_only_on_length(self):
        assert oblivious_sort_network(12) == oblivious_sort_network(12)

    def test_pairs_are_ordered_and_in_range(self):
        for i, j in oblivious_sort_network(20):
            assert 0 <= i < j < 20

    def test_negative_length_rejected(self):
        with pytest.raises(PirError):
            oblivious_sort_network(-1)


class TestOramServer:
    def test_read_write_roundtrip(self):
        server = OramServer(4, 8)
        server.write(2, b"12345678")
        assert server.read(2) == b"12345678"

    def test_slots_start_zeroed(self):
        server = OramServer(3, 4)
        assert server.read(0) == bytes(4)

    def test_access_log_records_operations(self):
        server = OramServer(4, 4)
        server.write(1, b"aaaa")
        server.read(3)
        assert server.access_log == [("write", 1), ("read", 3)]
        assert server.slots_touched() == [1, 3]

    def test_clear_log(self):
        server = OramServer(2, 4)
        server.read(0)
        server.clear_log()
        assert server.access_log == []

    def test_out_of_range_slot_rejected(self):
        server = OramServer(2, 4)
        with pytest.raises(PirError):
            server.read(2)
        with pytest.raises(PirError):
            server.write(-1, b"aaaa")

    def test_wrong_size_write_rejected(self):
        server = OramServer(2, 4)
        with pytest.raises(PirError):
            server.write(0, b"too long for slot")

    def test_invalid_construction(self):
        with pytest.raises(PirError):
            OramServer(0, 4)
        with pytest.raises(PirError):
            OramServer(4, 0)


class TestSquareRootOramCorrectness:
    def test_reads_return_original_blocks(self):
        blocks = make_blocks(9)
        oram = SquareRootOram(blocks)
        for index in range(9):
            assert oram.read(index) == blocks[index]

    def test_repeated_reads_of_same_block(self):
        blocks = make_blocks(4)
        oram = SquareRootOram(blocks)
        for _ in range(10):
            assert oram.read(2) == blocks[2]

    def test_reads_across_many_epochs(self):
        blocks = make_blocks(6)
        oram = SquareRootOram(blocks)
        for round_number in range(5):
            for index in range(6):
                assert oram.read(index) == blocks[index]
        assert oram.epoch >= 2

    def test_write_then_read(self):
        blocks = make_blocks(8)
        oram = SquareRootOram(blocks)
        oram.write(3, b"X" * 16)
        assert oram.read(3) == b"X" * 16

    def test_write_survives_reshuffle(self):
        blocks = make_blocks(4, size=8)
        oram = SquareRootOram(blocks)
        oram.write(1, b"NEWVALUE")
        # Force several epochs' worth of accesses.
        for _ in range(12):
            oram.read(0)
        assert oram.read(1) == b"NEWVALUE"

    def test_single_block_database(self):
        oram = SquareRootOram([b"only-block-here!"])
        for _ in range(4):
            assert oram.read(0) == b"only-block-here!"

    def test_out_of_range_index_rejected(self):
        oram = SquareRootOram(make_blocks(3))
        with pytest.raises(PirError):
            oram.read(3)
        with pytest.raises(PirError):
            oram.read(-1)

    def test_wrong_size_write_rejected(self):
        oram = SquareRootOram(make_blocks(3))
        with pytest.raises(PirError):
            oram.write(0, b"short")

    def test_unequal_blocks_rejected(self):
        with pytest.raises(ValueError):
            SquareRootOram([b"aa", b"bbb"])

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            SquareRootOram([])


class TestSquareRootOramObliviousness:
    def _probe_pattern(self, oram, logical_sequence):
        """Return the list of (kind,) operation names per logical access."""
        oram.server.clear_log()
        kinds = []
        for index in logical_sequence:
            before = len(oram.server.access_log)
            oram.read(index)
            kinds.append([kind for kind, _ in oram.server.access_log[before:]])
        return kinds

    def test_operation_kind_sequence_is_workload_independent(self):
        blocks = make_blocks(9)
        seq_a = [0, 1, 2, 3, 4, 5, 6, 7, 8]
        seq_b = [4, 4, 4, 4, 4, 4, 4, 4, 4]
        kinds_a = self._probe_pattern(SquareRootOram(blocks), seq_a)
        kinds_b = self._probe_pattern(SquareRootOram(blocks), seq_b)
        assert kinds_a == kinds_b

    def test_each_access_has_constant_server_cost_between_reshuffles(self):
        blocks = make_blocks(16)
        oram = SquareRootOram(blocks)
        oram.server.clear_log()
        costs = []
        for index in [0, 1, 0, 2]:  # fewer than sqrt(16)=4 accesses triggers no reshuffle
            before = len(oram.server.access_log)
            oram.read(index)
            costs.append(len(oram.server.access_log) - before)
        # Shelter scan (4 reads) + 1 main probe + 1 shelter write, except the
        # 4th access which additionally reshuffles.
        assert costs[0] == costs[1] == costs[2] == 6

    def test_main_area_slots_probed_at_most_once_per_epoch(self):
        blocks = make_blocks(16)
        oram = SquareRootOram(blocks)
        main_slots = 16 + 4
        oram.server.clear_log()
        for index in [3, 3, 7]:  # stay within one epoch (no reshuffle reads)
            oram.read(index)
        probed = [
            slot
            for kind, slot in oram.server.access_log
            if kind == "read" and slot < main_slots
        ]
        assert len(probed) == len(set(probed))

    def test_server_never_sees_plaintext(self):
        blocks = [b"SECRETBLOCKDATA%d" % i + bytes(16 - len("SECRETBLOCKDATA0")) for i in range(4)]
        blocks = [block[:16] for block in blocks]
        oram = SquareRootOram(blocks)
        oram.read(2)
        stored = b"".join(oram.server._slots)
        for block in blocks:
            assert block not in stored

    def test_reshuffle_changes_stored_ciphertexts(self):
        blocks = make_blocks(4)
        oram = SquareRootOram(blocks)
        snapshot = list(oram.server._slots)
        for _ in range(4):  # one full epoch
            oram.read(0)
        assert oram.server._slots != snapshot


class TestOramBackedPir:
    def test_retrieve_matches_blocks(self):
        blocks = make_blocks(10, size=32)
        pir = OramBackedPir(blocks)
        assert pir.num_blocks == 10
        for index in (0, 3, 9, 3, 0):
            assert pir.retrieve(index) == blocks[index]

    def test_exposes_server_log(self):
        pir = OramBackedPir(make_blocks(4))
        pir.retrieve(1)
        assert len(pir.server.access_log) > 0

    def test_oram_property(self):
        pir = OramBackedPir(make_blocks(4))
        assert isinstance(pir.oram, SquareRootOram)

    def test_invalid_index(self):
        pir = OramBackedPir(make_blocks(4))
        with pytest.raises(PirError):
            pir.retrieve(99)
