"""Tests for the two-server information-theoretic XOR PIR."""

import random

import pytest

from repro.exceptions import PirError
from repro.pir import TwoServerXorPir, XorPirServer, numpy_available, xor_bytes


def make_blocks(count=8, size=32, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


class TestXorBytes:
    def test_xor_is_its_own_inverse(self):
        a = b"\x01\x02\x03"
        b = b"\xff\x00\x0f"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_rejected(self):
        with pytest.raises(PirError):
            xor_bytes(b"ab", b"abc")


class TestXorPirServer:
    def test_answer_is_xor_of_selected_blocks(self):
        blocks = make_blocks(4, 8)
        server = XorPirServer(blocks)
        answer = server.answer({0, 2})
        assert answer == xor_bytes(blocks[0], blocks[2])

    def test_empty_subset_gives_zero_block(self):
        blocks = make_blocks(3, 8)
        server = XorPirServer(blocks)
        assert server.answer(set()) == bytes(8)

    def test_out_of_range_index_rejected(self):
        server = XorPirServer(make_blocks(3, 8))
        with pytest.raises(PirError):
            server.answer({5})

    def test_unequal_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            XorPirServer([b"ab", b"abc"])


class TestTwoServerProtocol:
    def test_retrieves_every_block_correctly(self):
        blocks = make_blocks(16, 64)
        pir = TwoServerXorPir(blocks)
        for index, block in enumerate(blocks):
            assert pir.retrieve(index) == block

    def test_repeated_retrievals_consistent(self):
        blocks = make_blocks(6, 16)
        pir = TwoServerXorPir(blocks)
        for _ in range(5):
            assert pir.retrieve(3) == blocks[3]

    def test_out_of_range_rejected(self):
        pir = TwoServerXorPir(make_blocks(4, 8))
        with pytest.raises(PirError):
            pir.retrieve(4)
        with pytest.raises(PirError):
            pir.retrieve(-1)

    def test_single_server_view_does_not_determine_index(self):
        """Each individual server sees a uniformly random subset: repeating the
        same retrieval produces different queries, and the distribution of
        subset sizes does not depend on which block is fetched."""
        blocks = make_blocks(8, 8)
        pir = TwoServerXorPir(blocks, log_queries=True)
        for _ in range(30):
            pir.retrieve(2)
        queries = pir.server_a.queries_seen
        assert len(set(queries)) > 1, "server A should not see a constant query"
        # the retrieved index 2 appears in roughly half the random subsets,
        # exactly as any other index does
        containing = sum(1 for query in queries if 2 in query)
        assert 0 < containing < len(queries)

    def test_num_blocks_property(self):
        pir = TwoServerXorPir(make_blocks(5, 8))
        assert pir.num_blocks == 5


class TestServerKernels:
    def test_replicas_share_one_packed_database(self):
        """Replication is a trust split, not a data layout: both servers must
        answer off the same immutable kernel instance (earlier revisions
        packed the database twice, doubling resident memory)."""
        pir = TwoServerXorPir(make_blocks(8, 16))
        assert pir.server_a.kernel is pir.server_b.kernel
        assert pir.kernel_name == pir.server_a.kernel_name

    def test_kernel_selection_reaches_the_servers(self):
        server = XorPirServer(make_blocks(4, 8), kernel="bigint")
        assert server.kernel_name == "bigint"
        if numpy_available():
            assert XorPirServer(make_blocks(4, 8), kernel="numpy").kernel_name == "numpy"

    def test_answer_rows_requires_packed_kernel(self):
        server = XorPirServer(make_blocks(4, 8), kernel="bigint")
        with pytest.raises(PirError):
            server.answer_rows([0b0101])

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_forced_kernels_retrieve_identically(self):
        blocks = make_blocks(20, 64, seed=4)
        indices = [random.Random(1).randrange(20) for _ in range(30)]
        by_kernel = {}
        for name in ("bigint", "numpy"):
            pir = TwoServerXorPir(blocks, rng=random.Random(77), kernel=name)
            assert pir.kernel_name == name
            by_kernel[name] = pir.retrieve_many(indices)
        assert by_kernel["bigint"] == by_kernel["numpy"]
        assert by_kernel["bigint"] == [blocks[index] for index in indices]

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_adversary_view_identical_across_kernels(self):
        blocks = make_blocks(12, 16)
        logs = {}
        for name in ("bigint", "numpy"):
            pir = TwoServerXorPir(
                blocks, rng=random.Random(5), log_queries=True, kernel=name
            )
            pir.retrieve_many([2, 8, 2, 11])
            pir.retrieve(6)
            logs[name] = (pir.server_a.queries_seen, pir.server_b.queries_seen)
        assert logs["bigint"] == logs["numpy"]
