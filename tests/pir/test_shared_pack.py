"""Tests for shared-memory packed kernels and the shared-pack registry.

The shared pack is a pure *placement* change: ``to_shared()`` re-homes a
:class:`~repro.pir.kernels.PackedDatabase` onto ``multiprocessing``
shared-memory segments and ``attach()`` maps the same bytes read-only into
another process — answers must stay bit-identical (invariant I2) and the
machine must end up with exactly one pack build per shard regardless of how
many workers attach.  Ownership is explicit: whoever published unlinks, and
nothing may leak into ``/dev/shm`` after engines and clusters close — not
even when an attached worker is killed outright.
"""

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.exceptions import PirError
from repro.network import random_planar_network
from repro.pir import numpy_available, shared_pack_registry
from repro.schemes import ConciseIndexScheme
from repro.serving import ShardCluster

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
requires_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)

SPEC = SystemSpec(page_size=256)


def make_blocks(count=24, size=48, seed=3):
    import random

    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


def random_masks(num_blocks, count=12, seed=9):
    import random

    rng = random.Random(seed)
    masks = [rng.getrandbits(num_blocks) for _ in range(count)]
    return [0, (1 << num_blocks) - 1] + masks


def shm_names():
    """Current segment names under /dev/shm (empty off-Linux)."""
    root = Path("/dev/shm")
    if not root.is_dir():
        return frozenset()
    return frozenset(entry.name for entry in root.iterdir())


@pytest.fixture
def ci_scheme():
    network = random_planar_network(110, seed=11)
    return ConciseIndexScheme.build(network, spec=SPEC)


# ---------------------------------------------------------------------- #
# child helpers (top-level so the fork context finds them by reference)
# ---------------------------------------------------------------------- #
def _child_attach_and_answer(handle, masks, connection):
    """Attach to a published pack and send its answers back."""
    from repro.pir.kernels import PackedDatabase

    try:
        pack = PackedDatabase.attach(handle)
        connection.send(pack.answer_many(masks))
        pack.close_shared(unlink=False)
    except BaseException as exc:  # pragma: no cover - failure reporting only
        connection.send(exc)
    finally:
        connection.close()


def _child_attach_and_hang(handle, event):
    """Attach, signal readiness, then wait to be killed."""
    from repro.pir.kernels import PackedDatabase

    PackedDatabase.attach(handle)
    event.set()
    time.sleep(60)  # pragma: no cover - the parent SIGKILLs us first


@requires_numpy
class TestToSharedAndAttach:
    def test_attach_answers_bit_identical(self):
        from repro.pir import BigIntKernel
        from repro.pir.kernels import PackedDatabase

        blocks = make_blocks()
        masks = random_masks(len(blocks))
        pack = PackedDatabase.from_blocks(blocks)
        expected = BigIntKernel(blocks).answer_many(masks)
        assert pack.answer_many(masks) == expected

        handle = pack.to_shared()
        # re-homing the arrays must not change a single answer bit
        assert pack.answer_many(masks) == expected
        attached = PackedDatabase.attach(handle)
        try:
            assert attached.answer_many(masks) == expected
            assert attached.num_blocks == pack.num_blocks
            assert attached.block_size == pack.block_size
        finally:
            attached.close_shared(unlink=False)
            pack.close_shared()

    def test_pack_stays_usable_after_close_shared(self):
        """The shared_kernel memo may hand this object out again after the
        owner unlinked — close_shared must re-home the arrays privately."""
        from repro.pir.kernels import PackedDatabase

        blocks = make_blocks()
        masks = random_masks(len(blocks))
        pack = PackedDatabase.from_blocks(blocks)
        expected = pack.answer_many(masks)
        pack.to_shared()
        pack.close_shared()
        assert pack.shared_handle is None
        assert pack.answer_many(masks) == expected

    def test_to_shared_is_idempotent(self):
        from repro.pir.kernels import PackedDatabase

        pack = PackedDatabase.from_blocks(make_blocks())
        handle = pack.to_shared()
        assert pack.to_shared() is handle
        pack.close_shared()

    def test_attach_does_not_count_as_a_build(self):
        from repro.pir.kernels import PackedDatabase

        registry = shared_pack_registry()
        pack = PackedDatabase.from_blocks(make_blocks())
        handle = pack.to_shared()
        before = registry.pack_builds
        attached = PackedDatabase.attach(handle)
        attached.close_shared(unlink=False)
        assert registry.pack_builds == before
        pack.close_shared()

    def test_attached_pack_is_read_only(self):
        from repro.pir.kernels import PackedDatabase

        pack = PackedDatabase.from_blocks(make_blocks())
        attached = PackedDatabase.attach(pack.to_shared())
        try:
            with pytest.raises((ValueError, RuntimeError)):
                attached._rows[0, 0] = 1  # shared packs are read-only (I2)
        finally:
            attached.close_shared(unlink=False)
            pack.close_shared()

    def test_attach_in_subprocess_bit_identical(self):
        from repro.pir import BigIntKernel
        from repro.pir.kernels import PackedDatabase

        blocks = make_blocks()
        masks = random_masks(len(blocks))
        pack = PackedDatabase.from_blocks(blocks)
        handle = pack.to_shared()
        context = multiprocessing.get_context("fork")
        parent_end, child_end = context.Pipe(duplex=False)
        process = context.Process(
            target=_child_attach_and_answer, args=(handle, masks, child_end)
        )
        process.start()
        answers = parent_end.recv()
        process.join(timeout=30)
        if isinstance(answers, BaseException):
            raise answers
        assert answers == BigIntKernel(blocks).answer_many(masks)
        # the child's exit must not have torn down the parent's segments
        assert pack.answer_many(masks) == answers
        pack.close_shared()

    def test_stale_handle_attach_raises(self):
        from repro.pir.kernels import PackedDatabase

        pack = PackedDatabase.from_blocks(make_blocks())
        handle = pack.to_shared()
        pack.close_shared()  # owner unlinks; the handle now points nowhere
        with pytest.raises(PirError):
            PackedDatabase.attach(handle)

    def test_mismatched_handle_rejected(self):
        from dataclasses import replace

        from repro.pir.kernels import PackedDatabase

        pack = PackedDatabase.from_blocks(make_blocks())
        handle = pack.to_shared()
        wrong = replace(handle, rows_crc=handle.rows_crc ^ 1)
        with pytest.raises(PirError, match="mismatch"):
            PackedDatabase.attach(wrong)
        pack.close_shared()


@requires_numpy
class TestSharedPackRegistry:
    def test_publish_adopt_unpublish_lifecycle(self):
        from repro.pir.kernels import PackedDatabase

        registry = shared_pack_registry()
        blocks = make_blocks()
        masks = random_masks(len(blocks))
        key = ("numpy", "unit", len(blocks), "shard", 0, 1, "round-robin")
        pack = PackedDatabase.from_blocks(blocks)
        handle = registry.publish(key, pack)
        try:
            assert registry.handles()[key] == handle
            builds = registry.pack_builds
            registry.adopt({key: handle})
            adopted = registry.adopted(key)
            assert adopted is not None
            assert adopted.answer_many(masks) == pack.answer_many(masks)
            # adoption attached; it must not have built a new pack
            assert registry.pack_builds == builds
        finally:
            registry.unpublish([key])
        assert key not in registry.handles()
        assert pack.shared_handle is None

    def test_same_process_attach_reuses_published_pack(self):
        from repro.pir.kernels import PackedDatabase

        registry = shared_pack_registry()
        key = ("numpy", "reuse", 24, "shard", 0, 1, "round-robin")
        pack = PackedDatabase.from_blocks(make_blocks())
        handle = registry.publish(key, pack)
        try:
            assert registry.attach(handle) is pack
        finally:
            registry.unpublish([key])

    def test_publish_shard_packs_keys_match_worker_lookup(self, ci_scheme):
        from repro.pir.kernels import shared_kernel_key
        from repro.pir.sharded import ShardedPageStore

        store = ShardedPageStore(ci_scheme.database, num_shards=2)
        handles = store.publish_shard_packs(kernel="numpy")
        try:
            assert handles, "a CI database must publish at least one shard pack"
            for file_name, file_map in store.maps.items():
                page_file = ci_scheme.database.file(file_name)
                for shard_id in range(file_map.num_shards):
                    page_numbers = [
                        file_map.global_index(shard_id, local)
                        for local in range(file_map.shard_sizes()[shard_id])
                    ]
                    key = shared_kernel_key(
                        page_file,
                        page_numbers,
                        kernel="numpy",
                        cache_key=("shard", shard_id, file_map.num_shards, store.strategy),
                    )
                    assert key in handles
        finally:
            shared_pack_registry().unpublish(handles)

    def test_bigint_kernel_publishes_nothing(self, ci_scheme):
        from repro.pir.sharded import ShardedPageStore

        store = ShardedPageStore(ci_scheme.database, num_shards=2)
        assert store.publish_shard_packs(kernel="bigint") == {}


@requires_numpy
@requires_dev_shm
class TestNoSegmentLeaks:
    """Every close path must leave /dev/shm exactly as it found it."""

    def test_owner_close_unlinks_segments(self):
        from repro.pir.kernels import PackedDatabase

        before = shm_names()
        pack = PackedDatabase.from_blocks(make_blocks())
        handle = pack.to_shared()
        created = shm_names() - before
        assert created, "to_shared must create /dev/shm segments"
        assert handle.rows_name.lstrip("/") in created
        pack.close_shared()
        assert shm_names() - before == frozenset()

    def test_engine_close_unlinks_published_packs(self, ci_scheme):
        pairs = [(0, 50), (3, 70)]
        before = shm_names()
        with QueryEngine(ci_scheme, shards=2, pir_kernel="numpy") as engine:
            engine.run_batch(pairs, workers=2, worker_mode="process")
            assert shm_names() - before, "process batches must publish shard packs"
        assert shm_names() - before == frozenset()

    def test_cluster_stop_unlinks_shared_packs(self, ci_scheme):
        before = shm_names()
        with ShardCluster(
            ci_scheme.database, num_shards=2, kernel="numpy", share_packs=True
        ):
            assert shm_names() - before, "share_packs must publish shard packs"
        assert shm_names() - before == frozenset()

    def test_killed_attached_worker_leaks_nothing(self):
        """SIGKILLing a worker that attached must neither unlink the owner's
        segments (the worker never owned them) nor leak any of its own."""
        from repro.pir.kernels import PackedDatabase

        before = shm_names()
        blocks = make_blocks()
        masks = random_masks(len(blocks))
        pack = PackedDatabase.from_blocks(blocks)
        expected = pack.answer_many(masks)
        handle = pack.to_shared()

        context = multiprocessing.get_context("fork")
        ready = context.Event()
        process = context.Process(target=_child_attach_and_hang, args=(handle, ready))
        process.start()
        assert ready.wait(timeout=30), "worker never attached"
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=30)
        assert process.exitcode == -signal.SIGKILL

        # the segments survived the crash and still answer bit-identically
        attached = PackedDatabase.attach(handle)
        assert attached.answer_many(masks) == expected
        attached.close_shared(unlink=False)
        pack.close_shared()
        assert shm_names() - before == frozenset()
