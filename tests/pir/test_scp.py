"""Tests for the SCP simulator and the hardware-aided PIR interface."""

import pytest

from repro import SystemSpec
from repro.exceptions import FileSizeLimitError, PirError
from repro.pir import AccessTrace, SecureCoprocessor, UsablePirSimulator
from repro.storage import Database


def make_database(num_pages=6, page_size=64):
    database = Database(page_size)
    data = database.create_file("data")
    for index in range(num_pages):
        data.new_page().append(bytes([index]) * 8)
    database.set_header(b"header")
    return database


class TestSecureCoprocessor:
    def test_memory_requirement_grows_with_sqrt(self):
        scp = SecureCoprocessor(SystemSpec(page_size=4096))
        small = scp.memory_required_for(1024)
        large = scp.memory_required_for(4096)
        assert large == pytest.approx(2 * small)

    def test_supports_small_file(self):
        spec = SystemSpec(page_size=64)
        scp = SecureCoprocessor(spec)
        database = make_database(page_size=64)
        assert scp.supports_file(database.file("data"))

    def test_rejects_file_over_max_size(self):
        spec = SystemSpec(page_size=64, max_file_bytes=128)
        scp = SecureCoprocessor(spec)
        database = make_database(num_pages=4, page_size=64)
        assert not scp.supports_file(database.file("data"))
        with pytest.raises(FileSizeLimitError):
            scp.check_file(database.file("data"))

    def test_rejects_file_over_memory_limit(self):
        spec = SystemSpec(page_size=64, scp_memory_bytes=100, scp_memory_factor=10.0)
        scp = SecureCoprocessor(spec)
        database = make_database(num_pages=6, page_size=64)
        assert not scp.supports_file(database.file("data"))

    def test_paper_limit_about_two_and_a_half_gigabytes(self):
        """With 32 MByte of SCP RAM and c = 10 the supported file size is in the
        gigabyte range, matching the 2.5 GByte limit stated in the paper."""
        spec = SystemSpec()
        scp = SecureCoprocessor(spec)
        supported_bytes = (spec.scp_memory_bytes / spec.scp_memory_factor) ** 2
        assert supported_bytes > 2 * 2**30


class TestUsablePirSimulator:
    def test_retrieves_correct_page_and_logs_trace(self):
        database = make_database()
        pir = UsablePirSimulator(database, spec=SystemSpec(page_size=64))
        trace = AccessTrace()
        trace.begin_round()
        page = pir.retrieve_page("data", 3, trace)
        assert page.startswith(bytes([3]) * 8)
        assert trace.total_pir_accesses() == 1
        assert trace.private_page_requests() == [(1, "data", 3)]
        view = trace.adversary_view()
        assert view.events[0].file_name == "data"
        assert view.events[0].kind == "pir"

    def test_accumulates_simulated_time(self):
        database = make_database()
        pir = UsablePirSimulator(database, spec=SystemSpec(page_size=64))
        pir.retrieve_page("data", 0)
        first = pir.simulated_pir_time_s
        pir.retrieve_page("data", 1)
        assert pir.simulated_pir_time_s == pytest.approx(2 * first)
        pir.reset_time()
        assert pir.simulated_pir_time_s == 0.0

    def test_out_of_range_page_rejected(self):
        pir = UsablePirSimulator(make_database(), spec=SystemSpec(page_size=64))
        with pytest.raises(PirError):
            pir.retrieve_page("data", 99)

    def test_header_download_recorded_but_not_pir(self):
        database = make_database()
        pir = UsablePirSimulator(database, spec=SystemSpec(page_size=64))
        trace = AccessTrace()
        trace.begin_round()
        header = pir.download_header(trace)
        assert header == b"header"
        assert trace.total_pir_accesses() == 0
        assert trace.header_bytes == len(b"header")
        assert trace.adversary_view().events[0].kind == "header"

    def test_enforce_limits_flag(self):
        spec = SystemSpec(page_size=64, max_file_bytes=128)
        database = make_database(num_pages=4, page_size=64)
        strict = UsablePirSimulator(database, spec=spec, enforce_limits=True)
        with pytest.raises(FileSizeLimitError):
            strict.retrieve_page("data", 0)
        relaxed = UsablePirSimulator(database, spec=spec, enforce_limits=False)
        assert relaxed.retrieve_page("data", 0)

    def test_file_page_counts(self):
        pir = UsablePirSimulator(make_database(), spec=SystemSpec(page_size=64))
        assert pir.file_page_counts() == {"data": 6}
