"""Tests for the pluggable XOR-PIR server kernels (packed numpy vs big-int)."""

import random

import pytest

from repro.exceptions import PirError
from repro.pir import (
    ENV_PIR_KERNEL,
    BigIntKernel,
    kernel_from_pages,
    make_kernel,
    numpy_available,
    oblivious_read_many,
    resolve_kernel,
    shared_kernel,
)
from repro.pir.kernels import PackedDatabase, is_kernel
from repro.storage import PageFile, open_page_store

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
without_numpy = pytest.mark.skipif(numpy_available(), reason="only without numpy")


def make_blocks(count=8, size=32, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


def oracle_answer(blocks, mask):
    """Straight-line XOR of the mask-selected blocks (independent of kernels)."""
    accumulator = 0
    for index, block in enumerate(blocks):
        if (mask >> index) & 1:
            accumulator ^= int.from_bytes(block, "big")
    return accumulator.to_bytes(len(blocks[0]), "big")


def random_masks(num_blocks, count, seed=0):
    rng = random.Random(seed)
    masks = [rng.getrandbits(num_blocks) for _ in range(count)]
    # always include the edge masks: empty subset and the full database
    return [0, (1 << num_blocks) - 1] + masks


def page_file_with(blocks, backend="memory", directory=None):
    page_size = len(blocks[0])
    store = open_page_store(backend, "kern", page_size=page_size, directory=directory)
    page_file = PageFile("kern", page_size=page_size, store=store)
    for block in blocks:
        page = page_file.new_page()
        page.append(block)
    page_file.flush()
    return page_file


class TestKernelSelection:
    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(ENV_PIR_KERNEL, raising=False)
        expected = "numpy" if numpy_available() else "bigint"
        assert resolve_kernel() == expected
        assert resolve_kernel("auto") == expected

    def test_explicit_name_normalized(self):
        assert resolve_kernel(" BigInt ") == "bigint"

    def test_unknown_name_rejected(self):
        with pytest.raises(PirError):
            resolve_kernel("simd")

    def test_environment_variable_supplies_default(self, monkeypatch):
        monkeypatch.setenv(ENV_PIR_KERNEL, "bigint")
        assert resolve_kernel() == "bigint"
        # but an explicit argument still wins over the environment
        if numpy_available():
            assert resolve_kernel("numpy") == "numpy"

    def test_empty_environment_variable_means_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_PIR_KERNEL, "")
        assert resolve_kernel() == ("numpy" if numpy_available() else "bigint")

    @without_numpy
    def test_numpy_request_without_numpy_rejected(self):
        with pytest.raises(PirError):
            resolve_kernel("numpy")

    def test_make_kernel_builds_selected_implementation(self):
        blocks = make_blocks(4)
        bigint = make_kernel(blocks, kernel="bigint")
        assert isinstance(bigint, BigIntKernel) and is_kernel(bigint)
        if numpy_available():
            packed = make_kernel(blocks, kernel="numpy")
            assert isinstance(packed, PackedDatabase) and is_kernel(packed)
        assert not is_kernel(blocks)


class TestBigIntKernel:
    def test_answers_match_manual_xor(self):
        blocks = make_blocks(10, 24)
        kernel = BigIntKernel(blocks)
        for mask in random_masks(10, 20):
            assert kernel.answer_mask(mask) == oracle_answer(blocks, mask)

    def test_empty_subset_gives_zero_block(self):
        kernel = BigIntKernel(make_blocks(3, 8))
        assert kernel.answer_indices([]) == bytes(8)

    def test_empty_database_rejected(self):
        with pytest.raises(PirError):
            BigIntKernel([])
        with pytest.raises(PirError):
            BigIntKernel.from_fetcher(0, 8, lambda numbers: [])

    def test_invalid_mask_rejected(self):
        kernel = BigIntKernel(make_blocks(4, 8))
        with pytest.raises(PirError):
            kernel.answer_mask(-1)
        with pytest.raises(PirError):
            kernel.answer_mask(1 << 4)


@requires_numpy
class TestPackedDatabase:
    # group padding: below, at and across group boundaries for every width
    @pytest.mark.parametrize("num_blocks", [1, 5, 8, 9, 37, 64, 200])
    @pytest.mark.parametrize("block_size", [7, 8, 32, 41])
    def test_bit_identical_to_bigint_oracle(self, num_blocks, block_size):
        blocks = make_blocks(num_blocks, block_size, seed=num_blocks)
        packed = PackedDatabase.from_blocks(blocks)
        oracle = BigIntKernel(blocks)
        masks = random_masks(num_blocks, 12, seed=block_size)
        assert packed.answer_many(masks) == oracle.answer_many(masks)
        for mask in masks[:4]:
            assert packed.answer_mask(mask) == oracle.answer_mask(mask)

    def test_answer_indices_matches_oracle(self):
        blocks = make_blocks(20, 16)
        packed = PackedDatabase.from_blocks(blocks)
        oracle = BigIntKernel(blocks)
        for indices in ([], [0], [3, 7, 19], list(range(20))):
            assert packed.answer_indices(indices) == oracle.answer_indices(indices)

    def test_group_loop_and_gather_paths_agree(self, monkeypatch):
        """The two batch strategies meet at GROUP_LOOP_MIN_BATCH; both must
        equal the oracle on either side of the threshold."""
        blocks = make_blocks(50, 16, seed=3)
        packed = PackedDatabase.from_blocks(blocks)
        oracle = BigIntKernel(blocks)
        big_batch = random_masks(50, packed.GROUP_LOOP_MIN_BATCH + 10, seed=1)
        assert packed.answer_many(big_batch) == oracle.answer_many(big_batch)
        monkeypatch.setattr(PackedDatabase, "GROUP_LOOP_MIN_BATCH", 10 ** 9)
        assert packed.answer_many(big_batch) == oracle.answer_many(big_batch)

    # 100 blocks of 2 words: table bytes are 53248 / 6400 / 3200 for 8/4/2 bits
    @pytest.mark.parametrize("budget,expected_bits", [
        (64 * 1024 * 1024, 8),
        (8000, 4),
        (3300, 2),
        (64, None),  # beyond any table: per-mask row-gather fallback
    ])
    def test_adaptive_group_width_stays_exact(self, monkeypatch, budget, expected_bits):
        # this pins the *class default* budget path; an ambient env override
        # (the CI fallback leg sets REPRO_PIR_MAX_TABLE_BYTES=1) would win
        from repro.pir.kernels import ENV_MAX_TABLE_BYTES

        monkeypatch.delenv(ENV_MAX_TABLE_BYTES, raising=False)
        monkeypatch.setattr(PackedDatabase, "MAX_TABLE_BYTES", budget)
        blocks = make_blocks(100, 16, seed=9)
        packed = PackedDatabase.from_blocks(blocks)
        assert packed._group_bits == expected_bits
        assert (packed._tables is None) == (expected_bits is None)
        oracle = BigIntKernel(blocks)
        masks = random_masks(100, 16, seed=2)
        assert packed.answer_many(masks) == oracle.answer_many(masks)

    def test_invalid_mask_errors_match_bigint(self):
        blocks = make_blocks(6, 8)
        packed, oracle = PackedDatabase.from_blocks(blocks), BigIntKernel(blocks)
        for bad in (-1, 1 << 6, (1 << 6) | 1):
            with pytest.raises(PirError) as packed_error:
                packed.answer_mask(bad)
            with pytest.raises(PirError) as oracle_error:
                oracle.answer_mask(bad)
            assert str(packed_error.value) == str(oracle_error.value)

    def test_packed_rows_are_immutable(self):
        packed = PackedDatabase.from_blocks(make_blocks(4, 8))
        with pytest.raises(ValueError):
            packed._rows[0, 0] = 1

    def test_wrong_block_size_rejected(self):
        with pytest.raises(PirError):
            PackedDatabase.from_fetcher(2, 8, lambda numbers: [b"x" * 8, b"y" * 7])

    def test_empty_database_rejected(self):
        with pytest.raises(PirError):
            PackedDatabase.from_blocks([])

    def test_nbytes_accounts_for_tables(self):
        packed = PackedDatabase.from_blocks(make_blocks(16, 8))
        assert packed.nbytes >= packed._rows.nbytes > 0


@requires_numpy
class TestTiledFallbackGolden:
    """Golden answers at and just past the group-table budget.

    100 blocks of 16 bytes (2 words): the narrowest (2-bit) tables cost
    exactly 3200 bytes.  A budget of 3200 keeps resident tables; 3199 tips
    the pack into the fallback regime, where batches below
    ``TILED_MIN_BATCH`` run the per-mask row gather and serving-sized
    batches run the tiled GF(2) product.  Every strategy must produce the
    same bytes for the same masks — the budget is a memory knob, never an
    answer knob (invariant I2).
    """

    NUM_BLOCKS, BLOCK_SIZE = 100, 16
    TWO_BIT_TABLE_BYTES = 3200

    def _pack(self, budget):
        blocks = make_blocks(self.NUM_BLOCKS, self.BLOCK_SIZE, seed=7)
        return blocks, PackedDatabase.from_blocks(blocks, max_table_bytes=budget)

    def test_budget_boundary_is_exact(self):
        _, at_budget = self._pack(self.TWO_BIT_TABLE_BYTES)
        _, past_budget = self._pack(self.TWO_BIT_TABLE_BYTES - 1)
        assert at_budget._group_bits == 2 and at_budget._tables is not None
        assert past_budget._group_bits is None and past_budget._tables is None

    @pytest.mark.parametrize(
        "batch",
        [
            1,
            PackedDatabase.TILED_MIN_BATCH - 1,  # last row-gather batch
            PackedDatabase.TILED_MIN_BATCH,  # first tiled batch
            PackedDatabase.TILED_MIN_BATCH * 3,  # the coalesced serving regime
        ],
    )
    def test_at_and_past_budget_answers_are_golden(self, batch):
        blocks, at_budget = self._pack(self.TWO_BIT_TABLE_BYTES)
        _, past_budget = self._pack(self.TWO_BIT_TABLE_BYTES - 1)
        masks = random_masks(self.NUM_BLOCKS, batch, seed=batch)[:batch]
        golden = BigIntKernel(blocks).answer_many(masks)
        assert at_budget.answer_many(masks) == golden
        assert past_budget.answer_many(masks) == golden

    def test_tiled_and_gather_agree_on_every_batch(self):
        import numpy as np

        _, pack = self._pack(0)
        for batch in (1, 2, 31, 32, 33, 96):
            masks = random_masks(self.NUM_BLOCKS, batch, seed=batch)[:batch]
            matrix = pack._mask_matrix(masks)
            gather = pack._answer_rows_gather(
                matrix, np.zeros((batch, pack.words), dtype=np.uint64)
            )
            tiled = pack._answer_rows_tiled(
                matrix, np.zeros((batch, pack.words), dtype=np.uint64)
            )
            assert pack.rows_to_blocks(tiled) == pack.rows_to_blocks(gather)

    def test_dispatch_crosses_at_tiled_min_batch(self, monkeypatch):
        _, pack = self._pack(0)
        calls = []
        original_gather = PackedDatabase._answer_rows_gather
        original_tiled = PackedDatabase._answer_rows_tiled
        monkeypatch.setattr(
            PackedDatabase,
            "_answer_rows_gather",
            lambda self, m, o: calls.append("gather") or original_gather(self, m, o),
        )
        monkeypatch.setattr(
            PackedDatabase,
            "_answer_rows_tiled",
            lambda self, m, o: calls.append("tiled") or original_tiled(self, m, o),
        )
        small = random_masks(self.NUM_BLOCKS, pack.TILED_MIN_BATCH - 1, seed=1)
        pack.answer_many(small[: pack.TILED_MIN_BATCH - 1])
        large = random_masks(self.NUM_BLOCKS, pack.TILED_MIN_BATCH, seed=2)
        pack.answer_many(large[: pack.TILED_MIN_BATCH])
        assert calls == ["gather", "tiled"]

    def test_environment_budget_forces_fallback(self, monkeypatch):
        """The CI leg's knob: REPRO_PIR_MAX_TABLE_BYTES shrinks every pack."""
        from repro.pir.kernels import ENV_MAX_TABLE_BYTES

        monkeypatch.setenv(ENV_MAX_TABLE_BYTES, "1")
        blocks, pack = self._pack(None)
        assert pack._tables is None
        masks = random_masks(self.NUM_BLOCKS, 40, seed=5)
        assert pack.answer_many(masks) == BigIntKernel(blocks).answer_many(masks)

    def test_bad_environment_budget_rejected(self, monkeypatch):
        from repro.pir.kernels import ENV_MAX_TABLE_BYTES

        monkeypatch.setenv(ENV_MAX_TABLE_BYTES, "lots")
        with pytest.raises(PirError):
            self._pack(None)


class TestKernelFromPages:
    def test_memory_page_file_packs_exactly(self):
        blocks = make_blocks(12, 64)
        page_file = page_file_with(blocks)
        kernel = kernel_from_pages(page_file)
        expected = page_file.read_pages_batch(range(12))
        assert kernel.answer_many([1 << n for n in range(12)]) == expected

    def test_page_subset_packs_shard_view(self):
        blocks = make_blocks(10, 32)
        page_file = page_file_with(blocks)
        subset = [1, 4, 7]
        kernel = kernel_from_pages(page_file, page_numbers=subset)
        assert kernel.num_blocks == 3
        for local, global_page in enumerate(subset):
            assert kernel.answer_indices([local]) == page_file.read_page(global_page)

    def test_mmap_store_packs_through_zero_copy_views(self, tmp_path):
        blocks = make_blocks(9, 128)
        page_file = page_file_with(blocks, backend="mmap", directory=tmp_path)
        try:
            views = []
            original = page_file.store.get_page_view
            page_file.store.get_page_view = lambda n: views.append(n) or original(n)
            kernel = kernel_from_pages(page_file)
            assert sorted(views) == list(range(9)), "expected the zero-copy path"
            assert kernel.answer_many([1 << n for n in range(9)]) == blocks
        finally:
            page_file.close()

    def test_live_tail_page_is_packed_too(self):
        page_file = PageFile("tail", page_size=16)
        page_file.append_record_packed(b"0123456789abcdef")
        page_file.append_record_packed(b"fedcba9876543210")  # still the mutable tail
        assert page_file._tail is not None
        kernel = kernel_from_pages(page_file)
        assert kernel.num_blocks == 2
        assert kernel.answer_indices([1]) == page_file.read_page(1)

    def test_empty_page_file_rejected(self):
        with pytest.raises(PirError):
            kernel_from_pages(PageFile("empty", page_size=16))


class TestSharedKernel:
    def test_pack_is_memoised_per_store(self):
        page_file = page_file_with(make_blocks(6, 32))
        first = shared_kernel(page_file)
        assert shared_kernel(page_file) is first

    def test_kernel_name_and_subset_key_separate_entries(self):
        page_file = page_file_with(make_blocks(6, 32))
        whole = shared_kernel(page_file, kernel="bigint")
        subset = shared_kernel(page_file, page_numbers=[0, 1], kernel="bigint",
                               cache_key=("shard", 0))
        assert whole is not subset
        assert whole.num_blocks == 6 and subset.num_blocks == 2
        if numpy_available():
            assert shared_kernel(page_file, kernel="numpy") is not whole

    def test_growth_triggers_repack(self):
        blocks = make_blocks(4, 32)
        page_file = page_file_with(blocks)
        before = shared_kernel(page_file)
        page_file.new_page().append(b"!" * 32)
        page_file.flush()
        after = shared_kernel(page_file)
        assert after is not before
        assert after.num_blocks == 5

    def test_distinct_stores_do_not_share(self):
        blocks = make_blocks(5, 32)
        one = page_file_with(blocks)
        two = page_file_with(blocks)
        assert shared_kernel(one) is not shared_kernel(two)


class TestObliviousReadMany:
    @pytest.mark.parametrize("kernel_name", ["bigint", "numpy"])
    def test_recovers_requested_blocks(self, kernel_name):
        if kernel_name == "numpy" and not numpy_available():
            pytest.skip("numpy not installed")
        blocks = make_blocks(14, 48)
        kernel = make_kernel(blocks, kernel=kernel_name)
        rng = random.Random(11)
        indices = [rng.randrange(14) for _ in range(25)]
        assert oblivious_read_many(kernel, rng, indices) == [blocks[i] for i in indices]

    def test_empty_batch_short_circuits(self):
        kernel = make_kernel(make_blocks(3, 8), kernel="bigint")
        assert oblivious_read_many(kernel, random.Random(0), []) == []

    @requires_numpy
    def test_adversary_log_identical_across_kernels(self):
        """Same RNG state => byte-identical mask stream => identical logs,
        whichever kernel answers.  This is the queries_seen parity the
        privacy analysis relies on."""
        blocks = make_blocks(18, 32)
        indices = [3, 0, 17, 9, 9, 4]
        logs = {}
        for name in ("bigint", "numpy"):
            kernel = make_kernel(blocks, kernel=name)
            seen = []
            answers = oblivious_read_many(
                kernel, random.Random(99), indices, log=seen.append
            )
            assert answers == [blocks[i] for i in indices]
            assert len(seen) == 2 * len(indices)
            logs[name] = seen
        assert logs["bigint"] == logs["numpy"]

    def test_logged_subsets_differ_only_at_retrieved_index(self):
        blocks = make_blocks(12, 16)
        kernel = make_kernel(blocks, kernel="bigint")
        seen = []
        oblivious_read_many(kernel, random.Random(5), [7], log=seen.append)
        subset_a, subset_b = seen
        assert subset_a.symmetric_difference(subset_b) == {7}
