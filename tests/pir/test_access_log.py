"""Tests for access traces and adversary views."""

from repro.pir import AccessTrace, AdversaryEvent, AdversaryView


class TestAccessTrace:
    def test_rounds_and_counters(self):
        trace = AccessTrace()
        assert trace.current_round == 0
        assert trace.begin_round() == 1
        trace.record_header_download(100)
        assert trace.begin_round() == 2
        trace.record_pir_access("lookup", 3)
        trace.record_pir_access("index", 7)
        assert trace.current_round == 2
        assert trace.header_bytes == 100
        assert trace.total_pir_accesses() == 2
        assert trace.pir_accesses_per_file() == {"lookup": 1, "index": 1}

    def test_rounds_summary(self):
        trace = AccessTrace()
        trace.begin_round()
        trace.record_pir_access("data", 0)
        trace.begin_round()
        trace.record_pir_access("data", 1)
        trace.record_pir_access("data", 2)
        assert trace.rounds_summary() == [{"data": 1}, {"data": 2}]

    def test_private_pages_not_in_adversary_view(self):
        trace = AccessTrace()
        trace.begin_round()
        trace.record_pir_access("data", 41)
        view = trace.adversary_view()
        assert view.events == (AdversaryEvent(1, "pir", "data"),)
        # the page number 41 appears nowhere in the adversary-visible events
        assert all(not hasattr(event, "page_number") for event in view.events)
        assert trace.private_page_requests() == [(1, "data", 41)]


class TestAdversaryView:
    def test_equality_depends_only_on_event_sequence(self):
        first = AccessTrace()
        first.begin_round()
        first.record_pir_access("data", 5)
        second = AccessTrace()
        second.begin_round()
        second.record_pir_access("data", 99)
        assert first.adversary_view() == second.adversary_view()
        assert hash(first.adversary_view()) == hash(second.adversary_view())

    def test_inequality_when_files_differ(self):
        first = AccessTrace()
        first.begin_round()
        first.record_pir_access("data", 5)
        second = AccessTrace()
        second.begin_round()
        second.record_pir_access("index", 5)
        assert first.adversary_view() != second.adversary_view()

    def test_accesses_per_file_and_rounds(self):
        view = AdversaryView(
            (
                AdversaryEvent(1, "header", ""),
                AdversaryEvent(2, "pir", "lookup"),
                AdversaryEvent(3, "pir", "data"),
                AdversaryEvent(3, "pir", "data"),
            )
        )
        assert view.accesses_per_file() == {"lookup": 1, "data": 2}
        assert view.num_rounds() == 3
