"""Tests for the sharded PIR layer (shard maps, sharded protocol, simulator)."""

import random

import pytest

from repro.costmodel import SystemSpec
from repro.exceptions import PirError
from repro.pir import (
    AccessTrace,
    ShardMap,
    ShardedPir,
    ShardedPirSimulator,
    TwoServerXorPir,
    UsablePirSimulator,
)


def make_blocks(count=20, size=16, seed=0):
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(count)]


class TestShardMap:
    @pytest.mark.parametrize("strategy", ["round-robin", "range"])
    @pytest.mark.parametrize("num_blocks,num_shards", [(10, 3), (7, 7), (16, 4), (5, 1), (9, 2)])
    def test_locate_global_roundtrip(self, strategy, num_blocks, num_shards):
        shard_map = ShardMap(num_blocks, num_shards, strategy)
        seen = set()
        for index in range(num_blocks):
            shard, local = shard_map.locate(index)
            assert 0 <= shard < num_shards
            assert shard_map.global_index(shard, local) == index
            seen.add((shard, local))
        assert len(seen) == num_blocks  # the mapping is a bijection

    @pytest.mark.parametrize("strategy", ["round-robin", "range"])
    def test_shard_sizes_balanced(self, strategy):
        shard_map = ShardMap(11, 4, strategy)
        sizes = shard_map.shard_sizes()
        assert sum(sizes) == 11
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("strategy", ["round-robin", "range"])
    def test_split_matches_locate(self, strategy):
        blocks = make_blocks(13)
        shard_map = ShardMap(13, 3, strategy)
        split = shard_map.split(blocks)
        for index, block in enumerate(blocks):
            shard, local = shard_map.locate(index)
            assert split[shard][local] == block

    def test_range_shards_are_contiguous(self):
        shard_map = ShardMap(10, 3, "range")
        shards = [shard_map.shard_of(index) for index in range(10)]
        assert shards == sorted(shards)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(PirError):
            ShardMap(0, 1)
        with pytest.raises(PirError):
            ShardMap(4, 0)
        with pytest.raises(PirError):
            ShardMap(4, 2, "hash")
        shard_map = ShardMap(4, 2)
        with pytest.raises(PirError):
            shard_map.locate(4)
        with pytest.raises(PirError):
            shard_map.global_index(2, 0)


class TestShardedPir:
    @pytest.mark.parametrize("strategy", ["round-robin", "range"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_retrieve_matches_blocks(self, strategy, num_shards):
        blocks = make_blocks(23)
        pir = ShardedPir(blocks, num_shards, strategy=strategy)
        rng = random.Random(7)
        indices = [rng.randrange(len(blocks)) for _ in range(40)]
        assert pir.retrieve_many(indices) == [blocks[index] for index in indices]
        assert pir.retrieve(11) == blocks[11]
        assert pir.num_blocks == 23
        assert pir.num_shards == num_shards

    def test_sub_batches_answered_independently(self):
        # each shard's underlying protocol must see only its own sub-batch
        blocks = make_blocks(12)
        pir = ShardedPir(blocks, 3, log_queries=True)
        pir.retrieve_many(list(range(12)))
        for shard in pir.shards:
            assert len(shard.server_a.queries_seen) == 4

    def test_custom_protocol_factory(self):
        blocks = make_blocks(8)
        made = []

        def factory(shard_blocks):
            protocol = TwoServerXorPir(shard_blocks)
            made.append(protocol)
            return protocol

        pir = ShardedPir(blocks, 2, protocol_factory=factory)
        assert len(made) == 2
        assert pir.retrieve_many([0, 7]) == [blocks[0], blocks[7]]

    def test_invalid_configuration_rejected(self):
        blocks = make_blocks(4)
        with pytest.raises(PirError):
            ShardedPir(blocks, 5)  # a shard would be empty
        pir = ShardedPir(blocks, 2)
        with pytest.raises(PirError):
            pir.retrieve(4)
        with pytest.raises(PirError):
            pir.retrieve_many([0, -1])


@pytest.fixture(scope="module")
def ci_database():
    from repro.network import random_planar_network
    from repro.schemes import ConciseIndexScheme

    network = random_planar_network(120, seed=3)
    scheme = ConciseIndexScheme.build(network, spec=SystemSpec(page_size=256))
    return scheme.database, scheme.spec


class TestShardedPirSimulator:
    @pytest.mark.parametrize("strategy", ["round-robin", "range"])
    def test_identical_to_unsharded_simulator(self, ci_database, strategy):
        database, spec = ci_database
        base = UsablePirSimulator(database, spec=spec, enforce_limits=False)
        sharded = ShardedPirSimulator(
            database, spec=spec, enforce_limits=False, num_shards=4, strategy=strategy
        )
        base_trace, sharded_trace = AccessTrace(), AccessTrace()
        base_trace.begin_round()
        sharded_trace.begin_round()
        for file_name in database.file_names():
            for page in range(database.file(file_name).num_pages):
                assert base.retrieve_page(file_name, page, base_trace) == \
                    sharded.retrieve_page(file_name, page, sharded_trace)
        assert base_trace.adversary_view() == sharded_trace.adversary_view()
        assert base_trace.private_page_requests() == sharded_trace.private_page_requests()
        assert base.simulated_pir_time_s == sharded.simulated_pir_time_s

    def test_every_page_owned_by_exactly_one_shard(self, ci_database):
        database, spec = ci_database
        sharded = ShardedPirSimulator(
            database, spec=spec, enforce_limits=False, num_shards=3
        )
        for counts in sharded.shard_page_counts():
            assert all(owned > 0 for owned in counts.values())
        for file_name in database.file_names():
            num_pages = database.file(file_name).num_pages
            owned_total = sum(
                counts.get(file_name, 0) for counts in sharded.shard_page_counts()
            )
            assert owned_total == num_pages

    def test_batched_retrieval_matches_sequential(self, ci_database):
        database, spec = ci_database
        base = UsablePirSimulator(database, spec=spec, enforce_limits=False)
        sharded = ShardedPirSimulator(
            database, spec=spec, enforce_limits=False, num_shards=4
        )
        num_pages = database.file("data").num_pages
        pages = [index % num_pages for index in range(2 * num_pages + 3)]
        base_trace, sharded_trace = AccessTrace(), AccessTrace()
        base_trace.begin_round()
        sharded_trace.begin_round()
        assert sharded.retrieve_pages("data", pages, sharded_trace) == \
            base.retrieve_pages("data", pages, base_trace)
        assert base_trace.private_page_requests() == sharded_trace.private_page_requests()
        assert sum(sharded.shard_load()) == len(pages)

    def test_shard_load_tracks_serving(self, ci_database):
        database, spec = ci_database
        sharded = ShardedPirSimulator(
            database, spec=spec, enforce_limits=False, num_shards=2
        )
        assert sharded.shard_load() == [0, 0]
        sharded.retrieve_page("data", 0)
        sharded.retrieve_page("data", 1)
        assert sum(sharded.shard_load()) == 2

    def test_out_of_range_page_rejected(self, ci_database):
        database, spec = ci_database
        sharded = ShardedPirSimulator(
            database, spec=spec, enforce_limits=False, num_shards=2
        )
        num_pages = database.file("data").num_pages
        with pytest.raises(PirError):
            sharded.retrieve_page("data", num_pages)
        with pytest.raises(PirError):
            sharded.retrieve_pages("data", [0, num_pages])

    def test_sharded_store_holds_no_page_copies(self, ci_database):
        # regression: ShardedPageStore used to materialize every shard's
        # pages into per-shard lists, duplicating the whole database in RAM;
        # it is now a pure index view over the backing page stores
        from repro.pir import ShardedPageStore

        database, _ = ci_database
        store = ShardedPageStore(database, num_shards=4)
        assert store.resident_page_bytes == 0
        # and it still serves real bytes, straight from the backing store
        page_file = database.file("data")
        local = store.locate("data", 0)[1]
        shard_of_page_zero = store.locate("data", 0)[0]
        assert store.read_local(shard_of_page_zero, "data", local) == page_file.read_page(0)
