"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    FileSizeLimitError,
    GraphError,
    NoPathError,
    PageOverflowError,
    PartitionError,
    PirError,
    PlanViolationError,
    ReproError,
    SchemeError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            GraphError,
            NoPathError,
            StorageError,
            PageOverflowError,
            PirError,
            FileSizeLimitError,
            PartitionError,
            SchemeError,
            PlanViolationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_specialisations(self):
        assert issubclass(NoPathError, GraphError)
        assert issubclass(PageOverflowError, StorageError)
        assert issubclass(FileSizeLimitError, PirError)
        assert issubclass(PlanViolationError, SchemeError)

    def test_no_path_error_carries_endpoints(self):
        error = NoPathError(3, 7)
        assert error.source == 3
        assert error.target == 7
        assert "3" in str(error) and "7" in str(error)

    def test_file_size_limit_error_carries_details(self):
        error = FileSizeLimitError("index", 4096, 1024)
        assert error.file_name == "index"
        assert error.size_bytes == 4096
        assert error.limit_bytes == 1024
        assert "index" in str(error)

    def test_single_except_clause_catches_all(self):
        with pytest.raises(ReproError):
            raise PlanViolationError("deviation")
