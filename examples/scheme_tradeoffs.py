#!/usr/bin/env python3
"""Compare the space/time trade-offs of CI, PI, HY and PI* on one network.

This reproduces, at example scale, the core trade-off of the paper's
evaluation: PI answers queries with very few PIR retrievals but needs a huge
network index; CI is tiny but must fetch ``m + 2`` region pages per query;
HY and PI* sit in between and expose a tuning knob each.

Run with:  python examples/scheme_tradeoffs.py
"""

from repro import (
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    HybridScheme,
    PassageIndexScheme,
    SystemSpec,
    random_planar_network,
)
from repro.bench import format_table, generate_workload, run_workload
from repro.partition import compute_border_nodes, packed_kdtree_partition
from repro.precompute import compute_border_products


def main() -> None:
    network = random_planar_network(num_nodes=500, seed=7)
    spec = SystemSpec(page_size=512)
    workload = generate_workload(network, count=15, seed=1)

    # Shared pre-computation: one partitioning and one border-node pass feed
    # CI, PI and HY (exactly how the benchmark harness builds them too).
    partitioning = packed_kdtree_partition(network, spec.page_size - 8)
    border_index = compute_border_nodes(network, partitioning)
    products = compute_border_products(
        network, partitioning, border_index, want_region_sets=True, want_subgraphs=True
    )
    shared = dict(partitioning=partitioning, border_index=border_index, products=products)

    threshold = max(2, products.max_region_set_size() // 3)
    schemes = [
        ConciseIndexScheme.build(network, spec=spec, **shared),
        PassageIndexScheme.build(network, spec=spec, **shared),
        HybridScheme.build(
            network,
            spec=spec,
            region_set_threshold=threshold,
            passage_subgraphs=products.passage_subgraphs,
            **shared,
        ),
        ClusteredPassageIndexScheme.build(network, spec=spec, cluster_pages=2),
    ]

    rows = []
    for scheme in schemes:
        summary = run_workload(scheme, workload)
        rows.append(
            {
                "scheme": scheme.name,
                "response_s": round(summary.mean_response_s, 2),
                "pir_s": round(summary.mean_pir_s, 2),
                "pages_per_query": round(sum(summary.mean_page_accesses.values()), 1),
                "storage_mb": round(summary.storage_mb, 3),
                "correct": summary.all_costs_correct,
                "indistinguishable": summary.indistinguishable,
            }
        )

    print(format_table(rows, "Space/time trade-offs (500-node network, 512-byte pages)"))
    print(
        "Reading the table: PI minimises PIR pages per query at the cost of the largest\n"
        "database; CI is the smallest database but pays m + 2 region-data retrievals per\n"
        "query; HY (threshold-tunable) and PI* (cluster-size-tunable) interpolate."
    )


if __name__ == "__main__":
    main()
