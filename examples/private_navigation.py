#!/usr/bin/env python3
"""Private navigation session: a commuter asks for routes to sensitive places.

The motivating scenario of the paper: the destinations a user routes to (a
clinic, a place of worship, a lawyer's office) reveal sensitive personal
information.  This example simulates a client who issues several such queries
against an LBS running the Passage Index (PI) scheme, and then shows that the
LBS's view of the "sensitive" queries is byte-for-byte identical to its view of
a completely innocuous query — it cannot even tell whether two queries were
the same.

For contrast, the same queries are answered with the prior-art obfuscation
approach (OBF), which leaks a candidate set containing the true endpoints.

Run with:  python examples/private_navigation.py
"""

from repro import ObfuscationScheme, PassageIndexScheme, SystemSpec, random_planar_network
from repro.privacy import views_identical


def main() -> None:
    network = random_planar_network(num_nodes=450, seed=11)
    spec = SystemSpec(page_size=512)
    scheme = PassageIndexScheme.build(network, spec=spec)
    print(
        f"LBS hosts a {scheme.storage_mb:.2f} MB PI database "
        f"({scheme.partitioning.num_regions} regions); every query follows the same "
        f"{scheme.plan.num_rounds}-round plan with {scheme.plan.total_pir_pages()} PIR retrievals.\n"
    )

    home = network.nearest_node(10.0, 10.0)
    clinic = network.nearest_node(85.0, 70.0)
    lawyer = network.nearest_node(30.0, 90.0)
    coffee = network.nearest_node(12.0, 14.0)

    labelled_queries = [
        ("home -> clinic      (sensitive)", home, clinic),
        ("home -> lawyer      (sensitive)", home, lawyer),
        ("home -> coffee shop (innocuous)", home, coffee),
        ("home -> clinic      (repeated) ", home, clinic),
    ]

    results = []
    for label, source, target in labelled_queries:
        result = scheme.query(source, target)
        results.append(result)
        print(
            f"{label}: cost {result.path.cost:7.2f}, {result.path.num_edges:3d} hops, "
            f"answered in {result.response.total_s:5.1f} s (simulated)"
        )

    identical = views_identical([result.adversary_view for result in results])
    print(
        "\nLBS view of all four queries identical:"
        f" {identical} — it cannot tell the clinic trip from the coffee run,"
        " nor detect that one query was repeated.\n"
    )

    # The obfuscation baseline, by contrast, hands the LBS a candidate set
    # that contains the true source and destination.
    obf = ObfuscationScheme(network, spec=spec, set_size=10, seed=3)
    obf_result = obf.query(home, clinic)
    print(
        "OBF baseline on the same clinic query: the LBS receives "
        f"{obf.set_size} candidate sources and {obf.set_size} candidate destinations "
        f"(the real ones among them), computes {obf_result.candidate_paths} paths and "
        f"responds in {obf_result.response.total_s:.1f} s — weaker privacy, "
        "comparable or worse latency at realistic set sizes."
    )


if __name__ == "__main__":
    main()
