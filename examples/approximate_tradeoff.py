#!/usr/bin/env python3
"""Approximate private routing: trading path optimality for index size.

The paper's future-work section suggests "approximate schemes with bounded
cost deviation from the actual shortest path" as a way to shrink the space
and time overheads.  This example builds the exact Passage Index (PI) and the
Approximate Passage Index (APX) for several deviation budgets on the same
network and reports, for each:

* the size of the network index file,
* the worst and average deviation actually observed over a query workload, and
* the fact that the privacy guarantee is untouched — the adversary view stays
  identical across all queries and all variants.

Run with:  python examples/approximate_tradeoff.py   (takes a few minutes; the
border-to-border pre-computation runs once per epsilon)
"""

import statistics

from repro import (
    ApproximatePassageIndexScheme,
    PassageIndexScheme,
    SystemSpec,
    measure_cost_deviation,
    random_planar_network,
)
from repro.bench import generate_workload
from repro.partition import compute_border_nodes, packed_kdtree_partition
from repro.privacy import check_indistinguishability
from repro.schemes import INDEX_FILE


def main() -> None:
    network = random_planar_network(num_nodes=350, seed=21)
    spec = SystemSpec(page_size=384)
    partitioning = packed_kdtree_partition(network, spec.page_size - 8)
    border_index = compute_border_nodes(network, partitioning)
    workload = generate_workload(network, count=25, seed=4)

    print(f"network: {network.num_nodes} nodes, {partitioning.num_regions} regions")

    exact = PassageIndexScheme.build(
        network, spec=spec, partitioning=partitioning, border_index=border_index
    )
    exact_pages = exact.database.file(INDEX_FILE).num_pages
    print(f"\nexact PI   : index = {exact_pages} pages, storage = {exact.storage_mb:.2f} MB")

    for epsilon in (0.0, 0.1, 0.25, 0.5):
        scheme = ApproximatePassageIndexScheme.build(
            network,
            epsilon=epsilon,
            spec=spec,
            partitioning=partitioning,
            border_index=border_index,
        )
        deviations = measure_cost_deviation(scheme, network, workload)
        results = [scheme.query(source, target) for source, target in workload[:10]]
        report = check_indistinguishability(results, scheme.plan)
        index_pages = scheme.database.file(INDEX_FILE).num_pages
        print(
            f"APX ε={epsilon:<4} : index = {index_pages} pages "
            f"({100.0 * index_pages / exact_pages:.1f}% of exact), "
            f"mean deviation = {statistics.mean(deviations):.4f}, "
            f"max = {max(deviations):.4f}, "
            f"guaranteed ≤ {scheme.deviation_bound:.2f}, "
            f"indistinguishable = {report.leaks_nothing}"
        )

    print(
        "\nThe adversary view never changes: the approximation only affects the"
        "\ncontent of the network index, not the number, order or size of the"
        "\nPIR retrievals the LBS observes."
    )


if __name__ == "__main__":
    main()
