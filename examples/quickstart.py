#!/usr/bin/env python3
"""Quickstart: build a private shortest-path service and ask it for a route.

This example walks through the full pipeline of the paper on a small synthetic
road network:

1. generate a road network,
2. build the Concise Index (CI) scheme — partitioning, border-node
   pre-computation, and the four database files hosted by the LBS,
3. run a few shortest-path queries through the PIR interface, and
4. show what the LBS (the adversary) actually observed.

Run with:  python examples/quickstart.py
"""

import time

from repro import ConciseIndexScheme, QueryEngine, SystemSpec, random_planar_network, shortest_path
from repro.privacy import adversary_transcript, check_indistinguishability


def main() -> None:
    # A synthetic road network standing in for a small city (the paper's
    # real datasets are not redistributable; see DESIGN.md).
    network = random_planar_network(num_nodes=600, seed=42)
    print(f"road network: {network.num_nodes} nodes, {network.num_edges} directed edges")

    # Table 2 hardware, scaled-down page so the small network still has many regions.
    spec = SystemSpec(page_size=512)
    scheme = ConciseIndexScheme.build(network, spec=spec)
    print(
        f"built {scheme.name}: {scheme.partitioning.num_regions} regions, "
        f"m = {scheme.max_region_set_size}, database = {scheme.storage_mb:.2f} MB"
    )
    print(f"query plan: {scheme.plan.num_rounds} rounds, "
          f"{scheme.plan.total_pir_pages()} PIR page retrievals per query\n")

    queries = [(3, 477), (120, 121), (58, 502)]
    results = []
    for source, target in queries:
        result = scheme.query(source, target)
        results.append(result)
        truth = shortest_path(network, source, target)
        print(f"shortest path {source} -> {target}:")
        print(f"  cost          = {result.path.cost:.2f}  (plain Dijkstra: {truth.cost:.2f})")
        print(f"  hops          = {result.path.num_edges}")
        print(f"  response time = {result.response.total_s:.1f} s "
              f"(PIR {result.response.pir_s:.1f} s, "
              f"communication {result.response.communication_s:.1f} s)")
        print(f"  PIR pages     = {result.total_pir_pages}\n")

    # What did the LBS learn?  Exactly the same event sequence for every query.
    report = check_indistinguishability(results, scheme.plan)
    print(f"adversary learned nothing (Theorem 1): {report.leaks_nothing}")
    transcript = adversary_transcript(results[0].adversary_view)
    print(f"adversary view of every query ({len(transcript)} events), first five:")
    for event in transcript[:5]:
        print(f"  round {event[0]}: {event[1]:6s} {event[2]}")

    # --- performance: the batched query engine -----------------------------
    # Workloads should run through the QueryEngine: queries execute under the
    # same fixed plan (privacy is untouched), but the decoded header and
    # region pages are shared through an LRU page cache, searches run on the
    # array-backed (CSR) fast path, and result verification is batched —
    # one Dijkstra over the compiled network per distinct source.
    engine = QueryEngine(scheme, cache_entries=256)
    workload = [(3, 477), (120, 121), (58, 502), (3, 121), (477, 58)]
    started = time.perf_counter()
    batch = engine.run_batch(workload)
    elapsed = time.perf_counter() - started
    print(f"\nbatched engine: {batch.num_queries} queries in {elapsed * 1000:.1f} ms "
          f"({batch.queries_per_second:.0f} queries/s of client-side work)")
    print(f"  all costs correct : {batch.all_costs_correct}")
    print(f"  indistinguishable : {batch.indistinguishable}")
    print(f"  page cache        : {batch.cache_hits} hits / {batch.cache_misses} misses "
          f"({batch.cache_hit_rate * 100:.0f}% hit rate)")


if __name__ == "__main__":
    main()
