#!/usr/bin/env python3
"""Demonstrate the PIR building blocks on a real (small) page file.

The paper treats PIR as a black box with proven guarantees.  This example
opens the box on a demonstration scale: it builds a small region-data file,
then retrieves one of its pages through

* the two-server information-theoretic XOR PIR, and
* the single-server computational PIR built on Paillier encryption,

showing in both cases that the retrieved page is bit-exact while the
individual server observes nothing that depends on the requested page number.

Run with:  python examples/oblivious_retrieval_demo.py   (takes ~10-30 s; the
Paillier arithmetic is intentionally unoptimised pure Python)
"""

from repro import SystemSpec, random_planar_network
from repro.partition import packed_kdtree_partition
from repro.pir import AdditivePirClient, TwoServerXorPir
from repro.schemes.files import build_region_data_file
from repro.storage import Database


def main() -> None:
    # Build a small region-data file exactly like the schemes do.
    network = random_planar_network(num_nodes=120, seed=5)
    spec = SystemSpec(page_size=256)
    partitioning = packed_kdtree_partition(network, spec.page_size - 8)
    database = Database(spec.page_size)
    data_file = build_region_data_file(database, network, partitioning, pages_per_region=1)
    pages = [data_file.read_page(number) for number in range(data_file.num_pages)]
    print(f"region data file: {len(pages)} pages of {spec.page_size} bytes")

    wanted = len(pages) // 2
    print(f"client wants page {wanted} (the region data of region {wanted})\n")

    # --- two-server information-theoretic PIR -------------------------------
    xor_pir = TwoServerXorPir(pages, log_queries=True)
    retrieved = xor_pir.retrieve(wanted)
    print("two-server XOR PIR:")
    print(f"  retrieved page matches original: {retrieved == pages[wanted]}")
    subset = xor_pir.server_a.queries_seen[-1]
    print(
        f"  server A only saw a random subset of {len(subset)} page indices "
        f"(contains the wanted page: {wanted in subset} — uninformative either way)\n"
    )

    # --- single-server computational PIR (Paillier) -------------------------
    # Smaller blocks keep the homomorphic arithmetic quick for the demo.
    small_blocks = [page[:64] for page in pages[:12]]
    additive_pir = AdditivePirClient(small_blocks, key_bits=512, chunk_bytes=32, log_queries=True)
    wanted_small = 7
    retrieved_small = additive_pir.retrieve(wanted_small)
    print("single-server Paillier PIR (64-byte blocks):")
    print(f"  retrieved block matches original: {retrieved_small == small_blocks[wanted_small]}")
    ciphertexts = additive_pir.server.queries_seen[-1]
    print(
        f"  server saw {len(ciphertexts)} Paillier ciphertexts as the selection vector; "
        "distinguishing the single Enc(1) from the Enc(0)s would break the "
        "decisional composite residuosity assumption."
    )


if __name__ == "__main__":
    main()
