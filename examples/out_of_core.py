"""Out-of-core PIR databases: build on disk, restart, and keep serving.

The storage layer hosts every page file on a pluggable ``PageStore``
backend — ``memory`` (the historical in-RAM behaviour), ``mmap`` (one
fixed-record binary file per page file, zero-copy reads) or ``sqlite``
(one indexed SQLite database per page file).  Backends are bit-identical:
same pages, same PIR retrievals, same query results and adversary views.

This demo walks the full out-of-core lifecycle:

1. build a CI scheme database directly onto SQLite (the builders stream
   pages to disk as they seal — the database never lives in RAM),
2. query it through the batch engine,
3. "restart": reopen the store files from disk and show they serve the
   same bytes,
4. stream a network far bigger than the demo needs through
   ``stream_node_database`` and read records back with O(1) residency.

Run with: ``PYTHONPATH=src python examples/out_of_core.py``
"""

import tempfile
from contextlib import closing
from pathlib import Path

from repro.bench.workloads import generate_workload
from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.network import random_planar_network, stream_grid_network
from repro.schemes import ConciseIndexScheme
from repro.storage import (
    iter_node_records,
    open_page_store,
    stream_node_database,
)


def main() -> None:
    network = random_planar_network(300, seed=5)
    pairs = generate_workload(network, count=12, seed=5)

    with tempfile.TemporaryDirectory(prefix="repro-ooc-demo-") as tmp:
        store_dir = Path(tmp) / "ci-db"
        store_dir.mkdir()

        print("== 1. build straight onto SQLite ==")
        scheme = ConciseIndexScheme.build(
            network,
            spec=SystemSpec(page_size=512),
            store_backend="sqlite",
            store_dir=store_dir,
        )
        files = sorted(path.name for path in store_dir.iterdir())
        print(f"  store files: {files}")
        print(f"  database: {scheme.database.total_size_mb:.2f} MB on "
              f"{scheme.database.store_backend!r}")

        print("\n== 2. serve a batch from disk ==")
        batch = QueryEngine(scheme).run_batch(pairs, verify_costs=True)
        print(f"  {batch.num_queries} queries, costs correct: "
              f"{batch.all_costs_correct}, indistinguishable: {batch.indistinguishable}")

        print("\n== 3. 'restart': reopen the page stores from disk ==")
        for name in scheme.database.file_names():
            live = scheme.database.file(name)
            with closing(
                open_page_store("sqlite", name, directory=store_dir, create=False)
            ) as reopened:
                identical = all(
                    reopened.get_page(n) == live.read_page(n)
                    for n in range(live.num_pages)
                )
            print(f"  {name:<8}: {live.num_pages:4d} pages, "
                  f"bit-identical after reopen: {identical}")

        print("\n== 4. stream a 40k-node grid through an mmap store ==")
        ooc_dir = Path(tmp) / "grid"
        ooc_dir.mkdir()
        database, count = stream_node_database(
            stream_grid_network(200, 200, seed=0),
            page_size=4096,
            store_backend="mmap",
            store_dir=ooc_dir,
            payload_pad=256,
        )
        pages = database.file("data").num_pages
        print(f"  {count} nodes -> {pages} pages "
              f"({pages * 4096 / 2**20:.0f} MB) in {list(ooc_dir.iterdir())[0].name}")
        head = [record[0] for _, record in zip(range(5), iter_node_records(database))]
        print(f"  first records stream back in order: {head}")
        database.close()

    print("\nSame code, three backends: pass store_backend=... (or repro-spc "
          "--store {memory,mmap,sqlite}),\nor set REPRO_STORE_BACKEND to "
          "re-home every scheme database without touching call sites.")


if __name__ == "__main__":
    main()
