"""Sharded PIR databases and process workers under the batch engine.

The engine scales along three independent axes, none of which changes query
results, traces or what the adversary observes:

* ``QueryEngine(shards=S)`` splits the PIR page store across ``S``
  independent sub-databases; every worker context owns its own shard
  connections (``repro-spc batch --shards S``);
* ``run_batch(workers=N)`` shards the batch across ``N`` worker contexts
  (``--workers N``);
* ``run_batch(worker_mode="process")`` ships the CPU-bound decode/assembly/
  search phase to a process pool (``--worker-mode process``).

This demo runs the same workload serial, sharded+threaded and
sharded+process, shows the results are identical, and then serves the
batch's PIR request stream through a real sharded two-server XOR PIR to
show where the throughput comes from: each retrieval only costs XOR work in
the owning shard, not the whole database.

Run with: ``PYTHONPATH=src python examples/sharded_batch.py``
"""

import time

from repro.bench.workloads import generate_hotspot_workload
from repro.costmodel import SystemSpec
from repro.engine import QueryEngine
from repro.network import random_planar_network
from repro.pir import ShardedPir, TwoServerXorPir
from repro.schemes import ConciseIndexScheme


def main() -> None:
    network = random_planar_network(400, seed=7)
    scheme = ConciseIndexScheme.build(network, spec=SystemSpec(page_size=256))
    pairs = generate_hotspot_workload(network, count=24, seed=7)

    print("== one batch, three execution plans ==")
    serial = QueryEngine(scheme).run_batch(pairs, verify_costs=False, pipeline=False)
    sharded = QueryEngine(scheme, shards=4).run_batch(pairs, verify_costs=False, workers=2)
    process = QueryEngine(scheme, shards=4).run_batch(
        pairs, verify_costs=False, workers=2, worker_mode="process"
    )
    for label, batch in (("serial", serial), ("4 shards x 2 threads", sharded),
                         ("4 shards x 2 processes", process)):
        print(f"  {label:<24}: {batch.num_queries} queries, "
              f"indistinguishable={batch.indistinguishable}")
    identical = all(
        a.path.nodes == b.path.nodes == c.path.nodes
        and a.adversary_view == b.adversary_view == c.adversary_view
        for a, b, c in zip(serial.results, sharded.results, process.results)
    )
    print(f"  results bit-identical across all plans: {identical}")

    print("\n== why sharding pays: the PIR serving bill ==")
    blocks = []
    offsets = {}
    for file_name in sorted(scheme.database.file_names()):
        offsets[file_name] = len(blocks)
        page_file = scheme.database.file(file_name)
        blocks.extend(page_file.read_page(n) for n in range(page_file.num_pages))
    stream = [
        offsets[file_name] + page
        for result in serial.results
        for _, file_name, page in result.trace.private_page_requests()
    ][:128]

    monolithic = TwoServerXorPir(blocks)
    split = ShardedPir(blocks, num_shards=4)
    started = time.perf_counter()
    answers_mono = monolithic.retrieve_many(stream)
    mono_s = time.perf_counter() - started
    started = time.perf_counter()
    answers_split = split.retrieve_many(stream)
    split_s = time.perf_counter() - started
    assert answers_mono == answers_split == [blocks[index] for index in stream]
    print(f"  database: {len(blocks)} pages; replayed {len(stream)} retrievals "
          "of the batch's private request stream")
    print(f"  monolithic database : {len(stream) / mono_s:8.0f} retrievals/s")
    print(f"  4 independent shards: {len(stream) / split_s:8.0f} retrievals/s "
          f"({mono_s / split_s:.1f}x)")
    print("\n  (the adversary additionally learns which shard each retrieval "
          "touched;\n   within a shard the PIR guarantee is unchanged)")


if __name__ == "__main__":
    main()
