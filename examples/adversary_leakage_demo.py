#!/usr/bin/env python3
"""What the LBS learns — with and without the paper's design rules.

Theorem 1 says a scheme leaks nothing as long as (i) all pages are fetched via
PIR and (ii) every query follows the same fixed plan.  This example mounts the
attacks that become possible when those rules are relaxed:

1. run queries through the real CI scheme and show the volume attack comes up
   empty (every query produces the identical adversary view);
2. simulate the same workload against an *unpadded* CI variant and show the
   attack now distinguishes queries and correlates their fetched volume with
   the source-destination distance (long trips fetch more region pages);
3. run the frequency attack against a space-transformation strawman, showing
   why pseudonymising pages without PIR leaves them re-identifiable.

Run with:  python examples/adversary_leakage_demo.py
"""

import random

from repro import ConciseIndexScheme, SystemSpec, random_planar_network
from repro.bench import generate_workload
from repro.partition import compute_border_nodes, packed_kdtree_partition
from repro.precompute import compute_border_products
from repro.privacy import (
    frequency_attack,
    observations_from_results,
    simulate_unpadded_volumes,
    volume_attack,
)


def main() -> None:
    network = random_planar_network(num_nodes=400, seed=11)
    spec = SystemSpec(page_size=384)
    partitioning = packed_kdtree_partition(network, spec.page_size - 8)
    border_index = compute_border_nodes(network, partitioning)
    products = compute_border_products(
        network, partitioning, border_index, want_region_sets=True, want_subgraphs=False
    )
    workload = generate_workload(network, count=30, seed=3)
    distances = [network.euclidean_distance(s, t) for s, t in workload]

    # --- 1. the padded, PIR-based scheme -------------------------------- #
    scheme = ConciseIndexScheme.build(
        network,
        spec=spec,
        partitioning=partitioning,
        border_index=border_index,
        products=products,
    )
    results = [scheme.query(source, target) for source, target in workload[:12]]
    padded_report = volume_attack(observations_from_results(results), distances[:12])
    print("With the fixed query plan (the paper's design):")
    print(f"  distinct adversary observations : {padded_report.distinct_observations}")
    print(f"  observation entropy             : {padded_report.observation_entropy_bits:.3f} bits")
    print(f"  leaks information?              : {padded_report.leaks_information}\n")

    # --- 2. the same workload without dummy padding --------------------- #
    unpadded = simulate_unpadded_volumes(products, partitioning, network, workload)
    unpadded_report = volume_attack(unpadded, distances)
    print("Without dummy padding (hypothetical, what the plan prevents):")
    print(f"  distinct adversary observations : {unpadded_report.distinct_observations}")
    print(f"  observation entropy             : {unpadded_report.observation_entropy_bits:.3f} bits")
    print(f"  distinguishable query pairs     : {100 * unpadded_report.distinguishable_pair_fraction:.0f}%")
    print(f"  volume-distance rank correlation: {unpadded_report.distance_rank_correlation:.2f}\n")

    # --- 3. frequency attack on a space-transformation strawman --------- #
    rng = random.Random(9)
    popularity = {f"poi-{index}": max(1, int(1000 / (index + 1))) for index in range(20)}
    observed = {
        item: max(1, int(count * rng.uniform(0.8, 1.2))) for item, count in popularity.items()
    }
    attack = frequency_attack(observed, popularity)
    print("Frequency attack on a pseudonymised (non-PIR) design:")
    print(
        f"  {attack.correctly_identified} of {attack.num_items} items re-identified "
        f"({100 * attack.identification_rate:.0f}%) purely from access frequencies."
    )
    print(
        "\nPIR removes the access frequencies altogether, and the fixed query plan"
        "\nremoves the volumes — which is exactly what Theorem 1 needs."
    )


if __name__ == "__main__":
    main()
