"""Command-line interface for the reproduction.

A small front end over the public API so the system can be exercised without
writing Python:

* ``repro-spc datasets`` — list the Table 1 dataset registry and its
  quick-profile stand-ins;
* ``repro-spc generate`` — write a seeded synthetic road network to a text
  file;
* ``repro-spc build`` — build one of the schemes on a dataset or network file,
  print its size/plan statistics, and optionally persist the LBS database to
  a directory;
* ``repro-spc query`` — build a scheme and answer one private shortest-path
  query, printing the path, the response-time decomposition and what the LBS
  observed;
* ``repro-spc batch`` — build a scheme and push a whole query workload
  through the batched :class:`~repro.engine.QueryEngine`, printing
  throughput, verification and page-cache statistics;
* ``repro-spc experiment`` — run one of the paper's table/figure experiments
  (or an extension ablation) and print the same rows the benchmark suite
  records;
* ``repro-spc serve`` — build a scheme and boot one asyncio PIR shard server
  per shard on loopback, printing the addresses clients connect to;
* ``repro-spc loadgen`` — boot a shard cluster and drive it with the
  open-loop load generator, printing sustained throughput and tail latency
  (optionally cross-checking engine results against in-process serving).

The module exposes :func:`main` taking an ``argv`` list so tests can drive it
without spawning processes.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from . import __version__
from .bench import (
    DATASETS,
    ablation_approximate,
    ablation_oram_mechanism,
    ablation_region_compression,
    fig5_lm_tuning,
    fig6_obfuscation,
    fig7_datasets,
    fig8_packing,
    fig9_compression,
    fig10_hybrid,
    fig11_clustered,
    fig12_larger,
    format_table,
    generate_workload,
    load_dataset,
    section4_full_materialization,
    system_spec_for,
    table1_datasets,
    table2_system,
    table3_components,
)
from .costmodel import SystemSpec
from .engine import QueryEngine
from .network import random_planar_network, read_network, write_network
from .privacy import adversary_transcript
from .schemes import (
    ApproximatePassageIndexScheme,
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    PassageIndexScheme,
)
from .storage import STORE_BACKENDS, save_database, store_backend_scope

#: Scheme name → builder accepting ``(network, spec, **cli_options)``.
_SCHEME_BUILDERS: Dict[str, Callable] = {
    "CI": lambda network, spec, **options: ConciseIndexScheme.build(network, spec=spec),
    "PI": lambda network, spec, **options: PassageIndexScheme.build(network, spec=spec),
    "PI*": lambda network, spec, **options: ClusteredPassageIndexScheme.build(
        network, spec=spec, cluster_pages=options.get("cluster_pages", 2)
    ),
    "APX": lambda network, spec, **options: ApproximatePassageIndexScheme.build(
        network, spec=spec, epsilon=options.get("epsilon", 0.1)
    ),
}

#: Experiment name → zero-argument callable returning report rows.
_EXPERIMENTS: Dict[str, Callable[[], List[dict]]] = {
    "table1": table1_datasets,
    "table2": table2_system,
    "table3": table3_components,
    "fig5": fig5_lm_tuning,
    "fig6": fig6_obfuscation,
    "fig7": fig7_datasets,
    "fig8": fig8_packing,
    "fig9": fig9_compression,
    "fig10": fig10_hybrid,
    "fig11": fig11_clustered,
    "fig12": fig12_larger,
    "section4": section4_full_materialization,
    "ablation-approximate": ablation_approximate,
    "ablation-compression": ablation_region_compression,
    "ablation-oram": ablation_oram_mechanism,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spc",
        description="Private shortest-path computation (VLDB 2012 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the Table 1 dataset registry")

    generate = commands.add_parser("generate", help="write a synthetic road network")
    generate.add_argument("--nodes", type=int, default=600, help="number of nodes")
    generate.add_argument("--seed", type=int, default=1, help="random seed")
    generate.add_argument("--output", required=True, help="output network file")

    build = commands.add_parser("build", help="build a scheme and report its statistics")
    _add_scheme_arguments(build)
    build.add_argument("--save", help="directory to persist the LBS database into")

    query = commands.add_parser("query", help="answer one private shortest-path query")
    _add_scheme_arguments(query)
    query.add_argument("--source", type=int, help="source node id (default: random)")
    query.add_argument("--target", type=int, help="target node id (default: random)")
    query.add_argument("--show-view", action="store_true", help="print the adversary view")

    batch = commands.add_parser(
        "batch", help="run a query workload through the batched query engine"
    )
    _add_scheme_arguments(batch)
    batch.add_argument("--queries", type=int, default=20, help="workload size")
    batch.add_argument("--seed", type=int, default=42, help="workload seed")
    batch.add_argument(
        "--cache-entries",
        type=int,
        default=512,
        help="page-cache capacity in decoded pages (0 disables caching, e.g. "
        "for measurement runs)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker contexts to shard the batch across (results are identical "
        "to serial execution)",
    )
    batch.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="run worker contexts as threads (pipelined retrieval/solve "
        "overlap) or processes (CPU-bound decode escapes the GIL); results "
        "are identical either way",
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the PIR page store across this many independent "
        "sub-databases; every worker context owns its own shard "
        "connections (results are identical for any shard count)",
    )
    batch.add_argument(
        "--pir-kernel",
        choices=("default", "off", "auto", "numpy", "bigint"),
        default="default",
        help="serve every PIR read through a real two-server XOR retrieval "
        "over the named packed server kernel; default picks numpy when "
        "numpy is importable and falls back to direct page reads "
        "otherwise, auto always picks the best available kernel, off "
        "forces direct reads — results are identical either way",
    )
    batch.add_argument(
        "--no-pipeline",
        action="store_true",
        help="disable overlapping PIR retrieval with client-side decode/search",
    )
    batch.add_argument(
        "--no-verify", action="store_true", help="skip true-cost verification"
    )

    experiment = commands.add_parser("experiment", help="run one table/figure experiment")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS), help="experiment to run")

    serve = commands.add_parser(
        "serve", help="boot PIR shard servers for a scheme's database"
    )
    _add_scheme_arguments(serve)
    _add_cluster_arguments(serve)
    serve.add_argument(
        "--run-seconds",
        type=float,
        default=None,
        help="serve for this long then drain and exit (default: serve until "
        "interrupted)",
    )

    loadgen = commands.add_parser(
        "loadgen", help="drive a shard cluster with the open-loop load generator"
    )
    _add_scheme_arguments(loadgen)
    _add_cluster_arguments(loadgen)
    loadgen.add_argument("--rate", type=float, default=500.0,
                         help="offered arrivals per second (open loop)")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="run length in seconds")
    loadgen.add_argument("--warmup", type=float, default=0.5,
                         help="seconds excluded from the measurement window")
    loadgen.add_argument("--connections", type=int, default=16,
                         help="client connections across all shards")
    loadgen.add_argument(
        "--client-procs",
        type=int,
        default=1,
        help="fork this many client processes, each offering its share of "
        "--rate on its own connections, so measured throughput is not "
        "capped by one client's GIL; reports aggregated p50/p99",
    )
    loadgen.add_argument("--seed", type=int, default=17, help="workload seed")
    loadgen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip per-retrieval verification of the returned page bytes",
    )
    loadgen.add_argument(
        "--check-engine",
        action="store_true",
        help="also run one engine batch against the cluster and require "
        "bit-identical results to in-process serving (exit 1 on mismatch)",
    )

    return parser


def _add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=2,
        help="shard servers to boot (one per database shard)",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "numpy", "bigint"),
        default="auto",
        help="packed XOR server kernel the shard servers answer with "
        "(auto picks numpy when available)",
    )
    parser.add_argument(
        "--answer-threads",
        type=int,
        default=1,
        help="kernel threads per shard server: large coalesced batches are "
        "split into concurrent kernel sub-calls (numpy releases the GIL), "
        "so one multicore host drives all shards; answers are bit-identical "
        "for any thread count",
    )


def _add_scheme_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=sorted(DATASETS), help="Table 1 stand-in dataset")
    source.add_argument("--network", help="road-network text file (see `generate`)")
    parser.add_argument(
        "--scheme", choices=sorted(_SCHEME_BUILDERS), default="CI", help="scheme to build"
    )
    parser.add_argument("--page-size", type=int, default=None, help="page size in bytes")
    parser.add_argument("--epsilon", type=float, default=0.1, help="APX deviation budget")
    parser.add_argument("--cluster-pages", type=int, default=2, help="PI* pages per region")
    parser.add_argument(
        "--store",
        choices=STORE_BACKENDS,
        default=None,
        help="page-store backend the database is built on: memory (default), "
        "mmap or sqlite (out-of-core; the build streams pages to disk)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="directory for the mmap/sqlite store files (default: a "
        "self-cleaning temporary directory)",
    )


def _load_network_and_spec(args: argparse.Namespace):
    if args.dataset:
        network = load_dataset(args.dataset)
        spec = system_spec_for("quick")
    else:
        network = read_network(args.network)
        spec = SystemSpec(page_size=512)
    if args.page_size:
        spec = spec.with_overrides(page_size=args.page_size)
    return network, spec


def _build_scheme(args: argparse.Namespace):
    network, spec = _load_network_and_spec(args)
    builder = _SCHEME_BUILDERS[args.scheme]
    if getattr(args, "store", None):
        # scope (rather than kwargs) so every builder — including the ones
        # without explicit store parameters — streams onto the backend
        with store_backend_scope(args.store, args.store_dir):
            return builder(
                network, spec=spec, epsilon=args.epsilon,
                cluster_pages=args.cluster_pages,
            )
    return builder(
        network, spec=spec, epsilon=args.epsilon, cluster_pages=args.cluster_pages
    )


def _command_datasets(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "label": spec.label,
            "paper_nodes": spec.paper_nodes,
            "paper_edges": spec.paper_edges,
            "quick_nodes": spec.quick_nodes,
        }
        for spec in DATASETS.values()
    ]
    print(format_table(rows, "Table 1 dataset registry"))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    network = random_planar_network(args.nodes, seed=args.seed)
    write_network(network, args.output)
    print(
        f"wrote {network.num_nodes} nodes / {network.num_edges} directed edges "
        f"to {args.output}"
    )
    return 0


def _command_build(args: argparse.Namespace) -> int:
    scheme = _build_scheme(args)
    print(f"scheme        : {scheme.name}")
    print(f"regions       : {scheme.partitioning.num_regions}")
    print(f"database      : {scheme.storage_mb:.3f} MB")
    print(f"query plan    : {scheme.plan.num_rounds} rounds, "
          f"{scheme.plan.total_pir_pages()} PIR pages per query")
    if scheme.database.store_backend != "memory":
        print(f"page store    : {scheme.database.store_backend} "
              f"({scheme.database.store_dir})")
    for name in sorted(scheme.database.file_names()):
        page_file = scheme.database.file(name)
        print(f"  file {name:<8}: {page_file.num_pages} pages "
              f"({page_file.utilization * 100:.1f}% utilised)")
    if args.save:
        manifest = save_database(scheme.database, args.save)
        print(f"database saved: {manifest}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    scheme = _build_scheme(args)
    if args.source is None or args.target is None:
        source, target = generate_workload(scheme.network, count=1, seed=11)[0]
    else:
        source, target = args.source, args.target
    result = scheme.query(source, target)
    print(f"query         : {source} -> {target}  ({scheme.name})")
    print(f"path cost     : {result.path.cost:.3f}  ({result.path.num_edges} edges)")
    print(f"path nodes    : {' '.join(str(node) for node in result.path.nodes[:12])}"
          f"{' ...' if len(result.path.nodes) > 12 else ''}")
    response = result.response
    print(f"response time : {response.total_s:.2f} s  "
          f"(PIR {response.pir_s:.2f} s, link {response.communication_s:.2f} s, "
          f"client {response.client_s:.4f} s)")
    print(f"PIR accesses  : {result.pages_per_file}")
    if args.show_view:
        for round_number, kind, file_name in adversary_transcript(result.adversary_view):
            label = file_name if file_name else "(header)"
            print(f"  round {round_number}: {kind:<6} {label}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    if args.queries <= 0:
        print(f"error: --queries must be positive, got {args.queries}", file=sys.stderr)
        return 2
    if args.cache_entries < 0:
        print(
            f"error: --cache-entries must be non-negative, got {args.cache_entries} "
            "(0 disables caching)",
            file=sys.stderr,
        )
        return 2
    if args.workers <= 0:
        print(f"error: --workers must be positive, got {args.workers}", file=sys.stderr)
        return 2
    if args.shards <= 0:
        print(f"error: --shards must be positive, got {args.shards}", file=sys.stderr)
        return 2
    scheme = _build_scheme(args)
    pairs = generate_workload(scheme.network, count=args.queries, seed=args.seed)
    engine = QueryEngine(
        scheme,
        cache_entries=args.cache_entries,
        shards=args.shards,
        pir_kernel=args.pir_kernel,
    )
    batch = engine.run_batch(
        pairs,
        verify_costs=not args.no_verify,
        workers=args.workers,
        pipeline=not args.no_pipeline,
        worker_mode=args.worker_mode,
    )
    print(f"scheme          : {scheme.name}")
    print(f"queries         : {batch.num_queries}")
    print(f"workers         : {batch.workers}"
          f"{' (pipelined)' if batch.worker_mode == 'thread' and not args.no_pipeline else ''}")
    print(f"worker mode     : {batch.worker_mode}")
    if batch.shards > 1:
        print(f"pir shards      : {batch.shards}")
    if batch.store_backend != "memory":
        print(f"page store      : {batch.store_backend}")
    if batch.pir_kernel is not None:
        print(f"xor kernel      : {batch.pir_kernel}")
    print(f"wall time       : {batch.wall_seconds:.3f} s "
          f"({batch.queries_per_second:.1f} queries/s)")
    print(f"mean response   : {batch.mean_response_s:.2f} s (simulated)")
    if batch.true_costs is not None:
        print(f"costs correct   : {batch.all_costs_correct}")
    print(f"indistinguishable: {batch.indistinguishable}")
    print(f"page cache      : {batch.cache_hits} hits / {batch.cache_misses} misses "
          f"({batch.cache_hit_rate * 100:.1f}% hit rate)")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    rows = _EXPERIMENTS[args.name]()
    print(format_table(rows, f"experiment: {args.name}"))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.shards <= 0:
        print(f"error: --shards must be positive, got {args.shards}", file=sys.stderr)
        return 2
    if args.answer_threads <= 0:
        print(f"error: --answer-threads must be positive, got "
              f"{args.answer_threads}", file=sys.stderr)
        return 2
    from .serving import ShardCluster

    scheme = _build_scheme(args)
    with ShardCluster(
        scheme.database, num_shards=args.shards, kernel=args.kernel,
        answer_threads=args.answer_threads,
    ) as cluster:
        print(f"scheme        : {scheme.name}")
        print(f"serving       : {args.shards} shard server(s), "
              f"kernel {cluster.servers[0].kernel}, "
              f"{args.answer_threads} answer thread(s)")
        for shard_id, (host, port) in enumerate(cluster.addresses):
            print(f"  shard {shard_id}: {host}:{port}")
        try:
            if args.run_seconds is not None:
                time.sleep(args.run_seconds)
            else:  # pragma: no cover - interactive mode
                while True:
                    time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
        print("draining and shutting down")
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    if args.shards <= 0:
        print(f"error: --shards must be positive, got {args.shards}", file=sys.stderr)
        return 2
    if args.rate <= 0 or args.duration <= 0 or args.warmup < 0:
        print("error: --rate/--duration must be positive and --warmup "
              "non-negative", file=sys.stderr)
        return 2
    if args.warmup >= args.duration:
        print("error: --warmup must be shorter than --duration", file=sys.stderr)
        return 2
    if args.answer_threads <= 0 or args.client_procs <= 0:
        print("error: --answer-threads/--client-procs must be positive",
              file=sys.stderr)
        return 2
    from .serving import ShardCluster, run_loadgen_multiproc

    scheme = _build_scheme(args)
    with ShardCluster(
        scheme.database, num_shards=args.shards, kernel=args.kernel,
        answer_threads=args.answer_threads,
    ) as cluster:
        report = run_loadgen_multiproc(
            cluster.addresses,
            scheme.database,
            rate=args.rate,
            duration_s=args.duration,
            warmup_s=args.warmup,
            connections=args.connections,
            seed=args.seed,
            verify=not args.no_verify,
            client_procs=args.client_procs,
        )
        report.shard_stats = cluster.stats()
        print(f"scheme        : {scheme.name}")
        print(f"file          : {report.file_name}")
        for line in report.summary_lines():
            print(line)
        if report.mismatches or report.errors:
            print("error: the load run returned wrong bytes or server errors",
                  file=sys.stderr)
            return 1
        if args.check_engine:
            pairs = generate_workload(scheme.network, count=8, seed=args.seed)
            baseline = QueryEngine(scheme).run_batch(pairs, verify_costs=False)
            with QueryEngine(scheme, serving=cluster) as engine:
                remote = engine.run_batch(pairs, verify_costs=False)
            fingerprint = lambda batch: [
                (result.path.nodes, result.path.cost, result.trace.adversary_view())
                for result in batch.results
            ]
            if fingerprint(remote) != fingerprint(baseline):
                print("error: remote engine batch differs from in-process "
                      "serving", file=sys.stderr)
                return 1
            print("engine check  : remote results bit-identical to in-process")
    return 0


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "datasets": _command_datasets,
    "generate": _command_generate,
    "build": _command_build,
    "query": _command_query,
    "batch": _command_batch,
    "experiment": _command_experiment,
    "serve": _command_serve,
    "loadgen": _command_loadgen,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
