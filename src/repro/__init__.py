"""repro — reproduction of "Shortest Path Computation with No Information Leakage".

The package implements the paper's PIR-based framework for answering shortest
path queries at an untrusted location-based service without leaking anything
about the query: the road-network and storage substrates, the PIR / secure
co-processor layer, the network partitioning and pre-computation machinery,
the CI / PI / HY / PI* schemes and the LM / AF / OBF baselines, the privacy
model, and a benchmark harness that regenerates the paper's evaluation.

Quick start::

    from repro import random_planar_network, ConciseIndexScheme, SystemSpec

    network = random_planar_network(600, seed=1)
    spec = SystemSpec(page_size=512)
    scheme = ConciseIndexScheme.build(network, spec=spec)
    result = scheme.query(0, 137)
    print(result.path.cost, result.response.total_s)
"""

from .costmodel import DEFAULT_SPEC, CostModel, ResponseTime, SystemSpec
from .engine import BatchResult, LruCache, QueryEngine
from .exceptions import (
    FileSizeLimitError,
    GraphError,
    NoPathError,
    PageOverflowError,
    PartitionError,
    PirError,
    PlanViolationError,
    ReproError,
    SchemeError,
    StorageError,
)
from .network import (
    CsrGraph,
    Path,
    RoadNetwork,
    astar_search,
    bidirectional_dijkstra,
    build_csr,
    csr_for,
    dijkstra_tree,
    grid_network,
    random_planar_network,
    read_network,
    shortest_path,
    shortest_path_cost,
    write_network,
)
from .partition import (
    Partitioning,
    compute_border_nodes,
    packed_kdtree_partition,
    plain_kdtree_partition,
)
from .pir import (
    AccessTrace,
    AdditivePirClient,
    AdversaryView,
    OramBackedPir,
    SecureCoprocessor,
    ShardedPir,
    ShardedPirSimulator,
    SquareRootOram,
    TwoServerXorPir,
    UsablePirSimulator,
)
from .precompute import (
    build_arc_flags,
    build_landmark_index,
    compute_approximate_passage_subgraphs,
    compute_border_products,
)
from .privacy import check_indistinguishability, views_identical
from .schemes import (
    ApproximatePassageIndexScheme,
    ArcFlagScheme,
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    HybridScheme,
    LandmarkScheme,
    ObfuscationScheme,
    PassageIndexScheme,
    QueryPlan,
    QueryResult,
    Scheme,
    measure_cost_deviation,
)
from .storage import Database, Page, PageFile

__version__ = "1.0.0"

__all__ = [
    "AccessTrace",
    "AdditivePirClient",
    "AdversaryView",
    "ApproximatePassageIndexScheme",
    "ArcFlagScheme",
    "BatchResult",
    "ClusteredPassageIndexScheme",
    "ConciseIndexScheme",
    "CostModel",
    "CsrGraph",
    "DEFAULT_SPEC",
    "Database",
    "FileSizeLimitError",
    "GraphError",
    "HybridScheme",
    "LandmarkScheme",
    "LruCache",
    "NoPathError",
    "ObfuscationScheme",
    "OramBackedPir",
    "Page",
    "PageFile",
    "PageOverflowError",
    "PartitionError",
    "Partitioning",
    "PassageIndexScheme",
    "Path",
    "PirError",
    "PlanViolationError",
    "QueryEngine",
    "QueryPlan",
    "QueryResult",
    "ReproError",
    "ResponseTime",
    "RoadNetwork",
    "Scheme",
    "SchemeError",
    "SecureCoprocessor",
    "ShardedPir",
    "ShardedPirSimulator",
    "SquareRootOram",
    "StorageError",
    "SystemSpec",
    "TwoServerXorPir",
    "UsablePirSimulator",
    "astar_search",
    "bidirectional_dijkstra",
    "build_arc_flags",
    "build_csr",
    "build_landmark_index",
    "check_indistinguishability",
    "compute_approximate_passage_subgraphs",
    "compute_border_nodes",
    "compute_border_products",
    "csr_for",
    "dijkstra_tree",
    "grid_network",
    "measure_cost_deviation",
    "packed_kdtree_partition",
    "plain_kdtree_partition",
    "random_planar_network",
    "read_network",
    "shortest_path",
    "shortest_path_cost",
    "views_identical",
    "write_network",
    "__version__",
]
