"""Array-backed (CSR) graph core: the search fast path.

:class:`CsrGraph` compiles a :class:`~repro.network.graph.RoadNetwork` into
contiguous integer node ids with flat adjacency/weight arrays (``array``
module).  The public search functions in :mod:`repro.network.dijkstra` and
:mod:`repro.network.astar` compile the network once (cached on the network
object, keyed by its node/edge counts — networks are append-only) and run on
this representation, avoiding the per-step dict lookups, method calls and
tuple churn of the reference implementations.

The module-level search routines here operate purely on dense ids and return
raw arrays/lists; the compatibility wrappers translate back to the public
``ShortestPathTree``/``Path`` vocabulary.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Callable, List, Optional, Set, Tuple

from ..exceptions import GraphError, NoPathError
from .graph import NodeId, RoadNetwork
from .paths import Path, SearchStats

_INF = math.inf

#: Below this many nodes the pure-Python core beats the SciPy call overhead
#: (per-query scheme subgraphs are far smaller than this; the full road
#: networks of the benchmarks are far larger).
SCIPY_MIN_NODES = 256


class CsrGraph:
    """A road network compiled to compressed-sparse-row form.

    Nodes are renumbered to the dense range ``0 .. num_nodes - 1`` (in the
    network's insertion order).  The out-edges of dense node ``u`` occupy the
    slice ``offsets[u]:offsets[u + 1]`` of the flat ``targets``/``weights``
    arrays.  Coordinates live in the parallel ``xs``/``ys`` arrays.
    """

    __slots__ = (
        "node_ids",
        "offsets",
        "targets",
        "weights",
        "xs",
        "ys",
        "heuristic_safe",
        "_index_of",
        "_adjacency",
        "_reverse",
        "_scipy_matrix",
        "_identity_ids",
    )

    def __init__(
        self,
        node_ids: List[NodeId],
        offsets: array,
        targets: array,
        weights: array,
        xs: array,
        ys: array,
        index_of: Optional[dict] = None,
        heuristic_safe: bool = True,
    ) -> None:
        self.node_ids = node_ids
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.xs = xs
        self.ys = ys
        #: False when some coordinates are placeholders (e.g. passage nodes
        #: whose real position is unknown to the client); geometric A*
        #: heuristics are inadmissible on such graphs.
        self.heuristic_safe = heuristic_safe
        self._index_of = (
            index_of
            if index_of is not None
            else {node_id: dense for dense, node_id in enumerate(node_ids)}
        )
        self._adjacency: Optional[List[Tuple[Tuple[float, int], ...]]] = None
        self._reverse: Optional["CsrGraph"] = None
        self._scipy_matrix = None
        self._identity_ids: Optional[bool] = None

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, network: RoadNetwork) -> "CsrGraph":
        """Compile ``network`` into CSR form."""
        node_ids = list(network.node_ids())
        index_of = {node_id: dense for dense, node_id in enumerate(node_ids)}
        offsets = array("q", [0])
        targets = array("q")
        weights = array("d")
        xs = array("d")
        ys = array("d")
        for node_id in node_ids:
            node = network.node(node_id)
            xs.append(node.x)
            ys.append(node.y)
            for neighbor, weight in network.neighbors(node_id):
                targets.append(index_of[neighbor])
                weights.append(weight)
            offsets.append(len(targets))
        return cls(
            node_ids,
            offsets,
            targets,
            weights,
            xs,
            ys,
            index_of,
            heuristic_safe=getattr(network, "heuristic_safe", True),
        )

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def dense_id(self, node_id: NodeId) -> int:
        """Map an original node id to its dense id; unknown ids are an error."""
        try:
            return self._index_of[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def original_id(self, dense: int) -> NodeId:
        return self.node_ids[dense]

    @property
    def identity_ids(self) -> bool:
        """True when dense and original ids coincide (ids were 0..n-1 in order)."""
        if self._identity_ids is None:
            self._identity_ids = self.node_ids == list(range(len(self.node_ids)))
        return self._identity_ids

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._index_of

    def adjacency(self) -> List[Tuple[Tuple[float, int], ...]]:
        """Per-node ``((weight, dense_target), ...)`` tuples for the hot loops.

        Built lazily from the flat arrays the first time a search runs, so
        the boxed tuples are paid for once per compiled graph rather than
        once per relaxed edge.
        """
        adjacency = self._adjacency
        if adjacency is None:
            offsets, targets, weights = self.offsets, self.targets, self.weights
            adjacency = [
                tuple(zip(weights[offsets[u]:offsets[u + 1]], targets[offsets[u]:offsets[u + 1]]))
                for u in range(len(self.node_ids))
            ]
            self._adjacency = adjacency
        return adjacency

    def reverse(self) -> "CsrGraph":
        """The transposed graph (cached); shares node ids and coordinates."""
        if self._reverse is None:
            n = len(self.node_ids)
            offsets, targets, weights = self.offsets, self.targets, self.weights
            reverse_lists: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
            for u in range(n):
                for k in range(offsets[u], offsets[u + 1]):
                    reverse_lists[targets[k]].append((weights[k], u))
            roffsets = array("q", [0])
            rtargets = array("q")
            rweights = array("d")
            for edges in reverse_lists:
                for weight, target in edges:
                    rtargets.append(target)
                    rweights.append(weight)
                roffsets.append(len(rtargets))
            reverse = CsrGraph(
                self.node_ids,
                roffsets,
                rtargets,
                rweights,
                self.xs,
                self.ys,
                self._index_of,
                heuristic_safe=self.heuristic_safe,
            )
            reverse._adjacency = [tuple(edges) for edges in reverse_lists]
            reverse._reverse = self
            self._reverse = reverse
        return self._reverse

    def scipy_csgraph(self):
        """The graph as a ``scipy.sparse.csr_matrix`` (cached), or ``None``.

        Built directly from the flat CSR arrays (no copies, no coordinate
        round trip).  Parallel edges stay as duplicate column entries in the
        row, which the ``csgraph`` routines relax independently — the
        cheapest one wins, exactly like the pure-Python core.  Returns
        ``None`` when SciPy is not installed; callers fall back to the
        pure-Python core.
        """
        if self._scipy_matrix is None:
            modules = _scipy_modules()
            if modules is None:
                return None
            np, csr_matrix, _ = modules
            n = len(self.node_ids)
            self._scipy_matrix = csr_matrix(
                (
                    np.asarray(self.weights),
                    np.asarray(self.targets),
                    np.asarray(self.offsets),
                ),
                shape=(n, n),
            )
        return self._scipy_matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrGraph(nodes={self.num_nodes}, edges={self.num_edges})"


class CsrBuilder:
    """Builds a :class:`CsrGraph` directly from client-retrieved network data.

    The querying client assembles its search graph from (i) decoded region
    payloads — ``{node_id: (x, y, [(neighbor, weight), ...])}`` mappings, the
    output of :func:`repro.partition.decode_region_payload` — and (ii), for
    the PI-family schemes, the weighted edges of a passage-subgraph index
    entry.  This builder interns node ids and appends edges straight into the
    flat CSR arrays, skipping the dict-based :class:`RoadNetwork`
    intermediate entirely.

    The assembly semantics are exactly those of the dict-merge reference path
    (:func:`repro.partition.merge_region_payloads` followed by
    ``subgraph_from_entry``), so searches over the built graph return
    identical paths:

    * a node appearing in several payloads keeps its first-seen position in
      the dense-id order but takes the coordinates and adjacency of the
      *last* payload that carried it;
    * payload adjacency edges whose head lies outside the union of the
      payloads are dropped;
    * passage edges are appended after all payload edges, skipping ``(u, v)``
      pairs for which any edge already exists; endpoints absent from every
      payload are interned at placeholder coordinates ``(0, 0)`` and mark the
      built graph ``heuristic_safe=False``.
    """

    __slots__ = ("_payload_nodes", "_extra_nodes", "_extra_adjacency", "heuristic_safe")

    def __init__(self) -> None:
        self._payload_nodes: dict = {}
        self._extra_nodes: List[NodeId] = []
        self._extra_adjacency: dict = {}
        self.heuristic_safe = True

    def add_payload(self, payload) -> "CsrBuilder":
        """Merge one decoded region payload (``{node: (x, y, adjacency)}``).

        The payload mapping and its value tuples are only read, never
        mutated, so cached decode results can be shared between builders.
        """
        self._payload_nodes.update(payload)
        return self

    def add_edges(self, edges) -> "CsrBuilder":
        """Append passage-subgraph edges ``(u, v, weight)``.

        Must be called after every payload has been added (edge filtering and
        duplicate detection are defined against the payload node set, exactly
        like the reference path, which builds the merged graph first).
        """
        payload_nodes = self._payload_nodes
        extra_adjacency = self._extra_adjacency
        for u, v, weight in edges:
            for endpoint in (u, v):
                if endpoint not in payload_nodes and endpoint not in extra_adjacency:
                    self._extra_nodes.append(endpoint)
                    extra_adjacency[endpoint] = []
                    self.heuristic_safe = False
            if not self._has_edge(u, v):
                extra_adjacency.setdefault(u, []).append((v, float(weight)))
        return self

    def _has_edge(self, u: NodeId, v: NodeId) -> bool:
        payload_nodes = self._payload_nodes
        info = payload_nodes.get(u)
        if info is not None:
            for neighbor, _ in info[2]:
                if neighbor == v and neighbor in payload_nodes:
                    return True
        for neighbor, _ in self._extra_adjacency.get(u, ()):
            if neighbor == v:
                return True
        return False

    def build(self) -> CsrGraph:
        """Compile the accumulated data into a :class:`CsrGraph`."""
        payload_nodes = self._payload_nodes
        extra_adjacency = self._extra_adjacency
        node_ids: List[NodeId] = list(payload_nodes)
        node_ids.extend(self._extra_nodes)
        index_of = {node_id: dense for dense, node_id in enumerate(node_ids)}
        # accumulate in plain lists and convert in bulk: the C-level array
        # constructor beats per-element array.append on the hot path
        offset_list: List[int] = [0]
        target_list: List[int] = []
        weight_list: List[float] = []
        x_list: List[float] = []
        y_list: List[float] = []
        for node_id in node_ids:
            info = payload_nodes.get(node_id)
            if info is not None:
                x, y, adjacency = info
                x_list.append(x)
                y_list.append(y)
                for neighbor, weight in adjacency:
                    if neighbor in payload_nodes:
                        target_list.append(index_of[neighbor])
                        weight_list.append(weight)
            else:
                x_list.append(0.0)
                y_list.append(0.0)
            for neighbor, weight in extra_adjacency.get(node_id, ()):
                target_list.append(index_of[neighbor])
                weight_list.append(weight)
            offset_list.append(len(target_list))
        return CsrGraph(
            node_ids,
            array("q", offset_list),
            array("q", target_list),
            array("d", weight_list),
            array("d", x_list),
            array("d", y_list),
            index_of,
            heuristic_safe=self.heuristic_safe,
        )


def _flat_point_to_point(
    csr: CsrGraph,
    source: int,
    target: int,
    stats: Optional[SearchStats] = None,
) -> Tuple[List[float], List[int]]:
    """Early-terminating Dijkstra straight over the flat CSR arrays.

    Identical relaxation order (and therefore identical tie-breaking and
    parents along the returned path) to ``dijkstra_arrays`` with a
    single-target set, but without materialising the boxed per-node adjacency
    tuples — for one-shot searches over freshly assembled query subgraphs the
    materialisation costs more than the search itself.
    """
    offsets, targets, weights = csr.offsets, csr.targets, csr.weights
    n = len(csr.node_ids)
    dist = [_INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push, pop = heapq.heappush, heapq.heappop
    track = stats is not None
    node_ids = csr.node_ids

    while heap:
        d, u = pop(heap)
        if d > dist[u]:  # stale heap entry; u already settled cheaper
            continue
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        if u == target:
            break
        for k in range(offsets[u], offsets[u + 1]):
            v = targets[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                if track:
                    stats.relaxed_edges += 1
    return dist, parent


def csr_shortest_path(
    csr: CsrGraph,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Point-to-point shortest path over an already-built :class:`CsrGraph`.

    The CSR-native twin of :func:`repro.network.dijkstra.shortest_path`:
    identical core selection (SciPy's C implementation for large stat-less
    searches, the pure-Python early-terminating core otherwise), identical
    tie-breaking, and a :class:`~repro.network.paths.Path` of *original* node
    ids.  Raises :class:`~repro.exceptions.NoPathError` when the target is
    unreachable and :class:`~repro.exceptions.GraphError` on unknown ids.
    """
    if source == target:
        csr.dense_id(source)  # validates the id exists
        return Path((source,), 0.0)
    dense_source = csr.dense_id(source)
    dense_target = csr.dense_id(target)
    node_ids = csr.node_ids

    if stats is None and csr.num_nodes >= SCIPY_MIN_NODES:
        arrays = scipy_dijkstra_arrays(csr, dense_source)
        if arrays is not None:
            dist, predecessors = arrays
            cost = dist[dense_target]
            if cost == _INF:
                raise NoPathError(source, target)
            dense_nodes = [dense_target]
            current = dense_target
            while current != dense_source:
                current = int(predecessors[current])
                dense_nodes.append(current)
            dense_nodes.reverse()
            return Path(tuple(node_ids[dense] for dense in dense_nodes), float(cost))

    dist, parent = _flat_point_to_point(csr, dense_source, dense_target, stats)
    if dist[dense_target] == _INF:
        raise NoPathError(source, target)
    dense_nodes = [dense_target]
    current = dense_target
    while current != dense_source:
        current = parent[current]
        dense_nodes.append(current)
    dense_nodes.reverse()
    return Path(tuple(node_ids[dense] for dense in dense_nodes), dist[dense_target])


#: Lazily imported (numpy, csr_matrix, csgraph.dijkstra), or None when SciPy
#: is unavailable.  The import is deferred so that environments without the
#: scientific stack never pay for (or fail on) it.
_SCIPY_MODULES = None
_SCIPY_CHECKED = False


def _scipy_modules():
    global _SCIPY_MODULES, _SCIPY_CHECKED
    if not _SCIPY_CHECKED:
        _SCIPY_CHECKED = True
        try:
            import numpy
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - exercised without scipy
            _SCIPY_MODULES = None
        else:
            _SCIPY_MODULES = (numpy, csr_matrix, dijkstra)
    return _SCIPY_MODULES


def scipy_dijkstra_arrays(csr: CsrGraph, source: int):
    """Full single-source Dijkstra through SciPy's C implementation.

    Returns ``(dist, predecessors)`` numpy arrays (``inf`` distance for
    unreachable nodes, negative predecessor sentinel for the source and
    unreachable nodes), or ``None`` when SciPy is unavailable.
    """
    matrix = csr.scipy_csgraph()
    if matrix is None:
        return None
    _, _, dijkstra = _scipy_modules()
    dist, predecessors = dijkstra(
        matrix, directed=True, indices=source, return_predecessors=True
    )
    return dist, predecessors


def build_csr(network: RoadNetwork) -> CsrGraph:
    """Compile ``network`` to CSR form (uncached)."""
    return CsrGraph.from_network(network)


def csr_for(network: RoadNetwork) -> CsrGraph:
    """The compiled CSR form of ``network``, cached on the network object.

    ``RoadNetwork`` is append-only (nodes and edges can be added but never
    removed or re-weighted), so ``(num_nodes, num_edges)`` is a sufficient
    validity key for the cache.
    """
    key = (network.num_nodes, network.num_edges)
    cached = getattr(network, "_csr_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    csr = CsrGraph.from_network(network)
    network._csr_cache = (key, csr)
    return csr


# ---------------------------------------------------------------------- #
# dense-id search cores
# ---------------------------------------------------------------------- #
def dijkstra_arrays(
    csr: CsrGraph,
    source: int,
    target_set: Optional[Set[int]] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Dijkstra from dense id ``source``.

    Returns ``(dist, parent, touched)`` where ``dist``/``parent`` are dense
    lists (``inf``/``-1`` for unreached nodes) and ``touched`` lists every
    dense id that received a finite distance, source first.  When
    ``target_set`` is given the search stops once every member is settled
    (an *empty* set stops after the first settle, matching the reference
    implementation).
    """
    adjacency = csr.adjacency()
    n = len(adjacency)
    dist = [_INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    touched = [source]
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push, pop = heapq.heappush, heapq.heappop
    remaining = set(target_set) if target_set is not None else None
    track = stats is not None
    node_ids = csr.node_ids

    while heap:
        d, u = pop(heap)
        if d > dist[u]:  # stale heap entry; u already settled cheaper
            continue
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for w, v in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                if parent[v] < 0 and v != source:
                    touched.append(v)
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                if track:
                    stats.relaxed_edges += 1
    return dist, parent, touched


def bidirectional_arrays(
    csr: CsrGraph,
    source: int,
    target: int,
    stats: Optional[SearchStats] = None,
) -> Optional[Tuple[float, List[int]]]:
    """Bidirectional Dijkstra between dense ids.

    Returns ``(cost, dense_node_sequence)`` or ``None`` when no path exists.
    Unlike the reference implementation, search statistics are recorded for
    both directions: every settle counts toward ``settled_nodes`` and is
    appended to ``visited_nodes``, and every successful relaxation counts
    toward ``relaxed_edges``.
    """
    forward_adj = csr.adjacency()
    backward_adj = csr.reverse().adjacency()
    n = len(forward_adj)
    dist_f = [_INF] * n
    dist_b = [_INF] * n
    parent_f = [-1] * n
    parent_b = [-1] * n
    dist_f[source] = 0.0
    dist_b[target] = 0.0
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = _INF
    meeting = -1
    push, pop = heapq.heappush, heapq.heappop
    track = stats is not None
    node_ids = csr.node_ids

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, parent, adjacency, other = heap_f, dist_f, parent_f, forward_adj, dist_b
        else:
            heap, dist, parent, adjacency, other = heap_b, dist_b, parent_b, backward_adj, dist_f
        d, u = pop(heap)
        if d > dist[u]:
            continue
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        for w, v in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                if track:
                    stats.relaxed_edges += 1
            other_d = other[v]
            if other_d < _INF:
                total = dist[v] + other_d
                if total < best:
                    best = total
                    meeting = v

    if meeting < 0:
        return None

    nodes: List[int] = []
    u = meeting
    while u >= 0:
        nodes.append(u)
        u = parent_f[u]
    nodes.reverse()
    u = parent_b[meeting]
    while u >= 0:
        nodes.append(u)
        u = parent_b[u]
    return best, nodes


def astar_arrays(
    csr: CsrGraph,
    source: int,
    target: int,
    heuristic: Optional[Callable[[int], float]] = None,
    stats: Optional[SearchStats] = None,
    on_settle: Optional[Callable[[NodeId], None]] = None,
) -> Optional[Tuple[float, List[int]]]:
    """A* between dense ids; ``heuristic`` maps a *dense* id to a lower bound.

    ``None`` selects the built-in Euclidean lower bound computed from the
    compiled coordinate arrays.  ``on_settle`` receives *original* node ids,
    in settle order, exactly like the reference implementation.  Returns
    ``(cost, dense_node_sequence)`` or ``None`` when no path exists.
    """
    adjacency = csr.adjacency()
    n = len(adjacency)
    if heuristic is None:
        xs, ys = csr.xs, csr.ys
        tx, ty = xs[target], ys[target]
        hypot = math.hypot

        def heuristic(v: int) -> float:
            return hypot(xs[v] - tx, ys[v] - ty)

    g_score = [_INF] * n
    parent = [-1] * n
    settled = bytearray(n)
    g_score[source] = 0.0
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    push, pop = heapq.heappush, heapq.heappop
    track = stats is not None
    node_ids = csr.node_ids

    while heap:
        _, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        if on_settle is not None:
            on_settle(node_ids[u])
        if u == target:
            nodes = [u]
            while parent[u] >= 0:
                u = parent[u]
                nodes.append(u)
            nodes.reverse()
            return g_score[target], nodes
        gu = g_score[u]
        for w, v in adjacency[u]:
            if settled[v]:
                continue
            ng = gu + w
            if ng < g_score[v]:
                g_score[v] = ng
                parent[v] = u
                push(heap, (ng + heuristic(v), v))
                if track:
                    stats.relaxed_edges += 1
    return None
