"""Array-backed (CSR) graph core: the search fast path.

:class:`CsrGraph` compiles a :class:`~repro.network.graph.RoadNetwork` into
contiguous integer node ids with flat adjacency/weight arrays (``array``
module).  The public search functions in :mod:`repro.network.dijkstra` and
:mod:`repro.network.astar` compile the network once (cached on the network
object, keyed by its node/edge counts — networks are append-only) and run on
this representation, avoiding the per-step dict lookups, method calls and
tuple churn of the reference implementations.

The module-level search routines here operate purely on dense ids and return
raw arrays/lists; the compatibility wrappers translate back to the public
``ShortestPathTree``/``Path`` vocabulary.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Callable, List, Optional, Set, Tuple

from ..exceptions import GraphError
from .graph import NodeId, RoadNetwork
from .paths import SearchStats

_INF = math.inf


class CsrGraph:
    """A road network compiled to compressed-sparse-row form.

    Nodes are renumbered to the dense range ``0 .. num_nodes - 1`` (in the
    network's insertion order).  The out-edges of dense node ``u`` occupy the
    slice ``offsets[u]:offsets[u + 1]`` of the flat ``targets``/``weights``
    arrays.  Coordinates live in the parallel ``xs``/``ys`` arrays.
    """

    __slots__ = (
        "node_ids",
        "offsets",
        "targets",
        "weights",
        "xs",
        "ys",
        "_index_of",
        "_adjacency",
        "_reverse",
        "_scipy_matrix",
        "_identity_ids",
    )

    def __init__(
        self,
        node_ids: List[NodeId],
        offsets: array,
        targets: array,
        weights: array,
        xs: array,
        ys: array,
        index_of: Optional[dict] = None,
    ) -> None:
        self.node_ids = node_ids
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.xs = xs
        self.ys = ys
        self._index_of = (
            index_of
            if index_of is not None
            else {node_id: dense for dense, node_id in enumerate(node_ids)}
        )
        self._adjacency: Optional[List[Tuple[Tuple[float, int], ...]]] = None
        self._reverse: Optional["CsrGraph"] = None
        self._scipy_matrix = None
        self._identity_ids: Optional[bool] = None

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(cls, network: RoadNetwork) -> "CsrGraph":
        """Compile ``network`` into CSR form."""
        node_ids = list(network.node_ids())
        index_of = {node_id: dense for dense, node_id in enumerate(node_ids)}
        offsets = array("q", [0])
        targets = array("q")
        weights = array("d")
        xs = array("d")
        ys = array("d")
        for node_id in node_ids:
            node = network.node(node_id)
            xs.append(node.x)
            ys.append(node.y)
            for neighbor, weight in network.neighbors(node_id):
                targets.append(index_of[neighbor])
                weights.append(weight)
            offsets.append(len(targets))
        return cls(node_ids, offsets, targets, weights, xs, ys, index_of)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def dense_id(self, node_id: NodeId) -> int:
        """Map an original node id to its dense id; unknown ids are an error."""
        try:
            return self._index_of[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def original_id(self, dense: int) -> NodeId:
        return self.node_ids[dense]

    @property
    def identity_ids(self) -> bool:
        """True when dense and original ids coincide (ids were 0..n-1 in order)."""
        if self._identity_ids is None:
            self._identity_ids = self.node_ids == list(range(len(self.node_ids)))
        return self._identity_ids

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._index_of

    def adjacency(self) -> List[Tuple[Tuple[float, int], ...]]:
        """Per-node ``((weight, dense_target), ...)`` tuples for the hot loops.

        Built lazily from the flat arrays the first time a search runs, so
        the boxed tuples are paid for once per compiled graph rather than
        once per relaxed edge.
        """
        adjacency = self._adjacency
        if adjacency is None:
            offsets, targets, weights = self.offsets, self.targets, self.weights
            adjacency = [
                tuple(zip(weights[offsets[u]:offsets[u + 1]], targets[offsets[u]:offsets[u + 1]]))
                for u in range(len(self.node_ids))
            ]
            self._adjacency = adjacency
        return adjacency

    def reverse(self) -> "CsrGraph":
        """The transposed graph (cached); shares node ids and coordinates."""
        if self._reverse is None:
            n = len(self.node_ids)
            offsets, targets, weights = self.offsets, self.targets, self.weights
            reverse_lists: List[List[Tuple[float, int]]] = [[] for _ in range(n)]
            for u in range(n):
                for k in range(offsets[u], offsets[u + 1]):
                    reverse_lists[targets[k]].append((weights[k], u))
            roffsets = array("q", [0])
            rtargets = array("q")
            rweights = array("d")
            for edges in reverse_lists:
                for weight, target in edges:
                    rtargets.append(target)
                    rweights.append(weight)
                roffsets.append(len(rtargets))
            reverse = CsrGraph(
                self.node_ids, roffsets, rtargets, rweights, self.xs, self.ys, self._index_of
            )
            reverse._adjacency = [tuple(edges) for edges in reverse_lists]
            reverse._reverse = self
            self._reverse = reverse
        return self._reverse

    def scipy_csgraph(self):
        """The graph as a ``scipy.sparse.csr_matrix`` (cached), or ``None``.

        Built directly from the flat CSR arrays (no copies, no coordinate
        round trip).  Parallel edges stay as duplicate column entries in the
        row, which the ``csgraph`` routines relax independently — the
        cheapest one wins, exactly like the pure-Python core.  Returns
        ``None`` when SciPy is not installed; callers fall back to the
        pure-Python core.
        """
        if self._scipy_matrix is None:
            modules = _scipy_modules()
            if modules is None:
                return None
            np, csr_matrix, _ = modules
            n = len(self.node_ids)
            self._scipy_matrix = csr_matrix(
                (
                    np.asarray(self.weights),
                    np.asarray(self.targets),
                    np.asarray(self.offsets),
                ),
                shape=(n, n),
            )
        return self._scipy_matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrGraph(nodes={self.num_nodes}, edges={self.num_edges})"


#: Lazily imported (numpy, csr_matrix, csgraph.dijkstra), or None when SciPy
#: is unavailable.  The import is deferred so that environments without the
#: scientific stack never pay for (or fail on) it.
_SCIPY_MODULES = None
_SCIPY_CHECKED = False


def _scipy_modules():
    global _SCIPY_MODULES, _SCIPY_CHECKED
    if not _SCIPY_CHECKED:
        _SCIPY_CHECKED = True
        try:
            import numpy
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - exercised without scipy
            _SCIPY_MODULES = None
        else:
            _SCIPY_MODULES = (numpy, csr_matrix, dijkstra)
    return _SCIPY_MODULES


def scipy_dijkstra_arrays(csr: CsrGraph, source: int):
    """Full single-source Dijkstra through SciPy's C implementation.

    Returns ``(dist, predecessors)`` numpy arrays (``inf`` distance for
    unreachable nodes, negative predecessor sentinel for the source and
    unreachable nodes), or ``None`` when SciPy is unavailable.
    """
    matrix = csr.scipy_csgraph()
    if matrix is None:
        return None
    _, _, dijkstra = _scipy_modules()
    dist, predecessors = dijkstra(
        matrix, directed=True, indices=source, return_predecessors=True
    )
    return dist, predecessors


def build_csr(network: RoadNetwork) -> CsrGraph:
    """Compile ``network`` to CSR form (uncached)."""
    return CsrGraph.from_network(network)


def csr_for(network: RoadNetwork) -> CsrGraph:
    """The compiled CSR form of ``network``, cached on the network object.

    ``RoadNetwork`` is append-only (nodes and edges can be added but never
    removed or re-weighted), so ``(num_nodes, num_edges)`` is a sufficient
    validity key for the cache.
    """
    key = (network.num_nodes, network.num_edges)
    cached = getattr(network, "_csr_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    csr = CsrGraph.from_network(network)
    network._csr_cache = (key, csr)
    return csr


# ---------------------------------------------------------------------- #
# dense-id search cores
# ---------------------------------------------------------------------- #
def dijkstra_arrays(
    csr: CsrGraph,
    source: int,
    target_set: Optional[Set[int]] = None,
    stats: Optional[SearchStats] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Dijkstra from dense id ``source``.

    Returns ``(dist, parent, touched)`` where ``dist``/``parent`` are dense
    lists (``inf``/``-1`` for unreached nodes) and ``touched`` lists every
    dense id that received a finite distance, source first.  When
    ``target_set`` is given the search stops once every member is settled
    (an *empty* set stops after the first settle, matching the reference
    implementation).
    """
    adjacency = csr.adjacency()
    n = len(adjacency)
    dist = [_INF] * n
    parent = [-1] * n
    dist[source] = 0.0
    touched = [source]
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push, pop = heapq.heappush, heapq.heappop
    remaining = set(target_set) if target_set is not None else None
    track = stats is not None
    node_ids = csr.node_ids

    while heap:
        d, u = pop(heap)
        if d > dist[u]:  # stale heap entry; u already settled cheaper
            continue
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for w, v in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                if parent[v] < 0 and v != source:
                    touched.append(v)
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                if track:
                    stats.relaxed_edges += 1
    return dist, parent, touched


def bidirectional_arrays(
    csr: CsrGraph,
    source: int,
    target: int,
    stats: Optional[SearchStats] = None,
) -> Optional[Tuple[float, List[int]]]:
    """Bidirectional Dijkstra between dense ids.

    Returns ``(cost, dense_node_sequence)`` or ``None`` when no path exists.
    Unlike the reference implementation, search statistics are recorded for
    both directions: every settle counts toward ``settled_nodes`` and is
    appended to ``visited_nodes``, and every successful relaxation counts
    toward ``relaxed_edges``.
    """
    forward_adj = csr.adjacency()
    backward_adj = csr.reverse().adjacency()
    n = len(forward_adj)
    dist_f = [_INF] * n
    dist_b = [_INF] * n
    parent_f = [-1] * n
    parent_b = [-1] * n
    dist_f[source] = 0.0
    dist_b[target] = 0.0
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = _INF
    meeting = -1
    push, pop = heapq.heappush, heapq.heappop
    track = stats is not None
    node_ids = csr.node_ids

    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            heap, dist, parent, adjacency, other = heap_f, dist_f, parent_f, forward_adj, dist_b
        else:
            heap, dist, parent, adjacency, other = heap_b, dist_b, parent_b, backward_adj, dist_f
        d, u = pop(heap)
        if d > dist[u]:
            continue
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        for w, v in adjacency[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
                if track:
                    stats.relaxed_edges += 1
            other_d = other[v]
            if other_d < _INF:
                total = dist[v] + other_d
                if total < best:
                    best = total
                    meeting = v

    if meeting < 0:
        return None

    nodes: List[int] = []
    u = meeting
    while u >= 0:
        nodes.append(u)
        u = parent_f[u]
    nodes.reverse()
    u = parent_b[meeting]
    while u >= 0:
        nodes.append(u)
        u = parent_b[u]
    return best, nodes


def astar_arrays(
    csr: CsrGraph,
    source: int,
    target: int,
    heuristic: Optional[Callable[[int], float]] = None,
    stats: Optional[SearchStats] = None,
    on_settle: Optional[Callable[[NodeId], None]] = None,
) -> Optional[Tuple[float, List[int]]]:
    """A* between dense ids; ``heuristic`` maps a *dense* id to a lower bound.

    ``None`` selects the built-in Euclidean lower bound computed from the
    compiled coordinate arrays.  ``on_settle`` receives *original* node ids,
    in settle order, exactly like the reference implementation.  Returns
    ``(cost, dense_node_sequence)`` or ``None`` when no path exists.
    """
    adjacency = csr.adjacency()
    n = len(adjacency)
    if heuristic is None:
        xs, ys = csr.xs, csr.ys
        tx, ty = xs[target], ys[target]
        hypot = math.hypot

        def heuristic(v: int) -> float:
            return hypot(xs[v] - tx, ys[v] - ty)

    g_score = [_INF] * n
    parent = [-1] * n
    settled = bytearray(n)
    g_score[source] = 0.0
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    push, pop = heapq.heappush, heapq.heappop
    track = stats is not None
    node_ids = csr.node_ids

    while heap:
        _, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if track:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node_ids[u])
        if on_settle is not None:
            on_settle(node_ids[u])
        if u == target:
            nodes = [u]
            while parent[u] >= 0:
                u = parent[u]
                nodes.append(u)
            nodes.reverse()
            return g_score[target], nodes
        gu = g_score[u]
        for w, v in adjacency[u]:
            if settled[v]:
                continue
            ng = gu + w
            if ng < g_score[v]:
                g_score[v] = ng
                parent[v] = u
                push(heap, (ng + heuristic(v), v))
                if track:
                    stats.relaxed_edges += 1
    return None
