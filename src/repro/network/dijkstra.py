"""Dijkstra's algorithm and single-source shortest-path trees.

These are the plain, unsecured search primitives (reference [7] in the paper).
They are used (i) by the querying client on the retrieved subgraph, (ii) by the
pre-computation that builds ``S_ij`` region sets and ``G_ij`` passage
subgraphs, and (iii) by the OBF baseline server.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..exceptions import NoPathError
from .graph import NodeId, RoadNetwork
from .paths import Path, SearchStats


@dataclass
class ShortestPathTree:
    """Result of a single-source Dijkstra run.

    ``distances`` maps every reached node to its shortest-path cost from the
    source; ``parents`` maps every reached node (except the source) to its
    predecessor on a shortest path.
    """

    source: NodeId
    distances: Dict[NodeId, float]
    parents: Dict[NodeId, Optional[NodeId]]

    def distance_to(self, target: NodeId) -> float:
        try:
            return self.distances[target]
        except KeyError:
            raise NoPathError(self.source, target) from None

    def has_path_to(self, target: NodeId) -> bool:
        return target in self.distances

    def path_to(self, target: NodeId) -> Path:
        """Reconstruct the shortest path from the source to ``target``."""
        if target not in self.distances:
            raise NoPathError(self.source, target)
        nodes: List[NodeId] = [target]
        current = target
        while current != self.source:
            current = self.parents[current]
            nodes.append(current)
        nodes.reverse()
        return Path(tuple(nodes), self.distances[target])


def dijkstra_tree(
    network: RoadNetwork,
    source: NodeId,
    targets: Optional[Iterable[NodeId]] = None,
    stats: Optional[SearchStats] = None,
) -> ShortestPathTree:
    """Run Dijkstra from ``source``.

    When ``targets`` is given, the search stops as soon as all targets are
    settled (useful during pre-computation when only border nodes matter).
    """
    network.node(source)  # validates the source exists
    remaining = set(targets) if targets is not None else None
    distances: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    settled: set = set()
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]

    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if stats is not None:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node)
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, weight in network.neighbors(node):
            if neighbor in settled:
                continue
            candidate = dist + weight
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
                if stats is not None:
                    stats.relaxed_edges += 1

    return ShortestPathTree(source, distances, parents)


def shortest_path(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Point-to-point shortest path via Dijkstra (early termination at target)."""
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    tree = dijkstra_tree(network, source, targets=[target], stats=stats)
    if not tree.has_path_to(target):
        raise NoPathError(source, target)
    return tree.path_to(target)


def shortest_path_cost(network: RoadNetwork, source: NodeId, target: NodeId) -> float:
    """Cost of the shortest path from ``source`` to ``target``."""
    return shortest_path(network, source, target).cost


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Bidirectional Dijkstra; returns the same path cost as :func:`shortest_path`.

    Provided as an additional substrate primitive; note that road-network
    schemes in the paper expand from both endpoints implicitly by fetching the
    source and destination regions first.
    """
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    network.node(source)
    network.node(target)

    forward_dist: Dict[NodeId, float] = {source: 0.0}
    backward_dist: Dict[NodeId, float] = {target: 0.0}
    forward_parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    backward_parent: Dict[NodeId, Optional[NodeId]] = {target: None}
    forward_settled: set = set()
    backward_settled: set = set()
    forward_heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    backward_heap: List[Tuple[float, NodeId]] = [(0.0, target)]
    reverse = network.reversed()

    best_cost = math.inf
    meeting_node: Optional[NodeId] = None

    def relax(heap, dist_map, parent_map, settled, graph, other_dist):
        nonlocal best_cost, meeting_node
        dist, node = heapq.heappop(heap)
        if node in settled:
            return
        settled.add(node)
        if stats is not None:
            stats.settled_nodes += 1
        for neighbor, weight in graph.neighbors(node):
            candidate = dist + weight
            if candidate < dist_map.get(neighbor, math.inf):
                dist_map[neighbor] = candidate
                parent_map[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
            if neighbor in other_dist:
                total = candidate + other_dist[neighbor]
                if total < best_cost:
                    best_cost = total
                    meeting_node = neighbor

    while forward_heap and backward_heap:
        if forward_heap[0][0] + backward_heap[0][0] >= best_cost:
            break
        if forward_heap[0][0] <= backward_heap[0][0]:
            relax(forward_heap, forward_dist, forward_parent, forward_settled,
                  network, backward_dist)
        else:
            relax(backward_heap, backward_dist, backward_parent, backward_settled,
                  reverse, forward_dist)

    if meeting_node is None:
        raise NoPathError(source, target)

    # stitch the two half-paths together at the meeting node
    forward_nodes: List[NodeId] = [meeting_node]
    current = meeting_node
    while forward_parent.get(current) is not None:
        current = forward_parent[current]
        forward_nodes.append(current)
    forward_nodes.reverse()

    current = meeting_node
    backward_nodes: List[NodeId] = []
    while backward_parent.get(current) is not None:
        current = backward_parent[current]
        backward_nodes.append(current)

    nodes = forward_nodes + backward_nodes
    return Path(tuple(nodes), best_cost)


def all_pairs_sample_costs(
    network: RoadNetwork, pairs: Iterable[Tuple[NodeId, NodeId]]
) -> Dict[Tuple[NodeId, NodeId], float]:
    """Shortest-path costs for a collection of (source, target) pairs.

    Sources are grouped so that each distinct source triggers a single
    Dijkstra run.
    """
    by_source: Dict[NodeId, List[NodeId]] = {}
    for source, target in pairs:
        by_source.setdefault(source, []).append(target)
    costs: Dict[Tuple[NodeId, NodeId], float] = {}
    for source, targets in by_source.items():
        tree = dijkstra_tree(network, source, targets=targets)
        for target in targets:
            costs[(source, target)] = tree.distance_to(target)
    return costs
