"""Dijkstra's algorithm and single-source shortest-path trees.

These are the plain, unsecured search primitives (reference [7] in the paper).
They are used (i) by the querying client on the retrieved subgraph, (ii) by the
pre-computation that builds ``S_ij`` region sets and ``G_ij`` passage
subgraphs, and (iii) by the OBF baseline server.

The public functions are thin compatibility wrappers over the array-backed
fast path in :mod:`repro.network.indexed`: the network is compiled once into a
:class:`~repro.network.indexed.CsrGraph` (cached on the network object) and
all heap work runs on dense integer ids and flat lists.  The original
dict-based implementations are kept as ``reference_*`` functions; the property
tests assert that the fast path returns identical costs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import NoPathError
from .graph import NodeId, RoadNetwork
from .indexed import (
    SCIPY_MIN_NODES as _SCIPY_MIN_NODES,
    bidirectional_arrays,
    csr_for,
    dijkstra_arrays,
    scipy_dijkstra_arrays,
)
from .paths import Path, SearchStats


@dataclass
class ShortestPathTree:
    """Result of a single-source Dijkstra run.

    ``distances`` maps every reached node to its shortest-path cost from the
    source; ``parents`` maps every reached node (except the source) to its
    predecessor on a shortest path.
    """

    source: NodeId
    distances: Dict[NodeId, float]
    parents: Dict[NodeId, Optional[NodeId]]

    def distance_to(self, target: NodeId) -> float:
        try:
            return self.distances[target]
        except KeyError:
            raise NoPathError(self.source, target) from None

    def has_path_to(self, target: NodeId) -> bool:
        return target in self.distances

    def path_to(self, target: NodeId) -> Path:
        """Reconstruct the shortest path from the source to ``target``."""
        if target not in self.distances:
            raise NoPathError(self.source, target)
        nodes: List[NodeId] = [target]
        current = target
        while current != self.source:
            current = self.parents[current]
            nodes.append(current)
        nodes.reverse()
        return Path(tuple(nodes), self.distances[target])


def dijkstra_tree(
    network: RoadNetwork,
    source: NodeId,
    targets: Optional[Iterable[NodeId]] = None,
    stats: Optional[SearchStats] = None,
) -> ShortestPathTree:
    """Run Dijkstra from ``source``.

    When ``targets`` is given, the search stops as soon as all targets are
    settled (useful during pre-computation when only border nodes matter).
    Every target id must exist in the network — an unknown id raises
    :class:`~repro.exceptions.GraphError` immediately instead of silently
    degrading into a full-graph scan that can never settle it.  Targets that
    exist but are unreachable still bound the search only by graph
    exhaustion, exactly like the reference implementation.
    """
    csr = csr_for(network)
    dense_source = csr.dense_id(source)
    target_set = None
    if targets is not None:
        target_set = {csr.dense_id(target) for target in targets}

    # The SciPy C core computes the full tree; use it whenever statistics
    # (which require observing the settle order) are not requested and the
    # graph is large enough for the call overhead to pay off.  With targets
    # and SciPy this returns a superset of the early-terminated tree, which
    # callers treat identically.
    if (
        stats is not None
        or csr.num_nodes < _SCIPY_MIN_NODES
        or (target_set is not None and not target_set)
    ):
        arrays = None
    else:
        arrays = scipy_dijkstra_arrays(csr, dense_source)
    node_ids = csr.node_ids
    distances: Dict[NodeId, float] = {}
    parents: Dict[NodeId, Optional[NodeId]] = {}
    if arrays is not None:
        dist, predecessors = arrays
        reached = (dist != math.inf).nonzero()[0]
        reached_list = reached.tolist()
        dist_compact = dist[reached].tolist()
        pred_compact = predecessors[reached].tolist()
        if csr.identity_ids:
            distances = dict(zip(reached_list, dist_compact))
            parents = {
                original: (pred if pred >= 0 else None)
                for original, pred in zip(reached_list, pred_compact)
            }
        else:
            reached_ids = [node_ids[dense] for dense in reached_list]
            distances = dict(zip(reached_ids, dist_compact))
            parents = {
                original: (node_ids[pred] if pred >= 0 else None)
                for original, pred in zip(reached_ids, pred_compact)
            }
        return ShortestPathTree(source, distances, parents)

    dist, parent, touched = dijkstra_arrays(csr, dense_source, target_set, stats)
    for dense in touched:
        original = node_ids[dense]
        distances[original] = dist[dense]
        dense_parent = parent[dense]
        parents[original] = node_ids[dense_parent] if dense_parent >= 0 else None
    return ShortestPathTree(source, distances, parents)


def shortest_path(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Point-to-point shortest path via Dijkstra (early termination at target)."""
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    csr = csr_for(network)
    dense_source = csr.dense_id(source)
    dense_target = csr.dense_id(target)

    if stats is None and csr.num_nodes >= _SCIPY_MIN_NODES:
        arrays = scipy_dijkstra_arrays(csr, dense_source)
        if arrays is not None:
            dist, predecessors = arrays
            cost = dist[dense_target]
            if cost == math.inf:
                raise NoPathError(source, target)
            node_ids = csr.node_ids
            dense_nodes = [dense_target]
            current = dense_target
            while current != dense_source:
                current = int(predecessors[current])
                dense_nodes.append(current)
            dense_nodes.reverse()
            return Path(tuple(node_ids[dense] for dense in dense_nodes), float(cost))

    dist, parent, _ = dijkstra_arrays(csr, dense_source, {dense_target}, stats)
    if dist[dense_target] == math.inf:
        raise NoPathError(source, target)
    node_ids = csr.node_ids
    dense_nodes = [dense_target]
    current = dense_target
    while current != dense_source:
        current = parent[current]
        dense_nodes.append(current)
    dense_nodes.reverse()
    return Path(tuple(node_ids[dense] for dense in dense_nodes), dist[dense_target])


def shortest_path_cost(network: RoadNetwork, source: NodeId, target: NodeId) -> float:
    """Cost of the shortest path from ``source`` to ``target``."""
    return shortest_path(network, source, target).cost


def bidirectional_dijkstra(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Bidirectional Dijkstra; returns the same path cost as :func:`shortest_path`.

    Provided as an additional substrate primitive; note that road-network
    schemes in the paper expand from both endpoints implicitly by fetching the
    source and destination regions first.  ``stats`` is kept at parity with
    :func:`dijkstra_tree`: settles from *both* directions count toward
    ``settled_nodes``/``visited_nodes`` and successful relaxations toward
    ``relaxed_edges``.
    """
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    csr = csr_for(network)
    dense_source = csr.dense_id(source)
    dense_target = csr.dense_id(target)
    result = bidirectional_arrays(csr, dense_source, dense_target, stats)
    if result is None:
        raise NoPathError(source, target)
    cost, dense_nodes = result
    node_ids = csr.node_ids
    return Path(tuple(node_ids[dense] for dense in dense_nodes), cost)


def all_pairs_sample_costs(
    network: RoadNetwork, pairs: Iterable[Tuple[NodeId, NodeId]]
) -> Dict[Tuple[NodeId, NodeId], float]:
    """Shortest-path costs for a collection of (source, target) pairs.

    Sources are grouped so that each distinct source triggers a single
    Dijkstra run; with SciPy available, the whole batch of sources runs in
    one multi-source call of the C core and only the requested ``(source,
    target)`` entries are read out.  Raises :class:`NoPathError` for
    unreachable pairs, :class:`~repro.exceptions.GraphError` for unknown ids.
    """
    by_source: Dict[NodeId, List[NodeId]] = {}
    for source, target in pairs:
        by_source.setdefault(source, []).append(target)
    costs: Dict[Tuple[NodeId, NodeId], float] = {}
    if not by_source:
        return costs

    csr = csr_for(network)
    if csr.num_nodes >= _SCIPY_MIN_NODES:
        matrix = csr.scipy_csgraph()
        if matrix is not None:
            from .indexed import _scipy_modules

            _, _, scipy_dijkstra = _scipy_modules()
            sources = list(by_source)
            dense_sources = [csr.dense_id(source) for source in sources]
            dist = scipy_dijkstra(
                matrix, directed=True, indices=dense_sources, return_predecessors=False
            )
            for row, source in zip(dist, sources):
                for target in by_source[source]:
                    cost = row[csr.dense_id(target)]
                    if cost == math.inf:
                        raise NoPathError(source, target)
                    costs[(source, target)] = float(cost)
            return costs

    for source, targets in by_source.items():
        tree = dijkstra_tree(network, source, targets=targets)
        for target in targets:
            costs[(source, target)] = tree.distance_to(target)
    return costs


# ---------------------------------------------------------------------- #
# reference implementations (dict-based; kept for property tests and
# microbenchmark baselines — see tests/properties/test_property_fastpath.py)
# ---------------------------------------------------------------------- #
def reference_dijkstra_tree(
    network: RoadNetwork,
    source: NodeId,
    targets: Optional[Iterable[NodeId]] = None,
    stats: Optional[SearchStats] = None,
) -> ShortestPathTree:
    """The original dict-based Dijkstra, preserved verbatim as the oracle."""
    network.node(source)  # validates the source exists
    remaining = set(targets) if targets is not None else None
    distances: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    settled: set = set()
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]

    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if stats is not None:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node)
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, weight in network.neighbors(node):
            if neighbor in settled:
                continue
            candidate = dist + weight
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
                if stats is not None:
                    stats.relaxed_edges += 1

    return ShortestPathTree(source, distances, parents)


def reference_shortest_path(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    stats: Optional[SearchStats] = None,
) -> Path:
    """Point-to-point shortest path via the reference Dijkstra."""
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    tree = reference_dijkstra_tree(network, source, targets=[target], stats=stats)
    if not tree.has_path_to(target):
        raise NoPathError(source, target)
    return tree.path_to(target)


def reference_bidirectional_dijkstra(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
) -> Path:
    """The original dict-based bidirectional Dijkstra, preserved as the oracle."""
    if source == target:
        network.node(source)
        return Path((source,), 0.0)
    network.node(source)
    network.node(target)

    forward_dist: Dict[NodeId, float] = {source: 0.0}
    backward_dist: Dict[NodeId, float] = {target: 0.0}
    forward_parent: Dict[NodeId, Optional[NodeId]] = {source: None}
    backward_parent: Dict[NodeId, Optional[NodeId]] = {target: None}
    forward_settled: set = set()
    backward_settled: set = set()
    forward_heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    backward_heap: List[Tuple[float, NodeId]] = [(0.0, target)]
    reverse = network.reversed()

    best_cost = math.inf
    meeting_node: Optional[NodeId] = None

    def relax(heap, dist_map, parent_map, settled, graph, other_dist):
        nonlocal best_cost, meeting_node
        dist, node = heapq.heappop(heap)
        if node in settled:
            return
        settled.add(node)
        for neighbor, weight in graph.neighbors(node):
            candidate = dist + weight
            if candidate < dist_map.get(neighbor, math.inf):
                dist_map[neighbor] = candidate
                parent_map[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
            if neighbor in other_dist:
                total = dist_map.get(neighbor, candidate) + other_dist[neighbor]
                if total < best_cost:
                    best_cost = total
                    meeting_node = neighbor

    while forward_heap and backward_heap:
        if forward_heap[0][0] + backward_heap[0][0] >= best_cost:
            break
        if forward_heap[0][0] <= backward_heap[0][0]:
            relax(forward_heap, forward_dist, forward_parent, forward_settled,
                  network, backward_dist)
        else:
            relax(backward_heap, backward_dist, backward_parent, backward_settled,
                  reverse, forward_dist)

    if meeting_node is None:
        raise NoPathError(source, target)

    # stitch the two half-paths together at the meeting node
    forward_nodes: List[NodeId] = [meeting_node]
    current = meeting_node
    while forward_parent.get(current) is not None:
        current = forward_parent[current]
        forward_nodes.append(current)
    forward_nodes.reverse()

    current = meeting_node
    backward_nodes: List[NodeId] = []
    while backward_parent.get(current) is not None:
        current = backward_parent[current]
        backward_nodes.append(current)

    nodes = forward_nodes + backward_nodes
    return Path(tuple(nodes), best_cost)
