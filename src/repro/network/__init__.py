"""Road-network substrate: graphs, search algorithms, generators and I/O."""

from .astar import astar_search, euclidean_heuristic, reference_astar_search, zero_heuristic
from .dijkstra import (
    ShortestPathTree,
    all_pairs_sample_costs,
    bidirectional_dijkstra,
    dijkstra_tree,
    reference_bidirectional_dijkstra,
    reference_dijkstra_tree,
    reference_shortest_path,
    shortest_path,
    shortest_path_cost,
)
from .generators import (
    NodeRecord,
    grid_network,
    network_from_records,
    random_planar_network,
    stream_cluster_network,
    stream_grid_network,
)
from .indexed import CsrBuilder, CsrGraph, build_csr, csr_for, csr_shortest_path
from .graph import Edge, Node, NodeId, RoadNetwork
from .io import (
    DIMACS_SCALE,
    iter_dimacs_records,
    network_from_string,
    network_to_string,
    read_dimacs,
    read_network,
    write_dimacs,
    write_network,
)
from .paths import Path, SearchStats, validate_path

__all__ = [
    "CsrBuilder",
    "CsrGraph",
    "DIMACS_SCALE",
    "Edge",
    "Node",
    "NodeId",
    "NodeRecord",
    "Path",
    "RoadNetwork",
    "SearchStats",
    "ShortestPathTree",
    "all_pairs_sample_costs",
    "astar_search",
    "bidirectional_dijkstra",
    "build_csr",
    "csr_for",
    "csr_shortest_path",
    "dijkstra_tree",
    "euclidean_heuristic",
    "grid_network",
    "iter_dimacs_records",
    "network_from_records",
    "network_from_string",
    "network_to_string",
    "random_planar_network",
    "read_dimacs",
    "read_network",
    "reference_astar_search",
    "reference_bidirectional_dijkstra",
    "reference_dijkstra_tree",
    "reference_shortest_path",
    "shortest_path",
    "shortest_path_cost",
    "stream_cluster_network",
    "stream_grid_network",
    "validate_path",
    "write_dimacs",
    "write_network",
    "zero_heuristic",
]
