"""A* search with pluggable heuristics.

Used by the Landmark (LM) baseline of Section 4: the search is guided either
by the Euclidean lower bound or by the ALT (A*, Landmarks, Triangle
inequality) heuristic built from pre-computed landmark vectors.

Like :mod:`repro.network.dijkstra`, the public function is a thin wrapper
over the array-backed fast path in :mod:`repro.network.indexed`; the original
dict-based implementation is kept as :func:`reference_astar_search`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import NoPathError
from .graph import NodeId, RoadNetwork
from .indexed import astar_arrays, csr_for
from .paths import Path, SearchStats

Heuristic = Callable[[NodeId], float]


def euclidean_heuristic(network: RoadNetwork, target: NodeId) -> Heuristic:
    """Euclidean-distance lower bound to ``target``.

    Admissible whenever edge weights are at least the Euclidean length of the
    edge, which holds for the generators in this package.
    """
    target_node = network.node(target)

    def heuristic(node_id: NodeId) -> float:
        node = network.node(node_id)
        return math.hypot(node.x - target_node.x, node.y - target_node.y)

    return heuristic


def zero_heuristic(_: NodeId) -> float:
    """Degenerates A* into Dijkstra."""
    return 0.0


def astar_search(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    heuristic: Optional[Heuristic] = None,
    stats: Optional[SearchStats] = None,
    on_settle: Optional[Callable[[NodeId], None]] = None,
) -> Path:
    """A* from ``source`` to ``target``.

    ``on_settle`` is invoked for every node the search settles, in order; the
    LM/AF baselines use it to fetch the disk page of the region that contains
    the node the moment the search first touches that region.  ``heuristic``
    (when given) receives *original* node ids; omitting it selects the
    Euclidean lower bound computed directly from the compiled coordinate
    arrays.
    """
    csr = csr_for(network)
    dense_source = csr.dense_id(source)
    dense_target = csr.dense_id(target)
    if source == target:
        if on_settle is not None:
            on_settle(source)
        return Path((source,), 0.0)

    dense_heuristic = None
    if heuristic is not None:
        node_ids = csr.node_ids

        def dense_heuristic(dense: int) -> float:
            return heuristic(node_ids[dense])

    elif not csr.heuristic_safe:
        # Some coordinates are placeholders (e.g. passage nodes a client
        # merged in without knowing their position): the Euclidean bound is
        # inadmissible, so degrade to the zero heuristic (plain Dijkstra).
        def dense_heuristic(dense: int) -> float:
            return 0.0

    result = astar_arrays(
        csr, dense_source, dense_target, dense_heuristic, stats, on_settle
    )
    if result is None:
        raise NoPathError(source, target)
    cost, dense_nodes = result
    ids = csr.node_ids
    return Path(tuple(ids[dense] for dense in dense_nodes), cost)


def reference_astar_search(
    network: RoadNetwork,
    source: NodeId,
    target: NodeId,
    heuristic: Optional[Heuristic] = None,
    stats: Optional[SearchStats] = None,
    on_settle: Optional[Callable[[NodeId], None]] = None,
) -> Path:
    """The original dict-based A*, preserved as the oracle for property tests."""
    network.node(source)
    network.node(target)
    if heuristic is None:
        if getattr(network, "heuristic_safe", True):
            heuristic = euclidean_heuristic(network, target)
        else:
            heuristic = zero_heuristic  # placeholder coordinates: Euclidean is inadmissible
    if source == target:
        if on_settle is not None:
            on_settle(source)
        return Path((source,), 0.0)

    g_score: Dict[NodeId, float] = {source: 0.0}
    parents: Dict[NodeId, Optional[NodeId]] = {source: None}
    settled: set = set()
    heap: List[Tuple[float, NodeId]] = [(heuristic(source), source)]

    while heap:
        _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if stats is not None:
            stats.settled_nodes += 1
            stats.visited_nodes.append(node)
        if on_settle is not None:
            on_settle(node)
        if node == target:
            nodes: List[NodeId] = [target]
            current = target
            while parents[current] is not None:
                current = parents[current]
                nodes.append(current)
            nodes.reverse()
            return Path(tuple(nodes), g_score[target])
        node_cost = g_score[node]
        for neighbor, weight in network.neighbors(node):
            if neighbor in settled:
                continue
            candidate = node_cost + weight
            if candidate < g_score.get(neighbor, math.inf):
                g_score[neighbor] = candidate
                parents[neighbor] = node
                heapq.heappush(heap, (candidate + heuristic(neighbor), neighbor))
                if stats is not None:
                    stats.relaxed_edges += 1

    raise NoPathError(source, target)
