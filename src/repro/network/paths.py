"""Path objects returned by shortest-path computations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..exceptions import GraphError
from .graph import NodeId, RoadNetwork


@dataclass(frozen=True)
class Path:
    """A path through the road network.

    ``nodes`` is the node sequence (source first, destination last) and
    ``cost`` the summed edge weight along it.  A single-node path has zero
    cost.
    """

    nodes: Tuple[NodeId, ...]
    cost: float

    @property
    def source(self) -> NodeId:
        return self.nodes[0]

    @property
    def target(self) -> NodeId:
        return self.nodes[-1]

    @property
    def num_edges(self) -> int:
        return len(self.nodes) - 1

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """The (source, target) pairs along the path."""
        return list(zip(self.nodes[:-1], self.nodes[1:]))

    def __len__(self) -> int:
        return len(self.nodes)

    @staticmethod
    def from_nodes(network: RoadNetwork, nodes: Sequence[NodeId]) -> "Path":
        """Build a path from a node sequence, validating edges and summing cost."""
        if not nodes:
            raise GraphError("a path needs at least one node")
        cost = 0.0
        for a, b in zip(nodes[:-1], nodes[1:]):
            cost += network.edge_weight(a, b)
        return Path(tuple(nodes), cost)


def validate_path(network: RoadNetwork, path: Path) -> None:
    """Raise :class:`GraphError` unless ``path`` is a valid path in ``network``
    whose stated cost matches the summed edge weights."""
    rebuilt = Path.from_nodes(network, path.nodes)
    if abs(rebuilt.cost - path.cost) > 1e-6 * max(1.0, abs(rebuilt.cost)):
        raise GraphError(
            f"path cost {path.cost} does not match edge-weight sum {rebuilt.cost}"
        )


@dataclass
class SearchStats:
    """Bookkeeping produced by the search algorithms (used by baselines to
    count how many nodes/regions they touch)."""

    settled_nodes: int = 0
    relaxed_edges: int = 0
    visited_nodes: List[NodeId] = field(default_factory=list)
