"""Plain-text serialization of road networks.

The format follows the widely used node/edge file convention of the
Brinkhoff generator datasets:

* node lines:  ``v <node_id> <x> <y>``
* edge lines:  ``e <source> <target> <weight>``

Lines starting with ``#`` are comments.  Both functions work with paths or
open file objects.
"""

from __future__ import annotations

import io
from pathlib import Path as FilePath
from typing import TextIO, Union

from ..exceptions import GraphError
from .graph import RoadNetwork

PathLike = Union[str, FilePath]


def write_network(network: RoadNetwork, destination: Union[PathLike, TextIO]) -> None:
    """Write ``network`` to ``destination`` in the node/edge text format."""
    if hasattr(destination, "write"):
        _write_stream(network, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as stream:
        _write_stream(network, stream)


def read_network(source: Union[PathLike, TextIO]) -> RoadNetwork:
    """Read a network previously written by :func:`write_network`."""
    if hasattr(source, "read"):
        return _read_stream(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as stream:
        return _read_stream(stream)


def network_to_string(network: RoadNetwork) -> str:
    """Serialize a network to a string (round-trips with :func:`network_from_string`)."""
    buffer = io.StringIO()
    _write_stream(network, buffer)
    return buffer.getvalue()


def network_from_string(text: str) -> RoadNetwork:
    """Parse a network from the string produced by :func:`network_to_string`."""
    return _read_stream(io.StringIO(text))


def _write_stream(network: RoadNetwork, stream: TextIO) -> None:
    stream.write(f"# road network: {network.num_nodes} nodes, {network.num_edges} edges\n")
    for node in sorted(network.nodes(), key=lambda n: n.node_id):
        stream.write(f"v {node.node_id} {node.x!r} {node.y!r}\n")
    for node in sorted(network.nodes(), key=lambda n: n.node_id):
        for neighbor, weight in network.neighbors(node.node_id):
            stream.write(f"e {node.node_id} {neighbor} {weight!r}\n")


def _read_stream(stream: TextIO) -> RoadNetwork:
    network = RoadNetwork()
    pending_edges = []
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed node line {line!r}")
            network.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
        elif kind == "e":
            if len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed edge line {line!r}")
            pending_edges.append((int(parts[1]), int(parts[2]), float(parts[3])))
        else:
            raise GraphError(f"line {line_number}: unknown record type {kind!r}")
    for source, target, weight in pending_edges:
        network.add_edge(source, target, weight)
    return network
