"""Plain-text serialization of road networks.

Two formats are supported:

* The node/edge file convention of the Brinkhoff generator datasets
  (``v <node_id> <x> <y>`` / ``e <source> <target> <weight>`` lines, ``#``
  comments) via :func:`write_network`/:func:`read_network`.
* The 9th DIMACS Implementation Challenge format used by the real road
  networks the paper evaluates on (``.gr`` graph files with ``p sp <n> <m>``
  and ``a <u> <v> <w>`` lines, optional ``.co`` coordinate files with
  ``v <id> <x> <y>`` lines, 1-based ids, integer weights/coordinates) via
  :func:`write_dimacs`/:func:`read_dimacs`, plus the streaming
  :func:`iter_dimacs_records` that feeds continental-scale inputs straight
  into :func:`repro.storage.stream_node_database`.

All functions work with paths or open file objects.
"""

from __future__ import annotations

import io
from pathlib import Path as FilePath
from typing import Dict, Iterator, List, Optional, TextIO, Tuple, Union

from ..exceptions import GraphError
from .generators import NodeRecord
from .graph import RoadNetwork

PathLike = Union[str, FilePath]

#: Default fixed-point factor between float weights/coordinates and the
#: integer values DIMACS files carry.
DIMACS_SCALE = 1000.0


def write_network(network: RoadNetwork, destination: Union[PathLike, TextIO]) -> None:
    """Write ``network`` to ``destination`` in the node/edge text format."""
    if hasattr(destination, "write"):
        _write_stream(network, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="utf-8") as stream:
        _write_stream(network, stream)


def read_network(source: Union[PathLike, TextIO]) -> RoadNetwork:
    """Read a network previously written by :func:`write_network`."""
    if hasattr(source, "read"):
        return _read_stream(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as stream:
        return _read_stream(stream)


def network_to_string(network: RoadNetwork) -> str:
    """Serialize a network to a string (round-trips with :func:`network_from_string`)."""
    buffer = io.StringIO()
    _write_stream(network, buffer)
    return buffer.getvalue()


def network_from_string(text: str) -> RoadNetwork:
    """Parse a network from the string produced by :func:`network_to_string`."""
    return _read_stream(io.StringIO(text))


def _write_stream(network: RoadNetwork, stream: TextIO) -> None:
    stream.write(f"# road network: {network.num_nodes} nodes, {network.num_edges} edges\n")
    for node in sorted(network.nodes(), key=lambda n: n.node_id):
        stream.write(f"v {node.node_id} {node.x!r} {node.y!r}\n")
    for node in sorted(network.nodes(), key=lambda n: n.node_id):
        for neighbor, weight in network.neighbors(node.node_id):
            stream.write(f"e {node.node_id} {neighbor} {weight!r}\n")


def _read_stream(stream: TextIO) -> RoadNetwork:
    network = RoadNetwork()
    pending_edges = []
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "v":
            if len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed node line {line!r}")
            network.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
        elif kind == "e":
            if len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed edge line {line!r}")
            pending_edges.append((int(parts[1]), int(parts[2]), float(parts[3])))
        else:
            raise GraphError(f"line {line_number}: unknown record type {kind!r}")
    for source, target, weight in pending_edges:
        network.add_edge(source, target, weight)
    return network


# --------------------------------------------------------------------------- #
# DIMACS shortest-path challenge format
# --------------------------------------------------------------------------- #
def write_dimacs(
    network: RoadNetwork,
    gr_destination: Union[PathLike, TextIO],
    co_destination: Union[PathLike, TextIO, None] = None,
    scale: float = DIMACS_SCALE,
) -> None:
    """Write ``network`` as a DIMACS ``.gr`` file (and optionally a ``.co`` file).

    Node ids are shifted to the 1-based DIMACS convention and weights and
    coordinates are rounded to integers after multiplying by ``scale``.  Arc
    lines are grouped by source node, which is what
    :func:`iter_dimacs_records` relies on to stream the file back.
    """
    with _text_sink(gr_destination) as stream:
        stream.write("c repro road network export\n")
        stream.write(f"p sp {network.num_nodes} {network.num_edges}\n")
        for node in sorted(network.nodes(), key=lambda n: n.node_id):
            for neighbor, weight in network.neighbors(node.node_id):
                stream.write(
                    f"a {node.node_id + 1} {neighbor + 1} "
                    f"{max(int(round(weight * scale)), 1)}\n"
                )
    if co_destination is None:
        return
    with _text_sink(co_destination) as stream:
        stream.write("c repro road network coordinates\n")
        stream.write(f"p aux sp co {network.num_nodes}\n")
        for node in sorted(network.nodes(), key=lambda n: n.node_id):
            stream.write(
                f"v {node.node_id + 1} "
                f"{int(round(node.x * scale))} {int(round(node.y * scale))}\n"
            )


def read_dimacs(
    gr_source: Union[PathLike, TextIO],
    co_source: Union[PathLike, TextIO, None] = None,
    scale: float = DIMACS_SCALE,
) -> RoadNetwork:
    """Read a DIMACS ``.gr`` (and optional ``.co``) pair into a network.

    Ids come back 0-based; integer weights/coordinates are divided by
    ``scale``.  Without a coordinate file every node sits at the origin (the
    Euclidean heuristic then degenerates to zero, which stays admissible).
    Materializes the whole network — for inputs larger than RAM use
    :func:`iter_dimacs_records` with an out-of-core page store instead.
    """
    coordinates = _read_dimacs_coordinates(co_source, scale) if co_source is not None else {}
    network = RoadNetwork()
    pending: List[Tuple[int, int, float]] = []
    declared_nodes = 0
    with _text_source(gr_source) as stream:
        for line_number, parts in _dimacs_lines(stream):
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"line {line_number}: malformed problem line")
                declared_nodes = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphError(f"line {line_number}: malformed arc line")
                pending.append((int(parts[1]) - 1, int(parts[2]) - 1, int(parts[3]) / scale))
            else:
                raise GraphError(
                    f"line {line_number}: unknown DIMACS record type {parts[0]!r}"
                )
    for node_id in range(declared_nodes):
        x, y = coordinates.get(node_id, (0.0, 0.0))
        network.add_node(node_id, x, y)
    for source, target, weight in pending:
        network.add_edge(source, target, weight)
    return network


def iter_dimacs_records(
    gr_source: Union[PathLike, TextIO],
    co_source: Union[PathLike, TextIO, None] = None,
    scale: float = DIMACS_SCALE,
) -> Iterator[NodeRecord]:
    """Stream a DIMACS graph as :data:`~repro.network.generators.NodeRecord`\\ s.

    This is the out-of-core import path: pipe the records into
    :func:`repro.storage.stream_node_database` and only O(nodes) coordinate
    floats — never the arc list — stay resident.  Arc lines must be grouped
    by source node (DIMACS exports, including :func:`write_dimacs`, are);
    a source that reappears after its group ended raises
    :class:`~repro.exceptions.GraphError`.  Nodes without outgoing arcs are
    emitted with empty adjacency after the arc pass.
    """
    coordinates = _read_dimacs_coordinates(co_source, scale) if co_source is not None else {}

    def coords(node_id: int) -> Tuple[float, float]:
        return coordinates.get(node_id, (0.0, 0.0))

    declared_nodes = 0
    emitted = set()
    current: Optional[int] = None
    neighbors: List[Tuple[int, float]] = []
    with _text_source(gr_source) as stream:
        for line_number, parts in _dimacs_lines(stream):
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"line {line_number}: malformed problem line")
                declared_nodes = int(parts[2])
                continue
            if parts[0] != "a":
                raise GraphError(
                    f"line {line_number}: unknown DIMACS record type {parts[0]!r}"
                )
            if len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed arc line")
            source = int(parts[1]) - 1
            if source != current:
                if current is not None:
                    x, y = coords(current)
                    emitted.add(current)
                    yield current, x, y, neighbors
                if source in emitted:
                    raise GraphError(
                        f"line {line_number}: arcs of node {source} are not "
                        "grouped; streaming import needs source-grouped arc lines"
                    )
                current, neighbors = source, []
            neighbors.append((int(parts[2]) - 1, int(parts[3]) / scale))
    if current is not None:
        x, y = coords(current)
        emitted.add(current)
        yield current, x, y, neighbors
    for node_id in range(max(declared_nodes, len(coordinates))):
        if node_id not in emitted:
            x, y = coords(node_id)
            yield node_id, x, y, []


def _read_dimacs_coordinates(
    co_source: Union[PathLike, TextIO], scale: float
) -> Dict[int, Tuple[float, float]]:
    coordinates: Dict[int, Tuple[float, float]] = {}
    with _text_source(co_source) as stream:
        for line_number, parts in _dimacs_lines(stream):
            if parts[0] == "p":
                continue
            if parts[0] != "v" or len(parts) != 4:
                raise GraphError(f"line {line_number}: malformed coordinate line")
            coordinates[int(parts[1]) - 1] = (int(parts[2]) / scale, int(parts[3]) / scale)
    return coordinates


def _dimacs_lines(stream: TextIO) -> Iterator[Tuple[int, List[str]]]:
    """Yield ``(line_number, fields)`` for every non-comment DIMACS line."""
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        yield line_number, line.split()


class _text_source:
    """``with``-manager over a path or an already-open text stream."""

    def __init__(self, source: Union[PathLike, TextIO]) -> None:
        self._source = source
        self._owned: Optional[TextIO] = None

    def __enter__(self) -> TextIO:
        if hasattr(self._source, "read"):
            return self._source  # type: ignore[return-value]
        self._owned = open(self._source, "r", encoding="utf-8")
        return self._owned

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._owned is not None:
            self._owned.close()


class _text_sink(_text_source):
    def __enter__(self) -> TextIO:
        if hasattr(self._source, "write"):
            return self._source  # type: ignore[return-value]
        self._owned = open(self._source, "w", encoding="utf-8")
        return self._owned
