"""Synthetic road-network generators.

The paper evaluates on six real road networks (Table 1) obtained from the
Brinkhoff generator and the Digital Chart of the World.  Those datasets are
not redistributable here, so this module produces synthetic stand-ins with the
same structural characteristics that the schemes depend on:

* planar-like topology with strong spatial locality,
* sparsity ``|E| ≈ 1.0–1.2 · |V|`` (directed-edge counts as in Table 1),
* Euclidean node coordinates consistent with edge weights (edge weight is the
  Euclidean length scaled by a detour factor ``≥ 1``), so Euclidean/landmark
  heuristics remain admissible.

Two generator families are provided: a perturbed grid (simple, fully
deterministic shape) and a Delaunay-based random planar network (the default
for the dataset registry in :mod:`repro.bench.datasets`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import GraphError
from .graph import RoadNetwork


class _UnionFind:
    """Minimal union-find used to build spanning trees."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        self._parent[root_b] = root_a
        return True


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    jitter: float = 0.2,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """A rows x cols grid with jittered coordinates and optional edge drops.

    The network stays connected: candidate drops that would disconnect it are
    skipped.  Weights are the Euclidean edge lengths.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    rng = np.random.default_rng(seed)
    network = RoadNetwork()
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            x = col * spacing + rng.uniform(-jitter, jitter) * spacing
            y = row * spacing + rng.uniform(-jitter, jitter) * spacing
            network.add_node(node_id, x, y)

    undirected: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            if col + 1 < cols:
                undirected.append((node_id, node_id + 1))
            if row + 1 < rows:
                undirected.append((node_id, node_id + cols))

    keep = _drop_edges_keeping_connectivity(undirected, rows * cols, drop_fraction, rng)
    for a, b in keep:
        weight = network.euclidean_distance(a, b)
        network.add_undirected_edge(a, b, max(weight, 1e-9))
    return network


def random_planar_network(
    num_nodes: int,
    edge_factor: float = 1.15,
    extent: float = 100.0,
    detour_max: float = 1.3,
    seed: int = 0,
) -> RoadNetwork:
    """A random planar-like road network.

    Nodes are uniform random points in ``[0, extent]²``.  Candidate edges come
    from the Delaunay triangulation of the points (guaranteeing planarity and
    locality); a random spanning tree subset ensures connectivity, and the
    shortest remaining candidates are added until the number of *undirected*
    edges reaches ``edge_factor · num_nodes`` (matching the sparsity of the
    paper's datasets).  Each undirected edge is stored as two directed edges.

    Edge weights are the Euclidean length multiplied by a per-edge detour
    factor drawn uniformly from ``[1, detour_max]``.
    """
    if num_nodes < 3:
        raise GraphError("random planar network needs at least 3 nodes")
    if edge_factor < 1.0:
        raise GraphError("edge_factor below 1.0 cannot keep the network connected")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, extent, size=(num_nodes, 2))

    candidates = _delaunay_edges(points)
    lengths = {
        (a, b): math.hypot(points[a, 0] - points[b, 0], points[a, 1] - points[b, 1])
        for a, b in candidates
    }

    # spanning tree over the candidate edges (random order ⇒ random tree)
    order = list(candidates)
    rng.shuffle(order)
    union_find = _UnionFind(num_nodes)
    chosen: List[Tuple[int, int]] = []
    for a, b in order:
        if union_find.union(a, b):
            chosen.append((a, b))
    if len(chosen) != num_nodes - 1:
        raise GraphError("Delaunay candidate edges did not span all nodes")

    target_edges = int(round(edge_factor * num_nodes))
    chosen_set = set(chosen)
    extras = sorted(
        (edge for edge in candidates if edge not in chosen_set),
        key=lambda edge: lengths[edge],
    )
    for edge in extras:
        if len(chosen) >= target_edges:
            break
        chosen.append(edge)

    network = RoadNetwork()
    for node_id in range(num_nodes):
        network.add_node(node_id, float(points[node_id, 0]), float(points[node_id, 1]))
    for a, b in chosen:
        detour = rng.uniform(1.0, detour_max)
        weight = max(lengths[(a, b)] * detour, 1e-9)
        network.add_undirected_edge(a, b, weight)
    return network


def _delaunay_edges(points: np.ndarray) -> List[Tuple[int, int]]:
    """Undirected edge list of the Delaunay triangulation of ``points``."""
    from scipy.spatial import Delaunay  # imported lazily; scipy is a hard dependency

    triangulation = Delaunay(points)
    edges = set()
    for simplex in triangulation.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def _drop_edges_keeping_connectivity(
    undirected: Sequence[Tuple[int, int]],
    num_nodes: int,
    drop_fraction: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Remove up to ``drop_fraction`` of the edges without disconnecting the graph."""
    if drop_fraction <= 0:
        return list(undirected)
    if drop_fraction >= 1:
        raise GraphError("cannot drop all edges")
    edges = list(undirected)
    rng.shuffle(edges)
    to_drop = int(len(edges) * drop_fraction)

    # Keep a spanning structure: greedily mark edges as required via union-find,
    # then drop only from the non-required ones.
    union_find = _UnionFind(num_nodes)
    required = set()
    for edge in edges:
        if union_find.union(edge[0], edge[1]):
            required.add(edge)
    droppable = [edge for edge in edges if edge not in required]
    dropped = set(droppable[:to_drop])
    return [edge for edge in edges if edge not in dropped]
