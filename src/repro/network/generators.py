"""Synthetic road-network generators.

The paper evaluates on six real road networks (Table 1) obtained from the
Brinkhoff generator and the Digital Chart of the World.  Those datasets are
not redistributable here, so this module produces synthetic stand-ins with the
same structural characteristics that the schemes depend on:

* planar-like topology with strong spatial locality,
* sparsity ``|E| ≈ 1.0–1.2 · |V|`` (directed-edge counts as in Table 1),
* Euclidean node coordinates consistent with edge weights (edge weight is the
  Euclidean length scaled by a detour factor ``≥ 1``), so Euclidean/landmark
  heuristics remain admissible.

Two generator families are provided: a perturbed grid (simple, fully
deterministic shape) and a Delaunay-based random planar network (the default
for the dataset registry in :mod:`repro.bench.datasets`).

numpy and scipy are optional: with numpy installed the generators draw from
``numpy.random.default_rng`` exactly as before (byte-identical networks for a
given seed), and with scipy installed candidate edges come from the true
Delaunay triangulation.  Without them a pure-Python RNG stands in and
candidate edges come from a bucketed k-nearest-neighbor graph
(:func:`_knn_candidate_edges`) patched to connectivity — structurally
equivalent (planar-like, local, sparse), not bit-identical.
"""

from __future__ import annotations

import math
import random as _random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # numpy is optional; the pure-Python RNG below stands in without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from ..exceptions import GraphError
from .graph import RoadNetwork


class _PurePythonRng:
    """Just enough of the ``numpy.random.Generator`` surface for this module."""

    def __init__(self, seed: int) -> None:
        self._rng = _random.Random(seed)

    def uniform(self, low: float, high: float, size=None):
        if size is None:
            return self._rng.uniform(low, high)
        if isinstance(size, tuple):
            count, width = size
            return [
                tuple(self._rng.uniform(low, high) for _ in range(width))
                for _ in range(count)
            ]
        return [self._rng.uniform(low, high) for _ in range(size)]

    def shuffle(self, items) -> None:
        self._rng.shuffle(items)

    def integers(self, low: int, high: int) -> int:
        return self._rng.randrange(low, high)


def _default_rng(seed: int):
    """The numpy generator when numpy is present (identical output to the
    historical hard dependency), a pure-Python stand-in otherwise."""
    if _np is not None:
        return _np.random.default_rng(seed)
    return _PurePythonRng(seed)

#: One streaming node record: ``(node_id, x, y, [(neighbor, weight), ...])``.
NodeRecord = Tuple[int, float, float, List[Tuple[int, float]]]


class _UnionFind:
    """Minimal union-find used to build spanning trees."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        self._parent[root_b] = root_a
        return True


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    jitter: float = 0.2,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """A rows x cols grid with jittered coordinates and optional edge drops.

    The network stays connected: candidate drops that would disconnect it are
    skipped.  Weights are the Euclidean edge lengths.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    rng = _default_rng(seed)
    network = RoadNetwork()
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            x = col * spacing + rng.uniform(-jitter, jitter) * spacing
            y = row * spacing + rng.uniform(-jitter, jitter) * spacing
            network.add_node(node_id, x, y)

    undirected: List[Tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            if col + 1 < cols:
                undirected.append((node_id, node_id + 1))
            if row + 1 < rows:
                undirected.append((node_id, node_id + cols))

    keep = _drop_edges_keeping_connectivity(undirected, rows * cols, drop_fraction, rng)
    for a, b in keep:
        weight = network.euclidean_distance(a, b)
        network.add_undirected_edge(a, b, max(weight, 1e-9))
    return network


def random_planar_network(
    num_nodes: int,
    edge_factor: float = 1.15,
    extent: float = 100.0,
    detour_max: float = 1.3,
    seed: int = 0,
) -> RoadNetwork:
    """A random planar-like road network.

    Nodes are uniform random points in ``[0, extent]²``.  Candidate edges come
    from the Delaunay triangulation of the points (guaranteeing planarity and
    locality); a random spanning tree subset ensures connectivity, and the
    shortest remaining candidates are added until the number of *undirected*
    edges reaches ``edge_factor · num_nodes`` (matching the sparsity of the
    paper's datasets).  Each undirected edge is stored as two directed edges.

    Edge weights are the Euclidean length multiplied by a per-edge detour
    factor drawn uniformly from ``[1, detour_max]``.
    """
    if num_nodes < 3:
        raise GraphError("random planar network needs at least 3 nodes")
    if edge_factor < 1.0:
        raise GraphError("edge_factor below 1.0 cannot keep the network connected")
    rng = _default_rng(seed)
    points = rng.uniform(0.0, extent, size=(num_nodes, 2))

    candidates = _delaunay_edges(points)
    lengths = {
        (a, b): math.hypot(points[a][0] - points[b][0], points[a][1] - points[b][1])
        for a, b in candidates
    }

    # spanning tree over the candidate edges (random order ⇒ random tree)
    order = list(candidates)
    rng.shuffle(order)
    union_find = _UnionFind(num_nodes)
    chosen: List[Tuple[int, int]] = []
    for a, b in order:
        if union_find.union(a, b):
            chosen.append((a, b))
    if len(chosen) != num_nodes - 1:
        raise GraphError("Delaunay candidate edges did not span all nodes")

    target_edges = int(round(edge_factor * num_nodes))
    chosen_set = set(chosen)
    extras = sorted(
        (edge for edge in candidates if edge not in chosen_set),
        key=lambda edge: lengths[edge],
    )
    for edge in extras:
        if len(chosen) >= target_edges:
            break
        chosen.append(edge)

    network = RoadNetwork()
    for node_id in range(num_nodes):
        network.add_node(node_id, float(points[node_id][0]), float(points[node_id][1]))
    for a, b in chosen:
        detour = rng.uniform(1.0, detour_max)
        weight = max(lengths[(a, b)] * detour, 1e-9)
        network.add_undirected_edge(a, b, weight)
    return network


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a deterministic 64-bit integer mix."""
    value = value & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _unit_hash(seed: int, node_id: int, salt: int) -> float:
    """Deterministic pseudo-random float in ``[-1, 1)`` from ``(seed, node, salt)``.

    Unlike a sequential RNG, the value only depends on its arguments, so any
    node's jitter is computable in O(1) — the property that lets the streaming
    generators derive a neighbor's coordinates without materializing it.
    """
    mixed = _mix64(seed * 0x9E3779B97F4A7C15 + node_id * 0xD1342543DE82EF95 + salt)
    return (mixed >> 11) / float(1 << 52) - 1.0


def _grid_point(
    row: int, col: int, cols: int, spacing: float, jitter: float, seed: int
) -> Tuple[float, float]:
    node_id = row * cols + col
    x = col * spacing + _unit_hash(seed, node_id, 0) * jitter * spacing
    y = row * spacing + _unit_hash(seed, node_id, 1) * jitter * spacing
    return x, y


def stream_grid_network(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    jitter: float = 0.2,
    seed: int = 0,
) -> Iterator[NodeRecord]:
    """Stream a rows x cols grid as :data:`NodeRecord` tuples, in node-id order.

    The continental-scale counterpart of :func:`grid_network`: designed to be
    piped straight into :func:`repro.storage.stream_node_database` so networks
    of 10⁶+ nodes land on an out-of-core page store without ever materializing
    a :class:`RoadNetwork`.  Memory use is O(1) per node — coordinates use the
    stateless hash jitter of :func:`_unit_hash`, so each record derives its
    neighbors' positions (and hence symmetric edge weights) locally.

    Every undirected grid edge appears as two directed edges, one in each
    endpoint's record; weights are the Euclidean length of the jittered edge.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    for row in range(rows):
        for col in range(cols):
            node_id = row * cols + col
            x, y = _grid_point(row, col, cols, spacing, jitter, seed)
            neighbors: List[Tuple[int, float]] = []
            for d_row, d_col in ((-1, 0), (0, -1), (0, 1), (1, 0)):
                n_row, n_col = row + d_row, col + d_col
                if not (0 <= n_row < rows and 0 <= n_col < cols):
                    continue
                nx, ny = _grid_point(n_row, n_col, cols, spacing, jitter, seed)
                weight = max(math.hypot(nx - x, ny - y), 1e-9)
                neighbors.append((n_row * cols + n_col, weight))
            yield node_id, x, y, neighbors


def stream_cluster_network(
    num_clusters: int,
    cluster_size: int,
    spacing: float = 10.0,
    radius: float = 2.0,
    jitter: float = 0.15,
    seed: int = 0,
) -> Iterator[NodeRecord]:
    """Stream a clustered network as :data:`NodeRecord` tuples.

    Clusters sit on a near-square grid of centers ``spacing`` apart; each
    cluster is a ring of ``cluster_size`` nodes at (jittered) ``radius`` from
    its center, and cluster ``c``'s gateway node (local index 0) links to the
    gateways of clusters ``c±1``, chaining the whole network together.  Like
    :func:`stream_grid_network` this is O(1) memory per node and emits both
    directions of every undirected edge, so it streams at any scale.
    """
    if num_clusters < 1 or cluster_size < 3:
        raise GraphError("need at least 1 cluster of at least 3 nodes")
    side = max(int(math.ceil(math.sqrt(num_clusters))), 1)

    def point(node_id: int) -> Tuple[float, float]:
        cluster, local = divmod(node_id, cluster_size)
        center_x = (cluster % side) * spacing
        center_y = (cluster // side) * spacing
        r = radius * (1.0 + _unit_hash(seed, node_id, 0) * jitter)
        theta = 2.0 * math.pi * local / cluster_size
        return center_x + r * math.cos(theta), center_y + r * math.sin(theta)

    total = num_clusters * cluster_size
    for node_id in range(total):
        cluster, local = divmod(node_id, cluster_size)
        x, y = point(node_id)
        targets: List[int] = [
            cluster * cluster_size + (local - 1) % cluster_size,
            cluster * cluster_size + (local + 1) % cluster_size,
        ]
        if local == 0:
            if cluster > 0:
                targets.append((cluster - 1) * cluster_size)
            if cluster + 1 < num_clusters:
                targets.append((cluster + 1) * cluster_size)
        neighbors: List[Tuple[int, float]] = []
        for target in sorted(set(targets) - {node_id}):
            tx, ty = point(target)
            neighbors.append((target, max(math.hypot(tx - x, ty - y), 1e-9)))
        yield node_id, x, y, neighbors


def network_from_records(records: Iterable[NodeRecord]) -> RoadNetwork:
    """Materialize a stream of :data:`NodeRecord` tuples into a network.

    Intended for test-scale streams (it holds the whole network in RAM); edges
    are buffered until all nodes exist, then added directed exactly as the
    records listed them.
    """
    network = RoadNetwork()
    edges: List[Tuple[int, int, float]] = []
    for node_id, x, y, neighbors in records:
        network.add_node(node_id, x, y)
        edges.extend((node_id, target, weight) for target, weight in neighbors)
    for source, target, weight in edges:
        network.add_edge(source, target, weight)
    return network


def _delaunay_edges(points) -> List[Tuple[int, int]]:
    """Undirected candidate edge list over ``points``.

    With scipy this is the Delaunay triangulation (the historical behaviour,
    bit-for-bit).  Without it, :func:`_knn_candidate_edges` supplies a
    bucketed nearest-neighbor graph with the same structural properties —
    local, sparse, connected — so the planar generator (and with it the
    tier-1 test suite) works on a pure-Python install.
    """
    try:
        from scipy.spatial import Delaunay  # imported lazily; scipy is optional
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        return _knn_candidate_edges(points)

    triangulation = Delaunay(points)
    edges = set()
    for simplex in triangulation.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        for u, v in ((a, b), (b, c), (a, c)):
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def _knn_candidate_edges(points, neighbors_per_node: int = 8) -> List[Tuple[int, int]]:
    """Scipy-free candidate edges: bucketed k-nearest neighbors, made connected.

    Points are hashed into a ``sqrt(N) x sqrt(N)`` grid of spatial buckets;
    each point connects to its ``neighbors_per_node`` nearest points found by
    expanding rings of buckets, which keeps the search local (amortized O(k)
    per node) and the resulting graph planar-like.  k-NN graphs can come out
    disconnected, which the spanning-tree stage downstream would reject, so
    isolated components are patched in by repeatedly joining the smallest
    component to its nearest outside point.
    """
    count = len(points)
    xs = [float(point[0]) for point in points]
    ys = [float(point[1]) for point in points]
    side = max(1, int(math.sqrt(count)))
    min_x, min_y = min(xs), min(ys)
    span_x = (max(xs) - min_x) or 1.0
    span_y = (max(ys) - min_y) or 1.0

    def bucket_of(index: int) -> Tuple[int, int]:
        return (
            min(side - 1, int((xs[index] - min_x) / span_x * side)),
            min(side - 1, int((ys[index] - min_y) / span_y * side)),
        )

    buckets: dict = {}
    for index in range(count):
        buckets.setdefault(bucket_of(index), []).append(index)

    edges = set()
    for index in range(count):
        bucket_x, bucket_y = bucket_of(index)
        ring = 1
        while True:
            nearby = [
                other
                for dx in range(-ring, ring + 1)
                for dy in range(-ring, ring + 1)
                for other in buckets.get((bucket_x + dx, bucket_y + dy), [])
                if other != index
            ]
            if len(nearby) >= neighbors_per_node or ring > side:
                break
            ring += 1
        nearby.sort(
            key=lambda other: (xs[index] - xs[other]) ** 2
            + (ys[index] - ys[other]) ** 2
        )
        for other in nearby[:neighbors_per_node]:
            edges.add((min(index, other), max(index, other)))

    # patch k-NN disconnection: join the smallest component to its nearest
    # outside point until one component remains
    union_find = _UnionFind(count)
    for a, b in edges:
        union_find.union(a, b)
    while True:
        components: dict = {}
        for index in range(count):
            components.setdefault(union_find.find(index), []).append(index)
        if len(components) <= 1:
            break
        _, members = min(components.items(), key=lambda item: len(item[1]))
        member_roots = {union_find.find(members[0])}
        best = None
        for inside in members:
            for outside in range(count):
                if union_find.find(outside) in member_roots:
                    continue
                gap = (xs[inside] - xs[outside]) ** 2 + (ys[inside] - ys[outside]) ** 2
                if best is None or gap < best[0]:
                    best = (gap, inside, outside)
        _, inside, outside = best
        edges.add((min(inside, outside), max(inside, outside)))
        union_find.union(inside, outside)
    return sorted(edges)


def _drop_edges_keeping_connectivity(
    undirected: Sequence[Tuple[int, int]],
    num_nodes: int,
    drop_fraction: float,
    rng,
) -> List[Tuple[int, int]]:
    """Remove up to ``drop_fraction`` of the edges without disconnecting the graph."""
    if drop_fraction <= 0:
        return list(undirected)
    if drop_fraction >= 1:
        raise GraphError("cannot drop all edges")
    edges = list(undirected)
    rng.shuffle(edges)
    to_drop = int(len(edges) * drop_fraction)

    # Keep a spanning structure: greedily mark edges as required via union-find,
    # then drop only from the non-required ones.
    union_find = _UnionFind(num_nodes)
    required = set()
    for edge in edges:
        if union_find.union(edge[0], edge[1]):
            required.add(edge)
    droppable = [edge for edge in edges if edge not in required]
    dropped = set(droppable[:to_drop])
    return [edge for edge in edges if edge not in dropped]
