"""Weighted road-network graph with Euclidean node coordinates.

The :class:`RoadNetwork` models the transportation network of the paper
(Section 3.1): a directed graph ``G = (V, E)`` whose nodes carry Euclidean
coordinates and whose edges carry positive traversal costs.  All schemes,
partitioners and pre-computation routines in this package operate on this
class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import GraphError

NodeId = int


@dataclass(frozen=True)
class Node:
    """A network node: a junction or shape point of the road network."""

    node_id: NodeId
    x: float
    y: float

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance to another node."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Edge:
    """A directed edge with a positive traversal cost."""

    source: NodeId
    target: NodeId
    weight: float

    def reversed(self) -> "Edge":
        """Return the same edge in the opposite direction."""
        return Edge(self.target, self.source, self.weight)


class RoadNetwork:
    """A directed, weighted road network embedded in the Euclidean plane.

    Nodes are identified by integers.  Adjacency is stored as
    ``node_id -> list[(neighbour_id, weight)]`` which is the representation
    serialised into the region data file ``Fd`` by the schemes.
    """

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Node] = {}
        self._adjacency: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
        self._edge_count = 0
        #: False when some node coordinates are placeholders (e.g. passage
        #: nodes inserted by a client that never learned their position);
        #: geometric A* heuristics are inadmissible on such graphs and fall
        #: back to the zero heuristic.
        self.heuristic_safe = True
        #: Compiled CSR form, managed by :func:`repro.network.indexed.csr_for`.
        #: Networks are append-only, so the cache is keyed (and invalidated)
        #: by the ``(num_nodes, num_edges)`` snapshot stored alongside it.
        self._csr_cache: Optional[Tuple[Tuple[int, int], object]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: NodeId, x: float, y: float) -> Node:
        """Add a node; re-adding an existing id with new coordinates is an error."""
        if node_id in self._nodes:
            existing = self._nodes[node_id]
            if existing.x != x or existing.y != y:
                raise GraphError(f"node {node_id} already exists at different coordinates")
            return existing
        node = Node(node_id, float(x), float(y))
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        return node

    def add_edge(self, source: NodeId, target: NodeId, weight: float) -> Edge:
        """Add a directed edge; both endpoints must already exist."""
        if source not in self._nodes:
            raise GraphError(f"unknown source node {source}")
        if target not in self._nodes:
            raise GraphError(f"unknown target node {target}")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self._adjacency[source].append((target, float(weight)))
        self._edge_count += 1
        return Edge(source, target, float(weight))

    def add_undirected_edge(self, a: NodeId, b: NodeId, weight: float) -> None:
        """Add an edge in both directions (the common case for road segments)."""
        self.add_edge(a, b, weight)
        self.add_edge(b, a, weight)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._edge_count

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[NodeId]:
        return iter(self._nodes.keys())

    def neighbors(self, node_id: NodeId) -> List[Tuple[NodeId, float]]:
        """Outgoing ``(neighbour, weight)`` pairs of a node."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed edges."""
        for source, adjacency in self._adjacency.items():
            for target, weight in adjacency:
                yield Edge(source, target, weight)

    def out_degree(self, node_id: NodeId) -> int:
        return len(self.neighbors(node_id))

    def edge_weight(self, source: NodeId, target: NodeId) -> float:
        """Weight of the (first) edge from ``source`` to ``target``."""
        for neighbor, weight in self.neighbors(source):
            if neighbor == target:
                return weight
        raise GraphError(f"no edge from {source} to {target}")

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        return any(neighbor == target for neighbor, _ in self.neighbors(source))

    def euclidean_distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes (used by A* heuristics)."""
        return self.node(a).distance_to(self.node(b))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` of the node coordinates."""
        if not self._nodes:
            raise GraphError("bounding box of an empty network is undefined")
        xs = [node.x for node in self._nodes.values()]
        ys = [node.y for node in self._nodes.values()]
        return min(xs), min(ys), max(xs), max(ys)

    def nearest_node(self, x: float, y: float) -> NodeId:
        """Return the id of the node closest to point ``(x, y)``.

        Used to map arbitrary query coordinates to network nodes (the paper
        allows sources/destinations anywhere on the network; we snap to the
        closest node).
        """
        if not self._nodes:
            raise GraphError("nearest node of an empty network is undefined")
        best_id = None
        best_dist = math.inf
        for node in self._nodes.values():
            dist = math.hypot(node.x - x, node.y - y)
            if dist < best_dist:
                best_dist = dist
                best_id = node.node_id
        return best_id

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, node_ids: Iterable[NodeId]) -> "RoadNetwork":
        """Return the subgraph induced by ``node_ids``.

        Edges are kept only when both endpoints are in the node set; this is
        exactly what a querying client possesses after fetching a set of
        region pages from ``Fd``.
        """
        keep = set(node_ids)
        sub = RoadNetwork()
        for node_id in keep:
            node = self.node(node_id)
            sub.add_node(node.node_id, node.x, node.y)
        for node_id in keep:
            for neighbor, weight in self._adjacency[node_id]:
                if neighbor in keep:
                    sub.add_edge(node_id, neighbor, weight)
        return sub

    def reversed(self) -> "RoadNetwork":
        """Return the network with every edge reversed (for backward searches)."""
        rev = RoadNetwork()
        for node in self.nodes():
            rev.add_node(node.node_id, node.x, node.y)
        for edge in self.edges():
            rev.add_edge(edge.target, edge.source, edge.weight)
        return rev

    def copy(self) -> "RoadNetwork":
        dup = RoadNetwork()
        for node in self.nodes():
            dup.add_node(node.node_id, node.x, node.y)
        for edge in self.edges():
            dup.add_edge(edge.source, edge.target, edge.weight)
        return dup

    def max_node_id(self) -> NodeId:
        if not self._nodes:
            raise GraphError("empty network has no node ids")
        return max(self._nodes)

    def is_connected(self) -> bool:
        """True when every node is reachable from an arbitrary start node.

        The generators produce symmetric edges, so simple reachability is an
        adequate connectivity check for them.
        """
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor, _ in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
