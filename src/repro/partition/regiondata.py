"""Encoding of region data: the node records stored in the region data file ``Fd``.

The information kept for a node (Section 5.1) is its identifier, its Euclidean
coordinates and its adjacency list (adjacent node identifiers and the weights
of the corresponding edges).  Both the partitioners (which must know record
sizes to pack pages) and the ``Fd`` file builders (which write the records)
use the functions in this module, so sizes are consistent by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..network import NodeId, RoadNetwork
from ..storage import RecordReader, RecordWriter


def encode_node_record(network: RoadNetwork, node_id: NodeId) -> bytes:
    """Serialize one node: id, coordinates and adjacency list."""
    node = network.node(node_id)
    writer = RecordWriter()
    writer.uint32(node.node_id)
    writer.float32(node.x)
    writer.float32(node.y)
    neighbors = network.neighbors(node_id)
    writer.varint(len(neighbors))
    for neighbor, weight in neighbors:
        writer.uint32(neighbor)
        writer.float32(weight)
    return writer.getvalue()


def node_record_size(network: RoadNetwork, node_id: NodeId) -> int:
    """Exact on-disk size of a node record."""
    return len(encode_node_record(network, node_id))


def encode_region_payload(network: RoadNetwork, node_ids) -> bytes:
    """Serialize the full payload of a region: a count followed by node records."""
    node_ids = list(node_ids)
    writer = RecordWriter()
    writer.varint(len(node_ids))
    for node_id in node_ids:
        writer.raw(encode_node_record(network, node_id))
    return writer.getvalue()


def decode_region_payload(data: bytes) -> Dict[NodeId, Tuple[float, float, List[Tuple[NodeId, float]]]]:
    """Parse a region payload back into ``{node_id: (x, y, adjacency)}``."""
    reader = RecordReader(data)
    count = reader.varint()
    nodes: Dict[NodeId, Tuple[float, float, List[Tuple[NodeId, float]]]] = {}
    for _ in range(count):
        node_id = reader.uint32()
        x = reader.float32()
        y = reader.float32()
        degree = reader.varint()
        adjacency = reader.adjacency_list(degree)
        nodes[node_id] = (x, y, adjacency)
    return nodes


def merge_region_payloads(payloads) -> "RoadNetwork":
    """Assemble a client-side subgraph from decoded region payloads.

    Edges pointing to nodes outside the retrieved regions are dropped, exactly
    as happens when the querying client runs Dijkstra on the data it fetched.
    """
    from ..network import RoadNetwork  # local import to avoid a cycle at module load

    merged: Dict[NodeId, Tuple[float, float, List[Tuple[NodeId, float]]]] = {}
    for payload in payloads:
        merged.update(payload)
    subgraph = RoadNetwork()
    for node_id, (x, y, _) in merged.items():
        subgraph.add_node(node_id, x, y)
    for node_id, (_, _, adjacency) in merged.items():
        for neighbor, weight in adjacency:
            if neighbor in merged:
                subgraph.add_edge(node_id, neighbor, weight)
    return subgraph
