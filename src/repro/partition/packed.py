"""Packed KD-tree partitioning (Section 5.6).

The plain KD-tree can leave up to half of every ``Fd`` page empty.  The packed
construction sorts the node-information byte stream along the split axis and
places the split at the ``2^i · (B − z)``-th byte, for the smallest ``i`` that
puts the split past the middle of the stream, where ``B`` is the page capacity
and ``z`` the largest single node record.  The left child is then halved at
the middle byte until its leaves fit a page — which, because the left stream
holds a power-of-two multiple of ``B − z`` bytes, concentrates every leaf at
``B − z`` bytes or more.  The right child is processed recursively with the
same packing step on the next axis.

The construction therefore guarantees at most ``z`` unutilised bytes per page.
With the 4 KByte pages of Table 2 (where a node record is a few dozen bytes)
this is the >95% utilization the paper reports; with the scaled-down pages of
the quick benchmark profile the guarantee is proportionally weaker because
``z/B`` is larger, but packed partitioning still clearly beats the plain
KD-tree, which is the relationship Figure 8 measures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..exceptions import PartitionError
from ..network import NodeId, RoadNetwork
from .kdtree import (
    SizeFn,
    _RegionCollector,
    _check_capacity,
    _coordinate,
    _node_sizes,
    _sort_by_axis,
    adjust_split_for_ties,
)
from .regiondata import node_record_size
from .regions import Partitioning, SplitNode, TreeNode


def packed_kdtree_partition(
    network: RoadNetwork,
    capacity_bytes: int,
    size_fn: SizeFn = node_record_size,
    first_axis: int = 0,
) -> Partitioning:
    """Partition the network with the packed (space-efficient) KD-tree."""
    node_ids = list(network.node_ids())
    if not node_ids:
        raise PartitionError("cannot partition an empty network")
    max_record = _check_capacity(network, node_ids, capacity_bytes, size_fn)
    usable = capacity_bytes - max_record
    if usable <= 0:
        raise PartitionError(
            "page capacity leaves no packing leeway (largest record fills a whole page)"
        )

    collector = _RegionCollector()

    def total_size(ids: Sequence[NodeId]) -> int:
        return sum(_node_sizes(network, ids, size_fn))

    def split_at_byte(
        ids: Sequence[NodeId], axis: int, target_bytes: float
    ) -> Optional[Tuple[List[NodeId], List[NodeId], float]]:
        """Split the sorted byte stream at the record boundary closest to
        ``target_bytes`` (bounding the drift to half a record per split)."""
        sorted_ids = _sort_by_axis(network, ids, axis)
        sizes = _node_sizes(network, sorted_ids, size_fn)
        cumulative = 0
        split_index = len(sorted_ids) - 1
        for position, size in enumerate(sizes):
            previous = cumulative
            cumulative += size
            if cumulative >= target_bytes:
                include_left = (cumulative - target_bytes) <= (target_bytes - previous)
                split_index = position + 1 if include_left else position
                break
        split_index = max(1, min(split_index, len(sorted_ids) - 1))
        adjusted = adjust_split_for_ties(network, sorted_ids, axis, split_index)
        if adjusted is None:
            return None
        left_ids = list(sorted_ids[:adjusted])
        right_ids = list(sorted_ids[adjusted:])
        split_value = _coordinate(network, right_ids[0], axis)
        return left_ids, right_ids, split_value

    def split_or_other_axis(ids: Sequence[NodeId], axis: int, target_bytes: float):
        split = split_at_byte(ids, axis, target_bytes)
        if split is not None:
            return axis, split
        other = 1 - axis
        split = split_at_byte(ids, other, target_bytes)
        if split is None:
            raise PartitionError(
                "region data exceeds a page but all node coordinates coincide"
            )
        return other, split

    def halve(ids: Sequence[NodeId], axis: int) -> TreeNode:
        """Middle-byte halving until the chunk fits into a single page."""
        size = total_size(ids)
        if size <= capacity_bytes:
            return collector.add_leaf(ids)
        used_axis, (left_ids, right_ids, split_value) = split_or_other_axis(ids, axis, size / 2.0)
        return SplitNode(
            used_axis,
            split_value,
            halve(left_ids, 1 - used_axis),
            halve(right_ids, 1 - used_axis),
        )

    def pack(ids: Sequence[NodeId], axis: int) -> TreeNode:
        size = total_size(ids)
        if size <= capacity_bytes:
            return collector.add_leaf(ids)
        # smallest i such that 2^i · (B − z) lies past the middle byte of the stream
        levels = 0
        while (1 << levels) * usable <= size / 2.0:
            levels += 1
        split_bytes = (1 << levels) * usable
        if split_bytes >= size:
            # the whole stream already packs into 2^levels well-utilized pages
            return halve(ids, axis)
        used_axis, (left_ids, right_ids, split_value) = split_or_other_axis(ids, axis, split_bytes)
        return SplitNode(
            used_axis,
            split_value,
            halve(left_ids, 1 - used_axis),
            pack(right_ids, 1 - used_axis),
        )

    tree = pack(node_ids, first_axis)
    return Partitioning(network, collector.regions, tree)
