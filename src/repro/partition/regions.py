"""Regions and partitionings of the road network.

A *partitioning* assigns every network node to exactly one region (a leaf of a
KD-tree over the Euclidean plane, Section 5.1).  Clients map their query
source and destination to regions using only Euclidean coordinates and the
split tree shipped in the header file, never node or region identifiers —
exactly as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import PartitionError
from ..network import NodeId, RoadNetwork

RegionId = int


@dataclass(frozen=True)
class Region:
    """One region of the partitioning: a KD-tree leaf and the nodes inside it."""

    region_id: RegionId
    node_ids: Tuple[NodeId, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class SplitNode:
    """Internal KD-tree node: values strictly below ``value`` on ``axis`` go left."""

    axis: int          # 0 = x, 1 = y
    value: float
    left: "TreeNode"
    right: "TreeNode"


@dataclass(frozen=True)
class LeafNode:
    """KD-tree leaf referencing a region."""

    region_id: RegionId


TreeNode = Union[SplitNode, LeafNode]


class Partitioning:
    """A complete partitioning: regions, node assignment and the split tree."""

    def __init__(self, network: RoadNetwork, regions: Sequence[Region], tree: TreeNode) -> None:
        self.network = network
        self._regions: List[Region] = list(regions)
        self.tree = tree
        self._node_to_region: Dict[NodeId, RegionId] = {}
        for region in self._regions:
            for node_id in region.node_ids:
                if node_id in self._node_to_region:
                    raise PartitionError(f"node {node_id} assigned to two regions")
                self._node_to_region[node_id] = region.region_id
        missing = set(network.node_ids()) - set(self._node_to_region)
        if missing:
            raise PartitionError(f"{len(missing)} nodes are not assigned to any region")

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_regions(self) -> int:
        return len(self._regions)

    def regions(self) -> Iterator[Region]:
        return iter(self._regions)

    def region(self, region_id: RegionId) -> Region:
        if region_id < 0 or region_id >= len(self._regions):
            raise PartitionError(f"unknown region {region_id}")
        return self._regions[region_id]

    def region_ids(self) -> Iterator[RegionId]:
        return iter(range(len(self._regions)))

    def region_of_node(self, node_id: NodeId) -> RegionId:
        try:
            return self._node_to_region[node_id]
        except KeyError:
            raise PartitionError(f"node {node_id} is not part of the partitioning") from None

    def region_of_point(self, x: float, y: float) -> RegionId:
        """Map a Euclidean point to its containing region by descending the tree."""
        node = self.tree
        while isinstance(node, SplitNode):
            coordinate = x if node.axis == 0 else y
            node = node.left if coordinate < node.value else node.right
        return node.region_id

    # ------------------------------------------------------------------ #
    # consistency and serialization helpers
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check that the split tree and the node assignment agree."""
        for region in self._regions:
            for node_id in region.node_ids:
                node = self.network.node(node_id)
                mapped = self.region_of_point(node.x, node.y)
                if mapped != region.region_id:
                    raise PartitionError(
                        f"node {node_id} is stored in region {region.region_id} but the "
                        f"split tree maps its coordinates to region {mapped}"
                    )

    def tree_splits(self) -> List[Tuple[int, int, float, int, int]]:
        """Flatten the tree to a list of records for header serialization.

        Each entry is ``(node_index, axis, value, left_index, right_index)``
        for internal nodes; leaves are encoded with ``axis = 2`` and the region
        id stored in ``left_index``.
        """
        records: List[Tuple[int, int, float, int, int]] = []

        def visit(node: TreeNode) -> int:
            index = len(records)
            records.append((index, 0, 0.0, 0, 0))  # placeholder
            if isinstance(node, LeafNode):
                records[index] = (index, 2, 0.0, node.region_id, 0)
            else:
                left_index = visit(node.left)
                right_index = visit(node.right)
                records[index] = (index, node.axis, node.value, left_index, right_index)
            return index

        visit(self.tree)
        return records

    @staticmethod
    def tree_from_splits(records: Sequence[Tuple[int, int, float, int, int]]) -> TreeNode:
        """Rebuild the split tree from :meth:`tree_splits` records."""
        if not records:
            raise PartitionError("empty split-tree description")

        def build(index: int) -> TreeNode:
            _, axis, value, left, right = records[index]
            if axis == 2:
                return LeafNode(left)
            return SplitNode(axis, value, build(left), build(right))

        return build(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partitioning(regions={self.num_regions})"
