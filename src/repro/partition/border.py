"""Border nodes (Section 5.2).

Border nodes are the points where network edges cross region boundaries.  Any
path from a source inside region ``R`` to a destination outside ``R`` must
pass through one of ``R``'s border nodes, which is the property the
pre-computation of ``S_ij`` region sets and ``G_ij`` passage subgraphs relies
on.

Border nodes are materialised only inside an *augmented* copy of the network:
every edge whose endpoints lie in different regions is subdivided at its
boundary crossing, the two halves carrying the original weight split
proportionally.  Subdivision preserves all path costs, so shortest paths in
the augmented network map one-to-one onto shortest paths in the original one.
After pre-computation the border nodes are discarded (they are never stored in
any database file), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..network import NodeId, RoadNetwork
from .regions import Partitioning, RegionId


@dataclass
class BorderNodeIndex:
    """The augmented network plus the bookkeeping needed by pre-computation."""

    #: Copy of the network with border nodes inserted on inter-region edges.
    augmented: RoadNetwork
    #: Border node ids grouped by the regions they border.
    borders_of_region: Dict[RegionId, List[NodeId]]
    #: For each border node, the (ordered) pair of regions it separates.
    regions_of_border: Dict[NodeId, Tuple[RegionId, RegionId]]
    #: For each border node, the original undirected edge it subdivides.
    original_edge_of_border: Dict[NodeId, Tuple[NodeId, NodeId]]

    @property
    def num_border_nodes(self) -> int:
        return len(self.regions_of_border)

    def is_border(self, node_id: NodeId) -> bool:
        return node_id in self.regions_of_border

    def border_nodes(self) -> List[NodeId]:
        return list(self.regions_of_border.keys())

    def regions_of_node(self, partitioning: Partitioning, node_id: NodeId) -> Tuple[RegionId, ...]:
        """Regions a node of the augmented network belongs to.

        Original nodes belong to exactly one region; border nodes lie on a
        boundary and belong to both adjacent regions.
        """
        if node_id in self.regions_of_border:
            return self.regions_of_border[node_id]
        return (partitioning.region_of_node(node_id),)


def compute_border_nodes(network: RoadNetwork, partitioning: Partitioning) -> BorderNodeIndex:
    """Insert border nodes on every inter-region edge and index them by region.

    The crossing point is placed at the midpoint of the edge (the exact
    position along the segment does not affect any shortest-path cost because
    the two halves always sum to the original weight).
    """
    augmented = network.copy()
    next_id = network.max_node_id() + 1

    borders_of_region: Dict[RegionId, List[NodeId]] = {
        region_id: [] for region_id in partitioning.region_ids()
    }
    regions_of_border: Dict[NodeId, Tuple[RegionId, RegionId]] = {}
    original_edge_of_border: Dict[NodeId, Tuple[NodeId, NodeId]] = {}

    # Collect crossing edges as undirected pairs so that an edge present in
    # both directions is subdivided by a single border node.
    crossing: Dict[Tuple[NodeId, NodeId], List[Tuple[NodeId, NodeId, float]]] = {}
    for edge in network.edges():
        region_u = partitioning.region_of_node(edge.source)
        region_v = partitioning.region_of_node(edge.target)
        if region_u == region_v:
            continue
        key = (min(edge.source, edge.target), max(edge.source, edge.target))
        crossing.setdefault(key, []).append((edge.source, edge.target, edge.weight))

    # Rebuild the augmented network without the crossing edges, then add the
    # subdivided halves through the new border nodes.
    augmented = RoadNetwork()
    for node in network.nodes():
        augmented.add_node(node.node_id, node.x, node.y)
    crossing_directed: Set[Tuple[NodeId, NodeId]] = {
        (source, target)
        for directed_edges in crossing.values()
        for source, target, _ in directed_edges
    }
    for edge in network.edges():
        if (edge.source, edge.target) in crossing_directed:
            continue
        augmented.add_edge(edge.source, edge.target, edge.weight)

    for (node_a, node_b), directed_edges in sorted(crossing.items()):
        point_a = network.node(node_a)
        point_b = network.node(node_b)
        border_id = next_id
        next_id += 1
        augmented.add_node(border_id, (point_a.x + point_b.x) / 2.0, (point_a.y + point_b.y) / 2.0)
        region_a = partitioning.region_of_node(node_a)
        region_b = partitioning.region_of_node(node_b)
        regions_of_border[border_id] = (region_a, region_b)
        original_edge_of_border[border_id] = (node_a, node_b)
        borders_of_region[region_a].append(border_id)
        borders_of_region[region_b].append(border_id)
        for source, target, weight in directed_edges:
            augmented.add_edge(source, border_id, weight / 2.0)
            augmented.add_edge(border_id, target, weight / 2.0)

    return BorderNodeIndex(
        augmented=augmented,
        borders_of_region=borders_of_region,
        regions_of_border=regions_of_border,
        original_edge_of_border=original_edge_of_border,
    )
