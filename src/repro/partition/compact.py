"""Compact (compressed) region-payload codec — future-work ablation.

The standard region-data records (:mod:`repro.partition.regiondata`) store one
node as ``uint32 id, float32 x, float32 y, varint degree, (uint32 neighbour,
float32 weight)*``.  This module provides an alternative codec exploiting the
structure of road-network data, as suggested by the paper's conclusion:

* node and neighbour identifiers are delta + zig-zag + varint encoded — the
  KD-tree assigns spatially clustered identifiers, so deltas are small;
* coordinates are quantised onto a 16-bit grid spanning the region's bounding
  box (a fraction of a metre of error on city-scale extents);
* edge weights are quantised onto a configurable resolution grid and
  varint encoded.

The codec is intentionally *not* wired into the scheme builders — it exists to
quantify, in the ablation benchmark, how much smaller the region data file
``Fd`` (and therefore its PIR retrieval cost) could become.  Coordinate and
weight quantisation make it lossy but with a bounded, configurable error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..exceptions import StorageError
from ..network import NodeId, RoadNetwork
from ..storage.compression import (
    decode_uint_sequence,
    decode_varint,
    delta_decode_ids,
    delta_encode_ids,
    encode_uint_sequence,
    encode_varint,
    quantize_weights,
)
from .regiondata import encode_region_payload

#: Number of grid cells per axis used for coordinate quantisation.
_COORD_GRID = 65535


@dataclass(frozen=True)
class CompactCodecConfig:
    """Tuning knobs of the compact codec."""

    #: Edge-weight quantisation step (absolute units of the weight).
    weight_resolution: float = 1e-3

    def __post_init__(self) -> None:
        if self.weight_resolution <= 0:
            raise StorageError("weight_resolution must be positive")


def _pack_floats(value: float, low: float, span: float) -> int:
    if span <= 0:
        return 0
    ratio = (value - low) / span
    ratio = min(max(ratio, 0.0), 1.0)
    return int(round(ratio * _COORD_GRID))


def _unpack_float(tick: int, low: float, span: float) -> float:
    if span <= 0:
        return low
    return low + (tick / _COORD_GRID) * span


def encode_region_payload_compact(
    network: RoadNetwork,
    node_ids: Iterable[NodeId],
    config: CompactCodecConfig = CompactCodecConfig(),
) -> bytes:
    """Serialize a region's nodes with the compact codec."""
    node_ids = sorted(node_ids)
    xs = [network.node(node_id).x for node_id in node_ids] or [0.0]
    ys = [network.node(node_id).y for node_id in node_ids] or [0.0]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x, span_y = max_x - min_x, max_y - min_y

    out = bytearray()
    # region bounding box (4 x 8-byte doubles are a negligible fixed overhead)
    import struct

    out.extend(struct.pack("<4d", min_x, min_y, span_x, span_y))
    out.extend(encode_varint(int(round(1.0 / config.weight_resolution))))
    out.extend(delta_encode_ids(node_ids))

    coord_ticks: List[int] = []
    for node_id in node_ids:
        node = network.node(node_id)
        coord_ticks.append(_pack_floats(node.x, min_x, span_x))
        coord_ticks.append(_pack_floats(node.y, min_y, span_y))
    out.extend(encode_uint_sequence(coord_ticks))

    for node_id in node_ids:
        neighbors = network.neighbors(node_id)
        neighbor_ids = [neighbor for neighbor, _ in neighbors]
        weights = [weight for _, weight in neighbors]
        ticks, _ = quantize_weights(weights, config.weight_resolution)
        # neighbours are stored as deltas from the owning node id
        out.extend(delta_encode_ids([node_id - neighbor for neighbor in neighbor_ids]))
        out.extend(encode_uint_sequence(ticks))
    return bytes(out)


def decode_region_payload_compact(
    data: bytes,
) -> Dict[NodeId, Tuple[float, float, List[Tuple[NodeId, float]]]]:
    """Inverse of :func:`encode_region_payload_compact`.

    Returns the same ``{node_id: (x, y, adjacency)}`` mapping as
    :func:`repro.partition.regiondata.decode_region_payload`, up to the
    quantisation error of coordinates and weights.
    """
    import struct

    if len(data) < 32:
        raise StorageError("compact region payload too short")
    min_x, min_y, span_x, span_y = struct.unpack_from("<4d", data, 0)
    offset = 32
    inverse_resolution, offset = decode_varint(data, offset)
    resolution = 1.0 / inverse_resolution
    node_ids, offset = delta_decode_ids(data, offset)
    coord_ticks, offset = decode_uint_sequence(data, offset)
    if len(coord_ticks) != 2 * len(node_ids):
        raise StorageError("corrupt compact payload: coordinate count mismatch")

    payload: Dict[NodeId, Tuple[float, float, List[Tuple[NodeId, float]]]] = {}
    adjacency_blocks: List[List[Tuple[NodeId, float]]] = []
    for position, node_id in enumerate(node_ids):
        deltas, offset = delta_decode_ids(data, offset)
        ticks, offset = decode_uint_sequence(data, offset)
        if len(deltas) != len(ticks):
            raise StorageError("corrupt compact payload: adjacency count mismatch")
        adjacency = [
            (node_id - delta, tick * resolution) for delta, tick in zip(deltas, ticks)
        ]
        adjacency_blocks.append(adjacency)
    for position, node_id in enumerate(node_ids):
        x = _unpack_float(coord_ticks[2 * position], min_x, span_x)
        y = _unpack_float(coord_ticks[2 * position + 1], min_y, span_y)
        payload[node_id] = (x, y, adjacency_blocks[position])
    return payload


@dataclass
class RegionCompressionReport:
    """Size comparison of the standard versus the compact region codec."""

    num_regions: int
    standard_bytes: int
    compact_bytes: int
    standard_pages: int
    compact_pages: int

    @property
    def byte_ratio(self) -> float:
        if self.standard_bytes == 0:
            return 1.0
        return self.compact_bytes / self.standard_bytes

    @property
    def page_ratio(self) -> float:
        if self.standard_pages == 0:
            return 1.0
        return self.compact_pages / self.standard_pages


def compare_region_codecs(
    network: RoadNetwork,
    partitioning,
    page_size: int,
    config: CompactCodecConfig = CompactCodecConfig(),
) -> RegionCompressionReport:
    """Measure how much smaller ``Fd`` would be under the compact codec.

    Page counts assume the CI/PI layout of one (or more) whole pages per
    region, i.e. each region occupies ``ceil(payload / page_size)`` pages.
    """
    if page_size <= 0:
        raise StorageError("page size must be positive")
    standard_bytes = 0
    compact_bytes = 0
    standard_pages = 0
    compact_pages = 0
    for region in partitioning.regions():
        node_ids = list(region.node_ids)
        standard = encode_region_payload(network, node_ids)
        compact = encode_region_payload_compact(network, node_ids, config)
        standard_bytes += len(standard)
        compact_bytes += len(compact)
        standard_pages += max(1, -(-len(standard) // page_size))
        compact_pages += max(1, -(-len(compact) // page_size))
    return RegionCompressionReport(
        num_regions=partitioning.num_regions,
        standard_bytes=standard_bytes,
        compact_bytes=compact_bytes,
        standard_pages=standard_pages,
        compact_pages=compact_pages,
    )
