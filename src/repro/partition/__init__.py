"""Network partitioning: KD-tree regions, packed partitioning and border nodes."""

from .border import BorderNodeIndex, compute_border_nodes
from .compact import (
    CompactCodecConfig,
    RegionCompressionReport,
    compare_region_codecs,
    decode_region_payload_compact,
    encode_region_payload_compact,
)
from .kdtree import plain_kdtree_partition
from .packed import packed_kdtree_partition
from .regiondata import (
    decode_region_payload,
    encode_node_record,
    encode_region_payload,
    merge_region_payloads,
    node_record_size,
)
from .regions import LeafNode, Partitioning, Region, RegionId, SplitNode

__all__ = [
    "BorderNodeIndex",
    "CompactCodecConfig",
    "LeafNode",
    "Partitioning",
    "Region",
    "RegionCompressionReport",
    "RegionId",
    "SplitNode",
    "compare_region_codecs",
    "compute_border_nodes",
    "decode_region_payload",
    "decode_region_payload_compact",
    "encode_region_payload_compact",
    "encode_node_record",
    "encode_region_payload",
    "merge_region_payloads",
    "node_record_size",
    "packed_kdtree_partition",
    "plain_kdtree_partition",
]
