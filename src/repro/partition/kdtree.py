"""Plain KD-tree partitioning (Section 5.1).

The network is split recursively along alternating axes (at the median of the
node information stream) until the region data of every leaf fits into one
disk page (or, for clustered variants, a fixed number of pages).  This is the
baseline partitioner; it can leave up to ~50% of each page unused, which is
what the packed variant of Section 5.6 fixes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..exceptions import PartitionError
from ..network import NodeId, RoadNetwork
from .regiondata import node_record_size
from .regions import LeafNode, Partitioning, Region, SplitNode, TreeNode

SizeFn = Callable[[RoadNetwork, NodeId], int]


def _node_sizes(network: RoadNetwork, node_ids: Sequence[NodeId], size_fn: SizeFn) -> List[int]:
    return [size_fn(network, node_id) for node_id in node_ids]


def _sort_by_axis(network: RoadNetwork, node_ids: Sequence[NodeId], axis: int) -> List[NodeId]:
    def key(node_id: NodeId) -> Tuple[float, int]:
        node = network.node(node_id)
        coordinate = node.x if axis == 0 else node.y
        return (coordinate, node_id)

    return sorted(node_ids, key=key)


def _coordinate(network: RoadNetwork, node_id: NodeId, axis: int) -> float:
    node = network.node(node_id)
    return node.x if axis == 0 else node.y


def adjust_split_for_ties(
    network: RoadNetwork, sorted_ids: Sequence[NodeId], axis: int, split_index: int
) -> Optional[int]:
    """Move ``split_index`` to the closest position where the boundary coordinates differ.

    ``split_index`` is the number of nodes that go to the left child.  Returns
    ``None`` when every node shares the same coordinate on this axis (no valid
    split exists).
    """
    count = len(sorted_ids)
    if count < 2:
        return None
    split_index = max(1, min(count - 1, split_index))

    def valid(index: int) -> bool:
        left_coord = _coordinate(network, sorted_ids[index - 1], axis)
        right_coord = _coordinate(network, sorted_ids[index], axis)
        return left_coord < right_coord

    if valid(split_index):
        return split_index
    for delta in range(1, count):
        for candidate in (split_index - delta, split_index + delta):
            if 1 <= candidate <= count - 1 and valid(candidate):
                return candidate
    return None


class _RegionCollector:
    """Accumulates leaf regions in creation order and assigns their identifiers."""

    def __init__(self) -> None:
        self.regions: List[Region] = []

    def add_leaf(self, node_ids: Sequence[NodeId]) -> LeafNode:
        region_id = len(self.regions)
        self.regions.append(Region(region_id, tuple(node_ids)))
        return LeafNode(region_id)


def plain_kdtree_partition(
    network: RoadNetwork,
    capacity_bytes: int,
    size_fn: SizeFn = node_record_size,
    first_axis: int = 0,
) -> Partitioning:
    """Partition the network with a standard (median-split) KD-tree.

    ``capacity_bytes`` is the page payload available for one region's data.
    """
    node_ids = list(network.node_ids())
    if not node_ids:
        raise PartitionError("cannot partition an empty network")
    _check_capacity(network, node_ids, capacity_bytes, size_fn)

    collector = _RegionCollector()

    def build(ids: Sequence[NodeId], axis: int) -> TreeNode:
        sizes = _node_sizes(network, ids, size_fn)
        if sum(sizes) <= capacity_bytes:
            return collector.add_leaf(ids)
        split = _median_split(network, ids, axis)
        if split is None:
            other_axis = 1 - axis
            split = _median_split(network, ids, other_axis)
            if split is None:
                raise PartitionError(
                    "region data exceeds a page but all node coordinates coincide"
                )
            axis = other_axis
        left_ids, right_ids, split_value = split
        return SplitNode(
            axis,
            split_value,
            build(left_ids, 1 - axis),
            build(right_ids, 1 - axis),
        )

    def _median_split(
        net: RoadNetwork, ids: Sequence[NodeId], axis: int
    ) -> Optional[Tuple[List[NodeId], List[NodeId], float]]:
        sorted_ids = _sort_by_axis(net, ids, axis)
        index = adjust_split_for_ties(net, sorted_ids, axis, len(sorted_ids) // 2)
        if index is None:
            return None
        left_ids = sorted_ids[:index]
        right_ids = sorted_ids[index:]
        split_value = _coordinate(net, right_ids[0], axis)
        return left_ids, right_ids, split_value

    tree = build(node_ids, first_axis)
    return Partitioning(network, collector.regions, tree)


def _check_capacity(
    network: RoadNetwork, node_ids: Sequence[NodeId], capacity_bytes: int, size_fn: SizeFn
) -> int:
    """Validate that every individual node record fits; returns the maximum record size."""
    max_size = max(size_fn(network, node_id) for node_id in node_ids)
    if max_size > capacity_bytes:
        raise PartitionError(
            f"largest node record ({max_size} bytes) exceeds the page capacity "
            f"({capacity_bytes} bytes); use a larger page size or clustered regions"
        )
    return max_size
