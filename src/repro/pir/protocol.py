"""Abstract PIR protocol interface.

The paper treats PIR as a black-box building block (Section 1): any protocol
that lets a client retrieve the ``i``-th page of a file without the server
learning ``i`` can back the framework.  This module defines that black box.

Two kinds of implementations live in this package:

* *real* protocols (:mod:`repro.pir.xor_pir`, :mod:`repro.pir.additive_pir`)
  that perform genuine oblivious retrieval and are used in tests/examples to
  demonstrate the privacy property end to end on small files, and
* the *hardware-aided simulator* (:mod:`repro.pir.scp`) that models the
  Williams & Sion protocol on the IBM 4764 co-processor, which is what the
  paper's evaluation uses.
"""

from __future__ import annotations

import abc
from typing import List, Sequence


class PirProtocol(abc.ABC):
    """Retrieves one block from a database of equal-sized blocks, obliviously."""

    @abc.abstractmethod
    def retrieve(self, index: int) -> bytes:
        """Return the block at ``index`` without revealing ``index`` to the server."""

    def retrieve_many(self, indices: Sequence[int]) -> List[bytes]:
        """Retrieve a batch of blocks; equivalent to repeated :meth:`retrieve`.

        Protocols that can amortize per-query work across a batch override
        this (see :meth:`repro.pir.xor_pir.TwoServerXorPir.retrieve_many`).
        """
        return [self.retrieve(index) for index in indices]

    @property
    @abc.abstractmethod
    def num_blocks(self) -> int:
        """Number of blocks in the database."""


def validate_block_database(blocks: Sequence[bytes]) -> List[bytes]:
    """Check that all blocks have equal size and return them as a list."""
    blocks = list(blocks)
    if not blocks:
        raise ValueError("a PIR database needs at least one block")
    size = len(blocks[0])
    for position, block in enumerate(blocks):
        if len(block) != size:
            raise ValueError(
                f"block {position} has {len(block)} bytes, expected {size} "
                "(PIR databases use equal-sized blocks)"
            )
    return blocks
