"""Single-server computational PIR built on Paillier encryption.

The client sends an encrypted selection vector ``Enc(e_i)`` (a 1 for the
wanted block, 0 elsewhere).  The server, for every chunk position, combines
the ciphertexts homomorphically weighted by the chunk values of each block and
returns the resulting ciphertexts; the client decrypts to obtain exactly the
chunks of block ``i``.  Under the decisional composite residuosity assumption
the server cannot distinguish the encrypted selection vectors of different
indices, so it learns nothing about which block was fetched.

This protocol is quadratic in database size and is used only for small
demonstration databases; the evaluation-scale experiments use the
hardware-aided simulator in :mod:`repro.pir.scp` instead, exactly as the paper
does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..exceptions import PirError
from .paillier import PaillierPrivateKey, PaillierPublicKey, generate_keypair
from .protocol import PirProtocol, validate_block_database


class AdditivePirServer:
    """Server side: stores plaintext blocks, answers encrypted selection vectors."""

    def __init__(
        self, blocks: Sequence[bytes], chunk_bytes: int = 32, log_queries: bool = False
    ) -> None:
        self._blocks = validate_block_database(blocks)
        if chunk_bytes <= 0:
            raise PirError("chunk size must be positive")
        self.chunk_bytes = chunk_bytes
        self.block_size = len(self._blocks[0])
        #: Adversary-view log of encrypted selection vectors; opt-in via
        #: ``log_queries`` so long benchmark runs do not grow it unboundedly.
        self.log_queries = log_queries
        self.queries_seen: List[Tuple[int, ...]] = []
        self._chunked = [self._split_chunks(block) for block in self._blocks]

    def _split_chunks(self, block: bytes) -> List[int]:
        chunks = []
        for start in range(0, len(block), self.chunk_bytes):
            chunks.append(int.from_bytes(block[start:start + self.chunk_bytes], "big"))
        return chunks

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunked[0])

    def answer(self, public_key: PaillierPublicKey, encrypted_selector: Sequence[int]) -> List[int]:
        """Homomorphic dot products of the selector with every chunk column."""
        if len(encrypted_selector) != self.num_blocks:
            raise PirError("selection vector length must equal the number of blocks")
        if self.chunk_bytes * 8 >= public_key.n.bit_length() - 1:
            raise PirError("chunk size too large for the Paillier modulus")
        if self.log_queries:
            self.queries_seen.append(tuple(encrypted_selector))
        answers = []
        for chunk_index in range(self.num_chunks):
            accumulator = public_key.encrypt(0, randomness=1)  # deterministic Enc(0) = 1·...
            for block_index, ciphertext in enumerate(encrypted_selector):
                value = self._chunked[block_index][chunk_index]
                if value == 0:
                    continue
                weighted = public_key.multiply_plain(ciphertext, value)
                accumulator = public_key.add(accumulator, weighted)
            answers.append(accumulator)
        return answers


class AdditivePirClient(PirProtocol):
    """Client side of the single-server computational PIR."""

    def __init__(
        self,
        blocks: Sequence[bytes],
        key_bits: int = 512,
        chunk_bytes: int = 32,
        keypair: Optional[Tuple[PaillierPublicKey, PaillierPrivateKey]] = None,
        log_queries: bool = False,
    ) -> None:
        self.server = AdditivePirServer(blocks, chunk_bytes=chunk_bytes, log_queries=log_queries)
        if keypair is None:
            keypair = generate_keypair(key_bits)
        self.public_key, self._private_key = keypair
        if chunk_bytes * 8 >= self.public_key.n.bit_length() - 1:
            raise PirError("chunk size too large for the chosen key size")

    @property
    def num_blocks(self) -> int:
        return self.server.num_blocks

    def retrieve(self, index: int) -> bytes:
        if index < 0 or index >= self.num_blocks:
            raise PirError(f"block index {index} out of range")
        selector = [
            self.public_key.encrypt(1 if position == index else 0)
            for position in range(self.num_blocks)
        ]
        answers = self.server.answer(self.public_key, selector)
        chunks = [self._private_key.decrypt(ciphertext) for ciphertext in answers]
        block = b"".join(
            chunk.to_bytes(self._chunk_size_for(position), "big")
            for position, chunk in enumerate(chunks)
        )
        return block[: self.server.block_size]

    def _chunk_size_for(self, chunk_position: int) -> int:
        start = chunk_position * self.server.chunk_bytes
        end = min(start + self.server.chunk_bytes, self.server.block_size)
        return end - start
