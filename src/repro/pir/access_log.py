"""Access traces and the adversary's view.

What the LBS (the adversary) can observe during query processing is exactly:

* that the header file was downloaded,
* for every PIR retrieval, *which file* was accessed and *when* (i.e. in which
  round and in which position within the round) — but never *which page*.

:class:`AccessTrace` records both the adversary-visible events and (separately)
the private information — the actual page numbers — so that tests can assert
both correctness (the right pages were fetched) and privacy (the adversary
view of any two queries is identical, Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class AdversaryEvent:
    """One event visible to the LBS."""

    round_number: int
    kind: str        # "header" or "pir"
    file_name: str   # which file was touched; "" for the header download


@dataclass(frozen=True)
class AdversaryView:
    """The complete sequence of adversary-visible events of one query."""

    events: Tuple[AdversaryEvent, ...]

    def accesses_per_file(self) -> Dict[str, int]:
        """Number of PIR page accesses per file."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "pir":
                counts[event.file_name] = counts.get(event.file_name, 0) + 1
        return counts

    def num_rounds(self) -> int:
        return max((event.round_number for event in self.events), default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdversaryView):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)


class AccessTrace:
    """Mutable recorder used by the PIR interface during one query."""

    def __init__(self) -> None:
        self._events: List[AdversaryEvent] = []
        self._private_pages: List[Tuple[int, str, int]] = []  # (round, file, page)
        self._round = 0
        self._header_bytes = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def begin_round(self) -> int:
        """Start a new processing round; returns its (1-based) number."""
        self._round += 1
        return self._round

    @property
    def current_round(self) -> int:
        return self._round

    def record_header_download(self, num_bytes: int) -> None:
        self._header_bytes += num_bytes
        self._events.append(AdversaryEvent(self._round, "header", ""))

    def record_pir_access(self, file_name: str, page_number: int) -> None:
        self._events.append(AdversaryEvent(self._round, "pir", file_name))
        self._private_pages.append((self._round, file_name, page_number))

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def header_bytes(self) -> int:
        return self._header_bytes

    def adversary_view(self) -> AdversaryView:
        """What the LBS has observed so far."""
        return AdversaryView(tuple(self._events))

    def private_page_requests(self) -> List[Tuple[int, str, int]]:
        """The actual (round, file, page) requests — *not* visible to the LBS."""
        return list(self._private_pages)

    def pir_accesses_per_file(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, file_name, _ in self._private_pages:
            counts[file_name] = counts.get(file_name, 0) + 1
        return counts

    def total_pir_accesses(self) -> int:
        return len(self._private_pages)

    def rounds_summary(self) -> List[Dict[str, int]]:
        """Per-round dictionary of file → number of PIR accesses."""
        summary: List[Dict[str, int]] = [dict() for _ in range(self._round)]
        for round_number, file_name, _ in self._private_pages:
            per_round = summary[round_number - 1]
            per_round[file_name] = per_round.get(file_name, 0) + 1
        return summary
