"""Vectorized XOR-PIR server kernels: packed bit-matrix subset answering.

The two-server XOR protocol spends essentially all of its server CPU folding
blocks together: every answered subset mask XORs about half the database.
The historical implementation folds Python big integers one block at a time,
so a batch of ``B`` masks over ``N`` blocks costs ``B * N/2`` interpreter
iterations.  This module replaces that loop with a packed kernel:

* :class:`PackedDatabase` packs the block database into one C-contiguous
  ``(num_blocks, words)`` ``numpy.uint64`` array and pre-computes *group
  tables* — for every group of ``g`` consecutive blocks, the XOR of each of
  the ``2**g`` block combinations.  A batch of masks then becomes two
  vectorized array operations: a fancy-indexed gather of one table row per
  (mask, group) followed by one ``bitwise_xor.reduce`` over the group axis.
  No Python loop runs per mask or per block, and a mask over ``N`` blocks
  touches ``N/g`` table rows instead of ``N/2`` blocks.  When the table
  budget (:attr:`PackedDatabase.MAX_TABLE_BYTES`) does not cover the
  database, the kernel degrades to a per-mask ``bitwise_xor.reduce`` over
  the mask-selected rows — still vectorized over the blocks of each answer.
* :class:`BigIntKernel` is the pre-existing big-int fold, kept verbatim as
  the reference oracle; property tests pin the packed kernel bit-identical
  to it (answers, error behaviour and adversary-view logs).

Kernel selection is a runtime decision (:func:`resolve_kernel`): an explicit
argument wins, then the ``REPRO_PIR_KERNEL`` environment variable, then
``auto`` — numpy importable selects the packed kernel, otherwise the big-int
oracle serves.  Nothing in this package hard-requires numpy.

Databases can be packed straight off the storage layer
(:func:`kernel_from_pages`): pages are read through
:meth:`~repro.storage.stores.MmapPageStore.get_page_view` when the backing
store exposes zero-copy views, so packing an out-of-core shard never
materialises intermediate ``bytes`` pages.  :func:`shared_kernel` memoises
packs per backing store (keyed weakly, so a closed store releases its pack),
which is how one packed image is shared by both replicas of a two-server
protocol and by every worker context of the query engine.

Packs also cross process boundaries without copies:
:meth:`PackedDatabase.to_shared` re-homes the bit-matrix and group tables
onto ``multiprocessing.shared_memory`` segments described by a picklable
:class:`SharedPackHandle`, and :meth:`PackedDatabase.attach` maps them back
read-only in another process.  The process-wide :class:`SharedPackRegistry`
(:func:`shared_pack_registry`) owns publish/attach/unlink lifecycles so one
machine holds exactly one resident pack per shard no matter how many worker
processes or shard servers serve it.  Shared packs are read-only by
contract: every consumer answers off the same immutable bytes (invariant
I2 — see ``INVARIANTS.md``).
"""

from __future__ import annotations

import atexit
import os
import random
import threading
import weakref
import zlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from multiprocessing import shared_memory as _shared_memory

from ..exceptions import PirError
from .batch import mask_indices, random_subset_masks, validate_subset_mask

if TYPE_CHECKING:
    from ..storage.pagefile import PageFile

try:  # numpy is optional: the big-int oracle serves when it is absent
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None  # type: ignore[assignment]

#: Environment variable naming the default kernel (CI legs force it).
ENV_PIR_KERNEL = "REPRO_PIR_KERNEL"

#: Environment variable overriding the group-table budget in bytes.  CI uses
#: a tiny value to force every pack onto the tiled-fallback answer path.
ENV_MAX_TABLE_BYTES = "REPRO_PIR_MAX_TABLE_BYTES"

#: Kernel names accepted by :func:`resolve_kernel`.
KERNEL_NAMES = ("auto", "numpy", "bigint")


def numpy_available() -> bool:
    """Whether the packed numpy kernel can be built in this interpreter."""
    return _np is not None


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective kernel name: ``"numpy"`` or ``"bigint"``.

    Selection rules: an explicit ``kernel`` argument wins, then the
    ``REPRO_PIR_KERNEL`` environment variable, then ``auto`` — which picks
    the packed kernel when numpy is importable and the big-int oracle
    otherwise.  Requesting ``"numpy"`` without numpy raises
    :class:`PirError` (``auto`` never does).
    """
    if kernel is None:
        kernel = os.environ.get(ENV_PIR_KERNEL) or "auto"
    kernel = str(kernel).strip().lower()
    if kernel not in KERNEL_NAMES:
        raise PirError(
            f"unknown PIR kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )
    if kernel == "auto":
        return "numpy" if _np is not None else "bigint"
    if kernel == "numpy" and _np is None:
        raise PirError("the numpy PIR kernel was requested but numpy is not importable")
    return kernel


#: A page/block fetcher: maps a batch of block numbers to their buffers.
BlockFetcher = Callable[[Sequence[int]], Sequence[Union[bytes, memoryview]]]


class BigIntKernel:
    """The big-int fold: one Python XOR per selected block (reference oracle)."""

    name = "bigint"

    def __init__(self, blocks: Sequence[bytes]) -> None:
        if not blocks:
            raise PirError("a PIR database needs at least one block")
        self.num_blocks = len(blocks)
        self.block_size = len(blocks[0])
        self._block_ints = [
            int.from_bytes(bytes(block), "big") for block in blocks
        ]

    @classmethod
    def from_fetcher(
        cls, num_blocks: int, block_size: int, fetch: BlockFetcher
    ) -> "BigIntKernel":
        if num_blocks <= 0:
            raise PirError("a PIR database needs at least one block")
        kernel = cls.__new__(cls)
        kernel.num_blocks = num_blocks
        kernel.block_size = block_size
        kernel._block_ints = [
            int.from_bytes(bytes(buffer), "big")
            for start in range(0, num_blocks, 1024)
            for buffer in fetch(range(start, min(num_blocks, start + 1024)))
        ]
        return kernel

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the packed block image."""
        return self.num_blocks * self.block_size

    def answer_indices(self, indices: Iterable[int]) -> bytes:
        accumulator = 0
        block_ints = self._block_ints
        for index in indices:
            accumulator ^= block_ints[index]
        return accumulator.to_bytes(self.block_size, "big")

    def answer_mask(self, mask: int) -> bytes:
        return self.answer_indices(mask_indices(mask, num_blocks=self.num_blocks))

    def answer_many(self, masks: Sequence[int]) -> List[bytes]:
        return [self.answer_mask(mask) for mask in masks]


@dataclass(frozen=True)
class SharedPackHandle:
    """A picklable description of a pack living in shared memory.

    Carries everything :meth:`PackedDatabase.attach` needs to map the pack
    back read-only in another process: the ``multiprocessing.shared_memory``
    segment names, the array geometry, and a CRC32 of the bit-matrix bytes
    so attaching to a stale or foreign segment fails loudly instead of
    serving wrong answers.
    """

    rows_name: str
    tables_name: Optional[str]
    num_blocks: int
    words: int
    block_size: int
    group_bits: Optional[int]
    max_table_bytes: int
    rows_crc: int


def _untrack_shared_memory(segment: Any) -> None:
    """Detach a segment from the resource tracker (attacher side only).

    On CPython < 3.13 merely *attaching* to a named segment registers it
    with the process's resource tracker, which unlinks the segment when the
    attaching process exits — destroying it under the owner.  Only the
    owning process may unlink; attachers must deregister.  Callers skip the
    call when this process (or the forking parent whose tracker it shares)
    owns the segment: that one registration is the crash backstop that
    reclaims ``/dev/shm`` if the owner dies without running ``atexit``.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by platform
        pass


class PackedDatabase:
    """The packed numpy kernel: group-table GF(2) mask-matrix answering.

    ``rows`` is the read-only ``(num_blocks, words)`` ``uint64`` image of the
    database (each block zero-padded to a whole number of 64-bit words).
    Group tables are built eagerly at pack time — packing is the amortized
    place to pay — with the group width adapting to the table budget.
    """

    name = "numpy"

    #: Group-table budget; beyond it the group width shrinks (8 → 4 → 2) and
    #: finally the kernel answers through the tiled GF(2) product / row
    #: gather.  Overridable per instance (``max_table_bytes=``) or via the
    #: ``REPRO_PIR_MAX_TABLE_BYTES`` environment variable.
    MAX_TABLE_BYTES = 64 * 1024 * 1024
    #: Temporary-gather budget per ``answer_rows`` chunk.
    CHUNK_BYTES = 8 * 1024 * 1024

    def __init__(
        self, rows: Any, block_size: int, max_table_bytes: Optional[int] = None
    ) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_kernel
            raise PirError("the numpy PIR kernel requires numpy")
        if rows.ndim != 2 or rows.dtype != _np.uint64 or rows.shape[0] < 1:
            raise PirError("packed databases are non-empty 2-D uint64 arrays")
        rows = _np.ascontiguousarray(rows)
        rows.setflags(write=False)
        self._rows = rows
        self.num_blocks = int(rows.shape[0])
        self.words = int(rows.shape[1])
        self.block_size = int(block_size)
        self._mask_bytes = (self.num_blocks + 7) // 8
        self._max_table_bytes = self._resolve_table_budget(max_table_bytes)
        self._fingerprint: Optional[int] = None
        self._shm_rows: Any = None
        self._shm_tables: Any = None
        self._owns_segments = False
        #: The handle this pack lives behind (``None`` for private packs).
        self.shared_handle: Optional["SharedPackHandle"] = None
        self._build_tables()
        _PACK_REGISTRY.note_build()

    @classmethod
    def _resolve_table_budget(cls, max_table_bytes: Optional[int]) -> int:
        """The effective table budget: argument → environment → class attr."""
        if max_table_bytes is not None:
            return int(max_table_bytes)
        raw = os.environ.get(ENV_MAX_TABLE_BYTES)
        if raw:
            try:
                return int(raw)
            except ValueError:
                raise PirError(
                    f"{ENV_MAX_TABLE_BYTES}={raw!r} is not a byte count"
                ) from None
        return int(cls.MAX_TABLE_BYTES)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_blocks(
        cls, blocks: Sequence[bytes], max_table_bytes: Optional[int] = None
    ) -> "PackedDatabase":
        if not blocks:
            raise PirError("a PIR database needs at least one block")
        return cls.from_fetcher(
            len(blocks),
            len(blocks[0]),
            lambda numbers: [blocks[n] for n in numbers],
            max_table_bytes=max_table_bytes,
        )

    @classmethod
    def from_fetcher(
        cls,
        num_blocks: int,
        block_size: int,
        fetch: BlockFetcher,
        max_table_bytes: Optional[int] = None,
    ) -> "PackedDatabase":
        """Pack ``num_blocks`` equal-sized blocks served by ``fetch``.

        ``fetch`` may return any buffer (``bytes`` or zero-copy
        ``memoryview``); each is copied exactly once, into its packed row.
        """
        if _np is None:
            raise PirError("the numpy PIR kernel requires numpy")
        if num_blocks <= 0:
            raise PirError("a PIR database needs at least one block")
        words = max(1, (block_size + 7) // 8)
        rows = _np.zeros((num_blocks, words), dtype=_np.uint64)
        flat = rows.view(_np.uint8).reshape(num_blocks, words * 8)
        chunk = max(1, (4 * 1024 * 1024) // max(1, block_size))
        for start in range(0, num_blocks, chunk):
            numbers = range(start, min(num_blocks, start + chunk))
            for offset, buffer in enumerate(fetch(numbers)):
                data = _np.frombuffer(buffer, dtype=_np.uint8)
                if data.shape[0] != block_size:
                    raise PirError(
                        f"block {start + offset} has {data.shape[0]} bytes, "
                        f"expected {block_size}"
                    )
                flat[start + offset, :block_size] = data
        return cls(rows, block_size, max_table_bytes=max_table_bytes)

    def _build_tables(self) -> None:
        """Pre-compute per-group XOR combination tables (adaptive width)."""
        np = _np
        n, words = self.num_blocks, self.words
        self._group_bits: Optional[int] = None
        self._tables: Any = None
        for bits in (8, 4, 2):
            groups = -(-n // bits)
            if groups * (1 << bits) * words * 8 <= self._max_table_bytes:
                self._group_bits = bits
                break
        if self._group_bits is None:
            return
        bits, groups = self._group_bits, -(-n // self._group_bits)
        padded = np.zeros((groups * bits, words), dtype=np.uint64)
        padded[:n] = self._rows
        grouped = padded.reshape(groups, bits, words)
        tables = np.zeros((groups, 1 << bits, words), dtype=np.uint64)
        for k in range(bits):
            size = 1 << k
            tables[:, size : 2 * size] = tables[:, :size] ^ grouped[:, k, None, :]
        tables.setflags(write=False)
        self._tables = tables
        self._group_range = np.arange(groups)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed image plus its group tables."""
        total = int(self._rows.nbytes)
        if self._tables is not None:
            total += int(self._tables.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # answering
    # ------------------------------------------------------------------ #
    def _mask_matrix(self, masks: Sequence[int]) -> Any:
        """The masks as a ``(B, mask_bytes)`` little-endian uint8 matrix."""
        np = _np
        size = self._mask_bytes
        buffer = b"".join(
            validate_subset_mask(mask, self.num_blocks).to_bytes(size, "little")
            for mask in masks
        )
        return np.frombuffer(buffer, dtype=np.uint8).reshape(len(masks), size)

    def _digits(self, mask_matrix: Any) -> Any:
        """Per-(mask, group) table indices from the packed mask bytes."""
        np = _np
        bits = self._group_bits
        groups = self._tables.shape[0]
        if bits == 8:
            return mask_matrix[:, :groups]
        per_byte = 8 // bits
        low_mask = (1 << bits) - 1
        parts = [(mask_matrix >> (k * bits)) & low_mask for k in range(per_byte)]
        return np.stack(parts, axis=2).reshape(mask_matrix.shape[0], -1)[:, :groups]

    #: Batch size above which the per-group accumulate loop beats the
    #: materialized table gather (the loop's per-group numpy overhead is
    #: amortized over the batch, and it never builds the (B, G, W) temp).
    GROUP_LOOP_MIN_BATCH = 64

    #: Beyond the table budget: batch size at which the tiled GF(2) product
    #: overtakes the per-mask row gather (the gather touches ~N/2 rows per
    #: mask; the tiled product pays one table build per tile for the whole
    #: batch, which needs a batch to amortize over).
    TILED_MIN_BATCH = 32
    #: Group width of the tiled product's throwaway tables — 16-entry
    #: tables keep the per-tile build cheap while quartering the row reads.
    TILE_GROUP_BITS = 4
    #: Per-tile byte budget of the tiled product's throwaway tables; bounds
    #: peak extra memory no matter how far past the budget the pack is.
    TILE_TABLE_BYTES = 4 * 1024 * 1024

    def answer_rows(self, masks: Sequence[int]) -> Any:
        """Answers for a batch of masks as a ``(B, words)`` uint64 array.

        This is the whole server hot path, with no per-mask Python work:
        small batches run one fancy-index table gather plus one
        ``bitwise_xor.reduce``; large batches instead accumulate group by
        group (``acc ^= tables[g, digits[:, g]]``), which skips the
        ``(B, groups, words)`` temporary entirely and is ~2x faster once the
        per-group numpy call overhead is amortized over the batch.  Packs
        beyond the table budget answer small batches with per-mask row
        gathers and serving-sized batches with the tiled GF(2) product.
        """
        np = _np
        batch = len(masks)
        out = np.zeros((batch, self.words), dtype=np.uint64)
        if batch == 0:
            return out
        mask_matrix = self._mask_matrix(masks)
        if self._tables is not None:
            groups = self._tables.shape[0]
            digits = self._digits(mask_matrix)
            if batch >= self.GROUP_LOOP_MIN_BATCH:
                tables = self._tables
                for group in range(groups):
                    out ^= tables[group, digits[:, group]]
                return out
            chunk = max(1, self.CHUNK_BYTES // (groups * self.words * 8))
            for start in range(0, batch, chunk):
                gathered = self._tables[
                    self._group_range, digits[start : start + chunk]
                ]
                np.bitwise_xor.reduce(
                    gathered, axis=1, out=out[start : start + chunk]
                )
            return out
        # beyond the table budget the strategy is again batch-adaptive: a
        # row gather touches only ~N/2 rows per mask, so it wins for small
        # batches; serving-sized batches run the tiled GF(2) product, whose
        # per-tile table builds amortize over the whole batch
        if batch < self.TILED_MIN_BATCH:
            return self._answer_rows_gather(mask_matrix, out)
        return self._answer_rows_tiled(mask_matrix, out)

    def _answer_rows_gather(self, mask_matrix: Any, out: Any) -> Any:
        """Gather each mask's selected rows and reduce them (small batches)."""
        np = _np
        selection = np.unpackbits(mask_matrix, axis=1, bitorder="little").astype(bool)
        for position in range(mask_matrix.shape[0]):
            selected = self._rows[selection[position, : self.num_blocks]]
            if selected.shape[0]:
                np.bitwise_xor.reduce(selected, axis=0, out=out[position])
        return out

    def _answer_rows_tiled(self, mask_matrix: Any, out: Any) -> Any:
        """The tiled GF(2) mask-matrix × database product (large batches).

        Streams the database in cache-blocked tiles of block groups: each
        tile builds its :attr:`TILE_GROUP_BITS`-wide XOR combination tables
        on the fly (the same doubling construction as the resident tables),
        answers the whole batch through them with packed ``bitwise_xor``
        accumulation, and discards them.  Big shards get the same batch
        economics as table-covered ones while peak extra memory stays
        bounded by :attr:`TILE_TABLE_BYTES`.
        """
        np = _np
        bits = self.TILE_GROUP_BITS
        batch, words = mask_matrix.shape[0], self.words
        groups = -(-self.num_blocks // bits)
        per_byte = 8 // bits
        low_mask = (1 << bits) - 1
        parts = [(mask_matrix >> (k * bits)) & low_mask for k in range(per_byte)]
        # (groups, batch), contiguous per group: the accumulate loop below
        # indexes one group's digit column at a time
        digits = np.ascontiguousarray(
            np.stack(parts, axis=2).reshape(batch, -1)[:, :groups].T
        )
        tile = max(1, self.TILE_TABLE_BYTES // ((1 << bits) * words * 8))
        for start in range(0, groups, tile):
            stop = min(groups, start + tile)
            count = stop - start
            first, last = start * bits, min(self.num_blocks, stop * bits)
            padded = np.zeros((count * bits, words), dtype=np.uint64)
            padded[: last - first] = self._rows[first:last]
            grouped = padded.reshape(count, bits, words)
            tables = np.zeros((count, 1 << bits, words), dtype=np.uint64)
            for k in range(bits):
                size = 1 << k
                tables[:, size : 2 * size] = tables[:, :size] ^ grouped[:, k, None, :]
            for group in range(count):
                out ^= tables[group, digits[start + group]]
        return out

    def rows_to_blocks(self, rows: Any) -> List[bytes]:
        """Slice a ``(B, words)`` answer array into per-answer block bytes.

        One flat :class:`memoryview` over the array feeds every slice — no
        per-answer serialise/parse round trip.
        """
        if rows.shape[0] == 0:
            return []  # a zero-row view cannot be cast (and has no slices)
        view = memoryview(_np.ascontiguousarray(rows)).cast("B")
        stride, size = self.words * 8, self.block_size
        return [
            bytes(view[position * stride : position * stride + size])
            for position in range(rows.shape[0])
        ]

    def answer_indices(self, indices: Iterable[int]) -> bytes:
        np = _np
        index_array = np.fromiter(indices, dtype=np.intp)
        out = np.zeros(self.words, dtype=np.uint64)
        if index_array.shape[0]:
            np.bitwise_xor.reduce(self._rows[index_array], axis=0, out=out)
        return bytes(out.tobytes()[: self.block_size])

    def answer_mask(self, mask: int) -> bytes:
        return self.rows_to_blocks(self.answer_rows([mask]))[0]

    def answer_many(self, masks: Sequence[int]) -> List[bytes]:
        return self.rows_to_blocks(self.answer_rows(masks))

    # ------------------------------------------------------------------ #
    # shared memory
    # ------------------------------------------------------------------ #
    def to_shared(self) -> SharedPackHandle:
        """Re-home the pack onto ``multiprocessing.shared_memory`` segments.

        Idempotent: a pack that is already shared (owned *or* attached)
        returns its existing handle.  The bit-matrix and group tables are
        copied once into freshly created segments and this object's arrays
        become read-only views over them, so the calling process keeps
        answering off the same bytes every attacher maps.  The caller owns
        the segments: :meth:`close_shared` (or the registry that published
        the pack) must eventually unlink them.
        """
        if self.shared_handle is not None:
            return self.shared_handle
        np = _np
        rows = self._rows
        shm_rows = _shared_memory.SharedMemory(create=True, size=max(1, rows.nbytes))
        shared_rows = np.ndarray(rows.shape, dtype=np.uint64, buffer=shm_rows.buf)
        shared_rows[:] = rows
        shared_rows.setflags(write=False)
        rows_crc = zlib.crc32(memoryview(shm_rows.buf)[: rows.nbytes])
        self._shm_rows = shm_rows
        self._rows = shared_rows
        tables_name: Optional[str] = None
        if self._tables is not None:
            tables = self._tables
            shm_tables = _shared_memory.SharedMemory(
                create=True, size=max(1, tables.nbytes)
            )
            shared_tables = np.ndarray(
                tables.shape, dtype=np.uint64, buffer=shm_tables.buf
            )
            shared_tables[:] = tables
            shared_tables.setflags(write=False)
            self._shm_tables = shm_tables
            self._tables = shared_tables
            tables_name = shm_tables.name
        self._owns_segments = True
        _PACK_REGISTRY.note_owned(shm_rows.name)
        if tables_name is not None:
            _PACK_REGISTRY.note_owned(tables_name)
        self.shared_handle = SharedPackHandle(
            rows_name=shm_rows.name,
            tables_name=tables_name,
            num_blocks=self.num_blocks,
            words=self.words,
            block_size=self.block_size,
            group_bits=self._group_bits,
            max_table_bytes=self._max_table_bytes,
            rows_crc=rows_crc,
        )
        return self.shared_handle

    @classmethod
    def attach(cls, handle: SharedPackHandle) -> "PackedDatabase":
        """Map a shared pack read-only in this process — no rebuild, no copy.

        Validates the segment geometry and the bit-matrix CRC before serving
        off it, so a stale handle (owner already unlinked and the name was
        recycled) raises :class:`PirError` instead of answering garbage.
        Attached packs never own their segments: the resource tracker is
        told to forget them (attacher exit must not destroy the owner's
        segments) and :meth:`close_shared` only unmaps.
        """
        if _np is None:
            raise PirError("attaching a shared pack requires numpy")
        np = _np
        try:
            shm_rows = _shared_memory.SharedMemory(name=handle.rows_name)
        except FileNotFoundError:
            raise PirError(
                f"shared pack segment {handle.rows_name!r} does not exist "
                "(owner gone or already unlinked)"
            ) from None
        if not _PACK_REGISTRY.owns_segment(handle.rows_name):
            _untrack_shared_memory(shm_rows)
        nbytes = handle.num_blocks * handle.words * 8
        if shm_rows.size < nbytes or zlib.crc32(
            memoryview(shm_rows.buf)[:nbytes]
        ) != handle.rows_crc:
            try:
                shm_rows.close()
            except BufferError:  # pragma: no cover - no views exported yet
                pass
            raise PirError(
                f"shared pack segment {handle.rows_name!r} does not match its "
                "handle (size or checksum mismatch)"
            )
        pack = cls.__new__(cls)
        rows = np.ndarray(
            (handle.num_blocks, handle.words), dtype=np.uint64, buffer=shm_rows.buf
        )
        rows.setflags(write=False)
        pack._rows = rows
        pack.num_blocks = handle.num_blocks
        pack.words = handle.words
        pack.block_size = handle.block_size
        pack._mask_bytes = (handle.num_blocks + 7) // 8
        pack._max_table_bytes = handle.max_table_bytes
        pack._fingerprint = None
        pack._shm_rows = shm_rows
        pack._shm_tables = None
        pack._owns_segments = False
        pack.shared_handle = handle
        pack._group_bits = handle.group_bits
        pack._tables = None
        if handle.tables_name is not None and handle.group_bits is not None:
            bits = handle.group_bits
            groups = -(-handle.num_blocks // bits)
            shm_tables = _shared_memory.SharedMemory(name=handle.tables_name)
            if not _PACK_REGISTRY.owns_segment(handle.tables_name):
                _untrack_shared_memory(shm_tables)
            tables = np.ndarray(
                (groups, 1 << bits, handle.words),
                dtype=np.uint64,
                buffer=shm_tables.buf,
            )
            tables.setflags(write=False)
            pack._shm_tables = shm_tables
            pack._tables = tables
            pack._group_range = np.arange(groups)
        return pack

    def close_shared(self, unlink: Optional[bool] = None) -> None:
        """Release the pack's shared-memory segments.

        ``unlink`` defaults to this pack's ownership: owners destroy the
        segments (``/dev/shm`` entries disappear), attachers only unmap.
        The pack object itself stays usable: its arrays are copied back
        into private memory first, because the :func:`shared_kernel` memo
        may still hand this object to later simulators (an engine's
        ``close()`` unpublishes packs the backing store keeps memoised —
        answering off the dead mapping would be use-after-free).  An
        unlinking owner copies everything back; a mere attacher keeps only
        the bit-matrix and drops its table mapping (the tables are ~30x
        the rows, and a worker's throwaway attached pack must stay a
        cheap O(rows) unmap — answers stay bit-identical through the
        table-free fallback paths if the object is ever used again).
        Unmapping is best-effort — live numpy views keep the mapping alive
        until they are collected (``BufferError`` is swallowed) — but an
        owner's unlink always happens, which is the part that leaks.
        """
        if unlink is None:
            unlink = self._owns_segments
        self.shared_handle = None
        self._owns_segments = False
        if self._shm_rows is not None or self._shm_tables is not None:
            rows = _np.array(self._rows)
            rows.setflags(write=False)
            self._rows = rows
            if self._tables is not None:
                if unlink:
                    tables = _np.array(self._tables)
                    tables.setflags(write=False)
                    self._tables = tables
                else:
                    self._tables = None
                    self._group_bits = None
        for attribute in ("_shm_rows", "_shm_tables"):
            segment = getattr(self, attribute)
            if segment is None:
                continue
            setattr(self, attribute, None)
            if unlink:
                _PACK_REGISTRY.forget_owned(segment.name)
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            try:
                segment.close()
            except BufferError:
                pass  # arrays still reference the mapping; it dies with them


#: Either kernel implementation (they share the answering surface).
ServerKernel = Union[BigIntKernel, PackedDatabase]


def is_kernel(obj: object) -> bool:
    """Whether ``obj`` is a prebuilt server kernel (vs. a block sequence)."""
    return isinstance(obj, (BigIntKernel, PackedDatabase))


def make_kernel(blocks: Sequence[bytes], kernel: Optional[str] = None) -> ServerKernel:
    """Build the selected kernel over an in-memory block database."""
    if resolve_kernel(kernel) == "numpy":
        return PackedDatabase.from_blocks(blocks)
    return BigIntKernel(blocks)


# ---------------------------------------------------------------------- #
# packing off the storage layer
# ---------------------------------------------------------------------- #
def _page_fetcher(
    page_file: "PageFile", page_numbers: Optional[Sequence[int]]
) -> BlockFetcher:
    """A fetcher over a :class:`~repro.storage.pagefile.PageFile`.

    Prefers the backing store's zero-copy ``get_page_view`` (the mmap
    backend) when every requested page is sealed on the store; otherwise
    pages come back through the batched page-file read, which also covers a
    live tail page.
    """
    store = page_file.store

    def translate(numbers: Sequence[int]) -> Sequence[int]:
        if page_numbers is None:
            return numbers
        return [page_numbers[n] for n in numbers]

    get_view = getattr(store, "get_page_view", None)
    if get_view is not None and page_file._tail is None:
        store.flush()

        def fetch_views(numbers: Sequence[int]) -> Sequence[Union[bytes, memoryview]]:
            return [get_view(number) for number in translate(numbers)]

        return fetch_views

    def fetch_batch(numbers: Sequence[int]) -> Sequence[Union[bytes, memoryview]]:
        return page_file.read_pages_batch(translate(numbers))

    return fetch_batch


def kernel_from_pages(
    page_file: "PageFile",
    page_numbers: Optional[Sequence[int]] = None,
    kernel: Optional[str] = None,
) -> ServerKernel:
    """Pack a page file (or a subset of its pages, e.g. one shard) into a kernel."""
    count = page_file.num_pages if page_numbers is None else len(page_numbers)
    if count <= 0:
        raise PirError(f"page file {page_file.name!r} has no pages to pack")
    fetch = _page_fetcher(page_file, page_numbers)
    cls = PackedDatabase if resolve_kernel(kernel) == "numpy" else BigIntKernel
    return cls.from_fetcher(count, page_file.page_size, fetch)


#: store -> {(kernel, file name, num pages, extra key) -> kernel object}.
#: Weakly keyed so closing/dropping a store releases its packed image.
_SHARED_KERNELS: "weakref.WeakKeyDictionary[object, Dict[Tuple[object, ...], ServerKernel]]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_KERNELS_LOCK = threading.Lock()


def shared_kernel_key(
    page_file: "PageFile",
    page_numbers: Optional[Sequence[int]] = None,
    kernel: Optional[str] = None,
    cache_key: Tuple[object, ...] = (),
) -> Tuple[object, ...]:
    """The memo key :func:`shared_kernel` files a pack under.

    Publishers (:meth:`SharedPackRegistry.publish`) use the same key so a
    worker's :func:`shared_kernel` call resolves to the adopted shared pack
    instead of rebuilding.
    """
    resolved = resolve_kernel(kernel)
    count = page_file.num_pages if page_numbers is None else len(page_numbers)
    return (resolved, page_file.name, count) + tuple(cache_key)


def shared_kernel(
    page_file: "PageFile",
    page_numbers: Optional[Sequence[int]] = None,
    kernel: Optional[str] = None,
    cache_key: Tuple[object, ...] = (),
) -> ServerKernel:
    """The memoised packed kernel for a page file (or page subset).

    One packed image per ``(backing store, kernel, file, page count, cache
    key)`` is shared by every consumer — the two replicas of a protocol and
    all worker contexts of an engine.  The page count participates in the
    key, so a file that grew since the last pack is repacked; serving
    databases are sealed, which is what makes the memo safe.

    When this process has *adopted* a shared pack under the same key (a
    process worker whose initializer received the owner's handles), the
    attached zero-copy pack is served instead of rebuilding — that is the
    one-pack-per-machine path.  Only explicitly adopted entries are
    consulted: owner processes keep building privately, so unrelated
    databases that happen to share a file name and page count can never
    collide through the registry.
    """
    resolved = resolve_kernel(kernel)
    key = shared_kernel_key(page_file, page_numbers, kernel=resolved, cache_key=cache_key)
    store = page_file.store
    with _SHARED_KERNELS_LOCK:
        per_store = _SHARED_KERNELS.get(store)
        if per_store is None:
            per_store = {}
            _SHARED_KERNELS[store] = per_store
        cached = per_store.get(key)
    if cached is not None:
        return cached
    if resolved == "numpy":
        adopted = _PACK_REGISTRY.adopted(key)
        if adopted is not None:
            with _SHARED_KERNELS_LOCK:
                return per_store.setdefault(key, adopted)
    built = kernel_from_pages(page_file, page_numbers, kernel=resolved)
    with _SHARED_KERNELS_LOCK:
        return per_store.setdefault(key, built)


# ---------------------------------------------------------------------- #
# the process-wide shared-pack registry
# ---------------------------------------------------------------------- #
class SharedPackRegistry:
    """Publish/attach/unlink lifecycle for shared packs, one per process.

    Owners (a :class:`~repro.engine.query_engine.QueryEngine` warming a
    process pool, a ``ShardCluster`` booting servers) ``publish`` packs
    under their :func:`shared_kernel_key`; the picklable handles travel to
    worker initializers, which ``adopt`` them so the workers'
    :func:`shared_kernel` calls attach instead of rebuilding.  Attaches are
    memoised per segment, publishes record the owning pid — a forked child
    inherits this module's state, and the pid guard keeps the child's exit
    sweep from unlinking segments its parent still serves from.  All
    methods are thread-safe; :meth:`close` runs from ``atexit`` as the
    leak backstop.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._published: Dict[Tuple[object, ...], Tuple[PackedDatabase, int]] = {}
        self._adopted: Dict[Tuple[object, ...], SharedPackHandle] = {}
        self._attached: Dict[str, PackedDatabase] = {}
        self._owned_names: Dict[str, bool] = {}
        self._builds = 0

    # -- segment ownership (resource-tracker coordination) --------------- #
    def note_owned(self, name: str) -> None:
        """Record that this process created segment ``name``."""
        with self._lock:
            self._owned_names[name] = True

    def forget_owned(self, name: str) -> None:
        """Drop the ownership record (the segment was unlinked)."""
        with self._lock:
            self._owned_names.pop(name, None)

    def owns_segment(self, name: str) -> bool:
        """Whether this process (or its forking parent) created ``name``.

        Attaches to owned segments keep the resource-tracker registration
        alive — it is the unlink-on-crash backstop for the owner.
        """
        with self._lock:
            return name in self._owned_names

    # -- instrumentation ------------------------------------------------ #
    def note_build(self) -> None:
        """Count one pack construction (called by ``PackedDatabase.__init__``)."""
        with self._lock:
            self._builds += 1

    @property
    def pack_builds(self) -> int:
        """Packs *built* in this process (attaches deliberately not counted)."""
        with self._lock:
            return self._builds

    # -- owner side ------------------------------------------------------ #
    def publish(
        self, key: Tuple[object, ...], pack: PackedDatabase
    ) -> SharedPackHandle:
        """Share ``pack`` under ``key`` and return its picklable handle.

        The registry takes over unlink responsibility for the segments: they
        are destroyed on :meth:`unpublish`/:meth:`close` (or the atexit
        sweep), in the publishing process only.
        """
        handle = pack.to_shared()
        with self._lock:
            self._published[tuple(key)] = (pack, os.getpid())
        return handle

    def handles(self) -> Dict[Tuple[object, ...], SharedPackHandle]:
        """Every published pack's handle, keyed as published (picklable)."""
        result: Dict[Tuple[object, ...], SharedPackHandle] = {}
        with self._lock:
            for key, (pack, _) in self._published.items():
                handle = pack.shared_handle
                if handle is not None:
                    result[key] = handle
        return result

    def unpublish(self, keys: Iterable[Tuple[object, ...]]) -> None:
        """Withdraw and unlink the named packs (owner-pid guarded)."""
        dropped: List[Tuple[PackedDatabase, int]] = []
        with self._lock:
            for key in keys:
                entry = self._published.pop(tuple(key), None)
                if entry is not None:
                    dropped.append(entry)
        pid = os.getpid()
        for pack, owner_pid in dropped:
            pack.close_shared(unlink=owner_pid == pid)

    # -- worker side ----------------------------------------------------- #
    def adopt(self, handles: Mapping[Tuple[object, ...], SharedPackHandle]) -> None:
        """Attach published packs so :func:`shared_kernel` serves them.

        Worker initializers call this with the owner's :meth:`handles`; each
        distinct segment is mapped exactly once per process no matter how
        many keys (or later ``adopt`` calls) reference it.
        """
        for key, handle in handles.items():
            self.attach(handle)
            with self._lock:
                self._adopted[tuple(key)] = handle

    def adopted(self, key: Tuple[object, ...]) -> Optional[PackedDatabase]:
        """The attached pack adopted under ``key``, if any."""
        with self._lock:
            handle = self._adopted.get(tuple(key))
        if handle is None:
            return None
        return self.attach(handle)

    def attach(self, handle: SharedPackHandle) -> PackedDatabase:
        """Attach to a shared pack, memoised per segment name.

        When this process *published* the pack, the published object itself
        is returned — the owner never maps its own segments twice.
        """
        with self._lock:
            pack = self._attached.get(handle.rows_name)
            if pack is None:
                for published, _ in self._published.values():
                    published_handle = published.shared_handle
                    if (
                        published_handle is not None
                        and published_handle.rows_name == handle.rows_name
                    ):
                        pack = published
                        break
        if pack is not None:
            return pack
        attached = PackedDatabase.attach(handle)
        with self._lock:
            return self._attached.setdefault(handle.rows_name, attached)

    # -- teardown --------------------------------------------------------- #
    def close(self) -> None:
        """Unlink everything this process published, unmap everything attached.

        Idempotent; registered with ``atexit`` so no ``/dev/shm`` segment
        outlives a cleanly exiting owner even when ``close()`` was skipped.
        """
        with self._lock:
            published = list(self._published.values())
            self._published.clear()
            attached = list(self._attached.values())
            self._attached.clear()
            self._adopted.clear()
        pid = os.getpid()
        for pack, owner_pid in published:
            pack.close_shared(unlink=owner_pid == pid)
        for pack in attached:
            pack.close_shared(unlink=False)


_PACK_REGISTRY = SharedPackRegistry()
atexit.register(_PACK_REGISTRY.close)


def shared_pack_registry() -> SharedPackRegistry:
    """This process's shared-pack registry (one per interpreter)."""
    return _PACK_REGISTRY


# ---------------------------------------------------------------------- #
# oblivious serving through a kernel
# ---------------------------------------------------------------------- #
def oblivious_read_many(
    kernel: ServerKernel,
    rng: random.Random,
    indices: Sequence[int],
    log: Optional[Callable[[FrozenSet[int]], None]] = None,
) -> List[bytes]:
    """Serve block reads through a two-server XOR retrieval over ``kernel``.

    Both logical servers answer off the one shared packed image (the
    non-collusion split is a deployment property, not a data-layout one).
    ``log`` receives each server-visible subset — the adversary view the
    privacy tests compare across kernels; identical RNG state yields
    identical logs for either kernel, which the property tests pin.
    """
    if not indices:
        return []
    masks_a = random_subset_masks(rng, kernel.num_blocks, len(indices))
    masks_b = [mask ^ (1 << index) for mask, index in zip(masks_a, indices)]
    if log is not None:
        for mask_a, mask_b in zip(masks_a, masks_b):
            log(frozenset(mask_indices(mask_a)))
            log(frozenset(mask_indices(mask_b)))
    if isinstance(kernel, PackedDatabase):
        rows = kernel.answer_rows(masks_a)
        rows = rows ^ kernel.answer_rows(masks_b)
        return kernel.rows_to_blocks(rows)
    return [
        (
            int.from_bytes(kernel.answer_mask(mask_a), "big")
            ^ int.from_bytes(kernel.answer_mask(mask_b), "big")
        ).to_bytes(kernel.block_size, "big")
        for mask_a, mask_b in zip(masks_a, masks_b)
    ]
