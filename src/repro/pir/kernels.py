"""Vectorized XOR-PIR server kernels: packed bit-matrix subset answering.

The two-server XOR protocol spends essentially all of its server CPU folding
blocks together: every answered subset mask XORs about half the database.
The historical implementation folds Python big integers one block at a time,
so a batch of ``B`` masks over ``N`` blocks costs ``B * N/2`` interpreter
iterations.  This module replaces that loop with a packed kernel:

* :class:`PackedDatabase` packs the block database into one C-contiguous
  ``(num_blocks, words)`` ``numpy.uint64`` array and pre-computes *group
  tables* — for every group of ``g`` consecutive blocks, the XOR of each of
  the ``2**g`` block combinations.  A batch of masks then becomes two
  vectorized array operations: a fancy-indexed gather of one table row per
  (mask, group) followed by one ``bitwise_xor.reduce`` over the group axis.
  No Python loop runs per mask or per block, and a mask over ``N`` blocks
  touches ``N/g`` table rows instead of ``N/2`` blocks.  When the table
  budget (:attr:`PackedDatabase.MAX_TABLE_BYTES`) does not cover the
  database, the kernel degrades to a per-mask ``bitwise_xor.reduce`` over
  the mask-selected rows — still vectorized over the blocks of each answer.
* :class:`BigIntKernel` is the pre-existing big-int fold, kept verbatim as
  the reference oracle; property tests pin the packed kernel bit-identical
  to it (answers, error behaviour and adversary-view logs).

Kernel selection is a runtime decision (:func:`resolve_kernel`): an explicit
argument wins, then the ``REPRO_PIR_KERNEL`` environment variable, then
``auto`` — numpy importable selects the packed kernel, otherwise the big-int
oracle serves.  Nothing in this package hard-requires numpy.

Databases can be packed straight off the storage layer
(:func:`kernel_from_pages`): pages are read through
:meth:`~repro.storage.stores.MmapPageStore.get_page_view` when the backing
store exposes zero-copy views, so packing an out-of-core shard never
materialises intermediate ``bytes`` pages.  :func:`shared_kernel` memoises
packs per backing store (keyed weakly, so a closed store releases its pack),
which is how one packed image is shared by both replicas of a two-server
protocol and by every worker context of the query engine.
"""

from __future__ import annotations

import os
import random
import threading
import weakref
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import PirError
from .batch import mask_indices, random_subset_masks, validate_subset_mask

if TYPE_CHECKING:
    from ..storage.pagefile import PageFile

try:  # numpy is optional: the big-int oracle serves when it is absent
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None  # type: ignore[assignment]

#: Environment variable naming the default kernel (CI legs force it).
ENV_PIR_KERNEL = "REPRO_PIR_KERNEL"

#: Kernel names accepted by :func:`resolve_kernel`.
KERNEL_NAMES = ("auto", "numpy", "bigint")


def numpy_available() -> bool:
    """Whether the packed numpy kernel can be built in this interpreter."""
    return _np is not None


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """The effective kernel name: ``"numpy"`` or ``"bigint"``.

    Selection rules: an explicit ``kernel`` argument wins, then the
    ``REPRO_PIR_KERNEL`` environment variable, then ``auto`` — which picks
    the packed kernel when numpy is importable and the big-int oracle
    otherwise.  Requesting ``"numpy"`` without numpy raises
    :class:`PirError` (``auto`` never does).
    """
    if kernel is None:
        kernel = os.environ.get(ENV_PIR_KERNEL) or "auto"
    kernel = str(kernel).strip().lower()
    if kernel not in KERNEL_NAMES:
        raise PirError(
            f"unknown PIR kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )
    if kernel == "auto":
        return "numpy" if _np is not None else "bigint"
    if kernel == "numpy" and _np is None:
        raise PirError("the numpy PIR kernel was requested but numpy is not importable")
    return kernel


#: A page/block fetcher: maps a batch of block numbers to their buffers.
BlockFetcher = Callable[[Sequence[int]], Sequence[Union[bytes, memoryview]]]


class BigIntKernel:
    """The big-int fold: one Python XOR per selected block (reference oracle)."""

    name = "bigint"

    def __init__(self, blocks: Sequence[bytes]) -> None:
        if not blocks:
            raise PirError("a PIR database needs at least one block")
        self.num_blocks = len(blocks)
        self.block_size = len(blocks[0])
        self._block_ints = [
            int.from_bytes(bytes(block), "big") for block in blocks
        ]

    @classmethod
    def from_fetcher(
        cls, num_blocks: int, block_size: int, fetch: BlockFetcher
    ) -> "BigIntKernel":
        if num_blocks <= 0:
            raise PirError("a PIR database needs at least one block")
        kernel = cls.__new__(cls)
        kernel.num_blocks = num_blocks
        kernel.block_size = block_size
        kernel._block_ints = [
            int.from_bytes(bytes(buffer), "big")
            for start in range(0, num_blocks, 1024)
            for buffer in fetch(range(start, min(num_blocks, start + 1024)))
        ]
        return kernel

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the packed block image."""
        return self.num_blocks * self.block_size

    def answer_indices(self, indices: Iterable[int]) -> bytes:
        accumulator = 0
        block_ints = self._block_ints
        for index in indices:
            accumulator ^= block_ints[index]
        return accumulator.to_bytes(self.block_size, "big")

    def answer_mask(self, mask: int) -> bytes:
        return self.answer_indices(mask_indices(mask, num_blocks=self.num_blocks))

    def answer_many(self, masks: Sequence[int]) -> List[bytes]:
        return [self.answer_mask(mask) for mask in masks]


class PackedDatabase:
    """The packed numpy kernel: group-table GF(2) mask-matrix answering.

    ``rows`` is the read-only ``(num_blocks, words)`` ``uint64`` image of the
    database (each block zero-padded to a whole number of 64-bit words).
    Group tables are built eagerly at pack time — packing is the amortized
    place to pay — with the group width adapting to the table budget.
    """

    name = "numpy"

    #: Group-table budget; beyond it the group width shrinks (8 → 4 → 2) and
    #: finally the kernel falls back to per-mask row gathers.
    MAX_TABLE_BYTES = 64 * 1024 * 1024
    #: Temporary-gather budget per ``answer_rows`` chunk.
    CHUNK_BYTES = 8 * 1024 * 1024

    def __init__(self, rows: Any, block_size: int) -> None:
        if _np is None:  # pragma: no cover - guarded by resolve_kernel
            raise PirError("the numpy PIR kernel requires numpy")
        if rows.ndim != 2 or rows.dtype != _np.uint64 or rows.shape[0] < 1:
            raise PirError("packed databases are non-empty 2-D uint64 arrays")
        rows = _np.ascontiguousarray(rows)
        rows.setflags(write=False)
        self._rows = rows
        self.num_blocks = int(rows.shape[0])
        self.words = int(rows.shape[1])
        self.block_size = int(block_size)
        self._mask_bytes = (self.num_blocks + 7) // 8
        self._build_tables()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_blocks(cls, blocks: Sequence[bytes]) -> "PackedDatabase":
        if not blocks:
            raise PirError("a PIR database needs at least one block")
        return cls.from_fetcher(
            len(blocks), len(blocks[0]), lambda numbers: [blocks[n] for n in numbers]
        )

    @classmethod
    def from_fetcher(
        cls, num_blocks: int, block_size: int, fetch: BlockFetcher
    ) -> "PackedDatabase":
        """Pack ``num_blocks`` equal-sized blocks served by ``fetch``.

        ``fetch`` may return any buffer (``bytes`` or zero-copy
        ``memoryview``); each is copied exactly once, into its packed row.
        """
        if _np is None:
            raise PirError("the numpy PIR kernel requires numpy")
        if num_blocks <= 0:
            raise PirError("a PIR database needs at least one block")
        words = max(1, (block_size + 7) // 8)
        rows = _np.zeros((num_blocks, words), dtype=_np.uint64)
        flat = rows.view(_np.uint8).reshape(num_blocks, words * 8)
        chunk = max(1, (4 * 1024 * 1024) // max(1, block_size))
        for start in range(0, num_blocks, chunk):
            numbers = range(start, min(num_blocks, start + chunk))
            for offset, buffer in enumerate(fetch(numbers)):
                data = _np.frombuffer(buffer, dtype=_np.uint8)
                if data.shape[0] != block_size:
                    raise PirError(
                        f"block {start + offset} has {data.shape[0]} bytes, "
                        f"expected {block_size}"
                    )
                flat[start + offset, :block_size] = data
        return cls(rows, block_size)

    def _build_tables(self) -> None:
        """Pre-compute per-group XOR combination tables (adaptive width)."""
        np = _np
        n, words = self.num_blocks, self.words
        self._group_bits: Optional[int] = None
        self._tables: Any = None
        for bits in (8, 4, 2):
            groups = -(-n // bits)
            if groups * (1 << bits) * words * 8 <= self.MAX_TABLE_BYTES:
                self._group_bits = bits
                break
        if self._group_bits is None:
            return
        bits, groups = self._group_bits, -(-n // self._group_bits)
        padded = np.zeros((groups * bits, words), dtype=np.uint64)
        padded[:n] = self._rows
        grouped = padded.reshape(groups, bits, words)
        tables = np.zeros((groups, 1 << bits, words), dtype=np.uint64)
        for k in range(bits):
            size = 1 << k
            tables[:, size : 2 * size] = tables[:, :size] ^ grouped[:, k, None, :]
        tables.setflags(write=False)
        self._tables = tables
        self._group_range = np.arange(groups)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed image plus its group tables."""
        total = int(self._rows.nbytes)
        if self._tables is not None:
            total += int(self._tables.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # answering
    # ------------------------------------------------------------------ #
    def _mask_matrix(self, masks: Sequence[int]) -> Any:
        """The masks as a ``(B, mask_bytes)`` little-endian uint8 matrix."""
        np = _np
        size = self._mask_bytes
        buffer = b"".join(
            validate_subset_mask(mask, self.num_blocks).to_bytes(size, "little")
            for mask in masks
        )
        return np.frombuffer(buffer, dtype=np.uint8).reshape(len(masks), size)

    def _digits(self, mask_matrix: Any) -> Any:
        """Per-(mask, group) table indices from the packed mask bytes."""
        np = _np
        bits = self._group_bits
        groups = self._tables.shape[0]
        if bits == 8:
            return mask_matrix[:, :groups]
        per_byte = 8 // bits
        low_mask = (1 << bits) - 1
        parts = [(mask_matrix >> (k * bits)) & low_mask for k in range(per_byte)]
        return np.stack(parts, axis=2).reshape(mask_matrix.shape[0], -1)[:, :groups]

    #: Batch size above which the per-group accumulate loop beats the
    #: materialized table gather (the loop's per-group numpy overhead is
    #: amortized over the batch, and it never builds the (B, G, W) temp).
    GROUP_LOOP_MIN_BATCH = 64

    def answer_rows(self, masks: Sequence[int]) -> Any:
        """Answers for a batch of masks as a ``(B, words)`` uint64 array.

        This is the whole server hot path, with no per-mask Python work:
        small batches run one fancy-index table gather plus one
        ``bitwise_xor.reduce``; large batches instead accumulate group by
        group (``acc ^= tables[g, digits[:, g]]``), which skips the
        ``(B, groups, words)`` temporary entirely and is ~2x faster once the
        per-group numpy call overhead is amortized over the batch.
        """
        np = _np
        batch = len(masks)
        out = np.zeros((batch, self.words), dtype=np.uint64)
        if batch == 0:
            return out
        mask_matrix = self._mask_matrix(masks)
        if self._tables is not None:
            groups = self._tables.shape[0]
            digits = self._digits(mask_matrix)
            if batch >= self.GROUP_LOOP_MIN_BATCH:
                tables = self._tables
                for group in range(groups):
                    out ^= tables[group, digits[:, group]]
                return out
            chunk = max(1, self.CHUNK_BYTES // (groups * self.words * 8))
            for start in range(0, batch, chunk):
                gathered = self._tables[
                    self._group_range, digits[start : start + chunk]
                ]
                np.bitwise_xor.reduce(
                    gathered, axis=1, out=out[start : start + chunk]
                )
            return out
        # fallback for databases beyond the table budget: gather the selected
        # rows of each mask and reduce them (vectorized over the blocks)
        selection = np.unpackbits(mask_matrix, axis=1, bitorder="little").astype(bool)
        for position in range(batch):
            selected = self._rows[selection[position, : self.num_blocks]]
            if selected.shape[0]:
                np.bitwise_xor.reduce(selected, axis=0, out=out[position])
        return out

    def rows_to_blocks(self, rows: Any) -> List[bytes]:
        """Slice a ``(B, words)`` answer array into per-answer block bytes.

        One flat :class:`memoryview` over the array feeds every slice — no
        per-answer serialise/parse round trip.
        """
        if rows.shape[0] == 0:
            return []  # a zero-row view cannot be cast (and has no slices)
        view = memoryview(_np.ascontiguousarray(rows)).cast("B")
        stride, size = self.words * 8, self.block_size
        return [
            bytes(view[position * stride : position * stride + size])
            for position in range(rows.shape[0])
        ]

    def answer_indices(self, indices: Iterable[int]) -> bytes:
        np = _np
        index_array = np.fromiter(indices, dtype=np.intp)
        out = np.zeros(self.words, dtype=np.uint64)
        if index_array.shape[0]:
            np.bitwise_xor.reduce(self._rows[index_array], axis=0, out=out)
        return bytes(out.tobytes()[: self.block_size])

    def answer_mask(self, mask: int) -> bytes:
        return self.rows_to_blocks(self.answer_rows([mask]))[0]

    def answer_many(self, masks: Sequence[int]) -> List[bytes]:
        return self.rows_to_blocks(self.answer_rows(masks))


#: Either kernel implementation (they share the answering surface).
ServerKernel = Union[BigIntKernel, PackedDatabase]


def is_kernel(obj: object) -> bool:
    """Whether ``obj`` is a prebuilt server kernel (vs. a block sequence)."""
    return isinstance(obj, (BigIntKernel, PackedDatabase))


def make_kernel(blocks: Sequence[bytes], kernel: Optional[str] = None) -> ServerKernel:
    """Build the selected kernel over an in-memory block database."""
    if resolve_kernel(kernel) == "numpy":
        return PackedDatabase.from_blocks(blocks)
    return BigIntKernel(blocks)


# ---------------------------------------------------------------------- #
# packing off the storage layer
# ---------------------------------------------------------------------- #
def _page_fetcher(
    page_file: "PageFile", page_numbers: Optional[Sequence[int]]
) -> BlockFetcher:
    """A fetcher over a :class:`~repro.storage.pagefile.PageFile`.

    Prefers the backing store's zero-copy ``get_page_view`` (the mmap
    backend) when every requested page is sealed on the store; otherwise
    pages come back through the batched page-file read, which also covers a
    live tail page.
    """
    store = page_file.store

    def translate(numbers: Sequence[int]) -> Sequence[int]:
        if page_numbers is None:
            return numbers
        return [page_numbers[n] for n in numbers]

    get_view = getattr(store, "get_page_view", None)
    if get_view is not None and page_file._tail is None:
        store.flush()

        def fetch_views(numbers: Sequence[int]) -> Sequence[Union[bytes, memoryview]]:
            return [get_view(number) for number in translate(numbers)]

        return fetch_views

    def fetch_batch(numbers: Sequence[int]) -> Sequence[Union[bytes, memoryview]]:
        return page_file.read_pages_batch(translate(numbers))

    return fetch_batch


def kernel_from_pages(
    page_file: "PageFile",
    page_numbers: Optional[Sequence[int]] = None,
    kernel: Optional[str] = None,
) -> ServerKernel:
    """Pack a page file (or a subset of its pages, e.g. one shard) into a kernel."""
    count = page_file.num_pages if page_numbers is None else len(page_numbers)
    if count <= 0:
        raise PirError(f"page file {page_file.name!r} has no pages to pack")
    fetch = _page_fetcher(page_file, page_numbers)
    cls = PackedDatabase if resolve_kernel(kernel) == "numpy" else BigIntKernel
    return cls.from_fetcher(count, page_file.page_size, fetch)


#: store -> {(kernel, file name, num pages, extra key) -> kernel object}.
#: Weakly keyed so closing/dropping a store releases its packed image.
_SHARED_KERNELS: "weakref.WeakKeyDictionary[object, Dict[Tuple[object, ...], ServerKernel]]" = (
    weakref.WeakKeyDictionary()
)
_SHARED_KERNELS_LOCK = threading.Lock()


def shared_kernel(
    page_file: "PageFile",
    page_numbers: Optional[Sequence[int]] = None,
    kernel: Optional[str] = None,
    cache_key: Tuple[object, ...] = (),
) -> ServerKernel:
    """The memoised packed kernel for a page file (or page subset).

    One packed image per ``(backing store, kernel, file, page count, cache
    key)`` is shared by every consumer — the two replicas of a protocol and
    all worker contexts of an engine.  The page count participates in the
    key, so a file that grew since the last pack is repacked; serving
    databases are sealed, which is what makes the memo safe.
    """
    resolved = resolve_kernel(kernel)
    count = page_file.num_pages if page_numbers is None else len(page_numbers)
    key = (resolved, page_file.name, count) + tuple(cache_key)
    store = page_file.store
    with _SHARED_KERNELS_LOCK:
        per_store = _SHARED_KERNELS.get(store)
        if per_store is None:
            per_store = {}
            _SHARED_KERNELS[store] = per_store
        cached = per_store.get(key)
    if cached is not None:
        return cached
    built = kernel_from_pages(page_file, page_numbers, kernel=resolved)
    with _SHARED_KERNELS_LOCK:
        return per_store.setdefault(key, built)


# ---------------------------------------------------------------------- #
# oblivious serving through a kernel
# ---------------------------------------------------------------------- #
def oblivious_read_many(
    kernel: ServerKernel,
    rng: random.Random,
    indices: Sequence[int],
    log: Optional[Callable[[FrozenSet[int]], None]] = None,
) -> List[bytes]:
    """Serve block reads through a two-server XOR retrieval over ``kernel``.

    Both logical servers answer off the one shared packed image (the
    non-collusion split is a deployment property, not a data-layout one).
    ``log`` receives each server-visible subset — the adversary view the
    privacy tests compare across kernels; identical RNG state yields
    identical logs for either kernel, which the property tests pin.
    """
    if not indices:
        return []
    masks_a = random_subset_masks(rng, kernel.num_blocks, len(indices))
    masks_b = [mask ^ (1 << index) for mask, index in zip(masks_a, indices)]
    if log is not None:
        for mask_a, mask_b in zip(masks_a, masks_b):
            log(frozenset(mask_indices(mask_a)))
            log(frozenset(mask_indices(mask_b)))
    if isinstance(kernel, PackedDatabase):
        rows = kernel.answer_rows(masks_a)
        rows = rows ^ kernel.answer_rows(masks_b)
        return kernel.rows_to_blocks(rows)
    return [
        (
            int.from_bytes(kernel.answer_mask(mask_a), "big")
            ^ int.from_bytes(kernel.answer_mask(mask_b), "big")
        ).to_bytes(kernel.block_size, "big")
        for mask_a, mask_b in zip(masks_a, masks_b)
    ]
