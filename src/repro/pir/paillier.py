"""A small, self-contained Paillier cryptosystem.

Paillier encryption is additively homomorphic:
``Enc(a) · Enc(b) mod n² = Enc(a + b)`` and ``Enc(a)^k = Enc(k·a)``.
The single-server computational PIR in :mod:`repro.pir.additive_pir` relies on
exactly this property.

This implementation uses Python integers only (the paper's reproduction hint
suggests ``gmpy2``; plain ``int`` keeps the package dependency-free at the
cost of speed, which is acceptable because the real-protocol code paths are
exercised on small demonstration databases).  Key sizes default to 512-bit
moduli — *not* production strength, but honest cryptography for tests and
examples.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import PirError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)


def _is_probable_prime(candidate: int, rounds: int = 20) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = secrets.randbelow(candidate - 3) + 2
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random probable prime with the requested bit length."""
    if bits < 8:
        raise PirError("prime size too small")
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    def encrypt(self, plaintext: int, randomness: Optional[int] = None) -> int:
        if plaintext < 0 or plaintext >= self.n:
            raise PirError("plaintext out of range for this key")
        if randomness is None:
            while True:
                randomness = secrets.randbelow(self.n)
                if randomness > 0:
                    break
        n_sq = self.n_squared
        return (pow(self.g, plaintext, n_sq) * pow(randomness, self.n, n_sq)) % n_sq

    def add(self, ciphertext_a: int, ciphertext_b: int) -> int:
        """Homomorphic addition of the underlying plaintexts."""
        return (ciphertext_a * ciphertext_b) % self.n_squared

    def multiply_plain(self, ciphertext: int, scalar: int) -> int:
        """Homomorphic multiplication of the plaintext by a known scalar."""
        return pow(ciphertext, scalar % self.n, self.n_squared)


@dataclass(frozen=True)
class PaillierPrivateKey:
    public_key: PaillierPublicKey
    lam: int   # lcm(p - 1, q - 1)
    mu: int    # (L(g^lam mod n^2))^{-1} mod n

    def decrypt(self, ciphertext: int) -> int:
        n = self.public_key.n
        n_sq = self.public_key.n_squared
        if ciphertext < 0 or ciphertext >= n_sq:
            raise PirError("ciphertext out of range for this key")
        x = pow(ciphertext, self.lam, n_sq)
        l_value = (x - 1) // n
        return (l_value * self.mu) % n


def generate_keypair(bits: int = 512) -> Tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an ``bits``-bit modulus."""
    half = bits // 2
    while True:
        p = generate_prime(half)
        q = generate_prime(half)
        if p != q:
            n = p * q
            if n.bit_length() >= bits - 1:
                break
    lam = _lcm(p - 1, q - 1)
    public_key = PaillierPublicKey(n)
    # mu = (L(g^lam mod n^2))^{-1} mod n, with g = n + 1 so L(g^lam) = lam mod n
    x = pow(public_key.g, lam, public_key.n_squared)
    l_value = (x - 1) // n
    mu = pow(l_value, -1, n)
    return public_key, PaillierPrivateKey(public_key, lam, mu)


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a // gcd(a, b) * b
