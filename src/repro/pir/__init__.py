"""PIR substrate: real protocols, the SCP simulator, and access traces."""

from .access_log import AccessTrace, AdversaryEvent, AdversaryView
from .additive_pir import AdditivePirClient, AdditivePirServer
from .batch import (
    indices_mask,
    mask_indices,
    random_subset_masks,
    retrieve_many,
    validate_subset_mask,
)
from .kernels import (
    ENV_PIR_KERNEL,
    KERNEL_NAMES,
    BigIntKernel,
    PackedDatabase,
    SharedPackHandle,
    SharedPackRegistry,
    kernel_from_pages,
    make_kernel,
    numpy_available,
    oblivious_read_many,
    resolve_kernel,
    shared_kernel,
    shared_kernel_key,
    shared_pack_registry,
)
from .oram import (
    OramBackedPir,
    OramServer,
    SquareRootOram,
    oblivious_sort_network,
    stream_encrypt,
)
from .paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    generate_prime,
)
from .protocol import PirProtocol, validate_block_database
from .scp import SecureCoprocessor, UsablePirSimulator
from .sharded import (
    PirShard,
    ShardMap,
    ShardedPageStore,
    ShardedPir,
    ShardedPirSimulator,
)
from .xor_pir import TwoServerXorPir, XorPirServer, xor_bytes

__all__ = [
    "AccessTrace",
    "AdditivePirClient",
    "AdditivePirServer",
    "AdversaryEvent",
    "AdversaryView",
    "BigIntKernel",
    "ENV_PIR_KERNEL",
    "KERNEL_NAMES",
    "PackedDatabase",
    "OramBackedPir",
    "OramServer",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PirProtocol",
    "PirShard",
    "SecureCoprocessor",
    "SharedPackHandle",
    "SharedPackRegistry",
    "ShardMap",
    "ShardedPageStore",
    "ShardedPir",
    "ShardedPirSimulator",
    "SquareRootOram",
    "TwoServerXorPir",
    "UsablePirSimulator",
    "XorPirServer",
    "generate_keypair",
    "generate_prime",
    "indices_mask",
    "kernel_from_pages",
    "make_kernel",
    "mask_indices",
    "numpy_available",
    "oblivious_read_many",
    "oblivious_sort_network",
    "random_subset_masks",
    "resolve_kernel",
    "retrieve_many",
    "shared_kernel",
    "shared_kernel_key",
    "shared_pack_registry",
    "stream_encrypt",
    "validate_block_database",
    "validate_subset_mask",
    "xor_bytes",
]
