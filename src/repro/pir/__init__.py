"""PIR substrate: real protocols, the SCP simulator, and access traces."""

from .access_log import AccessTrace, AdversaryEvent, AdversaryView
from .additive_pir import AdditivePirClient, AdditivePirServer
from .batch import indices_mask, mask_indices, random_subset_masks, retrieve_many
from .oram import (
    OramBackedPir,
    OramServer,
    SquareRootOram,
    oblivious_sort_network,
    stream_encrypt,
)
from .paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    generate_prime,
)
from .protocol import PirProtocol, validate_block_database
from .scp import SecureCoprocessor, UsablePirSimulator
from .sharded import (
    PirShard,
    ShardMap,
    ShardedPageStore,
    ShardedPir,
    ShardedPirSimulator,
)
from .xor_pir import TwoServerXorPir, XorPirServer, xor_bytes

__all__ = [
    "AccessTrace",
    "AdditivePirClient",
    "AdditivePirServer",
    "AdversaryEvent",
    "AdversaryView",
    "OramBackedPir",
    "OramServer",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PirProtocol",
    "PirShard",
    "SecureCoprocessor",
    "ShardMap",
    "ShardedPageStore",
    "ShardedPir",
    "ShardedPirSimulator",
    "SquareRootOram",
    "TwoServerXorPir",
    "UsablePirSimulator",
    "XorPirServer",
    "generate_keypair",
    "generate_prime",
    "indices_mask",
    "mask_indices",
    "oblivious_sort_network",
    "random_subset_masks",
    "retrieve_many",
    "stream_encrypt",
    "validate_block_database",
    "xor_bytes",
]
