"""PIR substrate: real protocols, the SCP simulator, and access traces."""

from .access_log import AccessTrace, AdversaryEvent, AdversaryView
from .additive_pir import AdditivePirClient, AdditivePirServer
from .oram import (
    OramBackedPir,
    OramServer,
    SquareRootOram,
    oblivious_sort_network,
    stream_encrypt,
)
from .paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    generate_prime,
)
from .protocol import PirProtocol, validate_block_database
from .scp import SecureCoprocessor, UsablePirSimulator
from .xor_pir import TwoServerXorPir, XorPirServer, xor_bytes

__all__ = [
    "AccessTrace",
    "AdditivePirClient",
    "AdditivePirServer",
    "AdversaryEvent",
    "AdversaryView",
    "OramBackedPir",
    "OramServer",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "PirProtocol",
    "SecureCoprocessor",
    "SquareRootOram",
    "TwoServerXorPir",
    "UsablePirSimulator",
    "XorPirServer",
    "generate_keypair",
    "generate_prime",
    "oblivious_sort_network",
    "stream_encrypt",
    "validate_block_database",
    "xor_bytes",
]
