"""Square-root ORAM: a runnable model of the paper's hardware-aided PIR core.

The PIR protocol the paper builds on (Williams & Sion, "Usable PIR" [36]) is
an oblivious-RAM construction executed by the secure co-processor against the
LBS's disk.  The cost simulator in :mod:`repro.pir.scp` reproduces its
*performance*; this module reproduces its *mechanism* at small scale, so that
tests and examples can demonstrate — not merely assume — that the physical
access pattern seen by the untrusted server is independent of the logical
requests.

The construction implemented here is the classic square-root ORAM of
Goldreich & Ostrovsky, the ancestor of [36]:

* the server stores ``N`` real blocks plus ``sqrt(N)`` dummy blocks, permuted
  by a secret permutation known only to the trusted side (the SCP), and a
  *shelter* of ``sqrt(N)`` slots;
* every logical access scans the entire shelter and then probes exactly one
  slot of the permuted area — the slot of the wanted block if it was not
  sheltered, or the next unused dummy if it was;
* after ``sqrt(N)`` accesses the epoch ends and the trusted side reshuffles
  the permuted area under a fresh permutation using an *oblivious* sorting
  network (Batcher odd-even merge sort), whose compare-exchange pattern is a
  fixed function of the array length and therefore reveals nothing.

All stored blocks are re-encrypted with a toy stream cipher on every write so
that the server cannot correlate contents across epochs.  The
:class:`OramServer` records every physical slot it is asked to touch, which is
exactly the adversary's evidence; the obliviousness tests assert the pattern
is invariant across logical workloads.
"""

from __future__ import annotations

import hashlib
import math
import secrets
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import PirError
from .protocol import PirProtocol, validate_block_database

#: Marker stored (encrypted) in the first byte of a slot payload.
_REAL = 1
_DUMMY = 0

#: Number of bytes used to encode the logical index inside a slot payload.
_INDEX_BYTES = 8


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """A SHA-256-based keystream; a stand-in for the SCP's AES engine."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def stream_encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt (or decrypt — the cipher is an involution) with the toy stream cipher."""
    stream = _keystream(key, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


class OramServer:
    """The untrusted storage: an array of fixed-size encrypted slots.

    The server performs reads and writes exactly as asked and keeps a log of
    every physical slot it touches.  That log is the complete adversary view
    of the ORAM — it never sees plaintext or the permutation.
    """

    def __init__(self, num_slots: int, slot_size: int) -> None:
        if num_slots <= 0:
            raise PirError("an ORAM server needs at least one slot")
        if slot_size <= 0:
            raise PirError("slot size must be positive")
        self.num_slots = num_slots
        self.slot_size = slot_size
        self._slots: List[bytes] = [bytes(slot_size) for _ in range(num_slots)]
        #: Sequence of ("read" | "write", slot) events — the adversary's evidence.
        self.access_log: List[Tuple[str, int]] = []

    def _check_slot(self, slot: int) -> None:
        if slot < 0 or slot >= self.num_slots:
            raise PirError(f"slot {slot} out of range (server has {self.num_slots} slots)")

    def read(self, slot: int) -> bytes:
        self._check_slot(slot)
        self.access_log.append(("read", slot))
        return self._slots[slot]

    def write(self, slot: int, data: bytes) -> None:
        self._check_slot(slot)
        if len(data) != self.slot_size:
            raise PirError(
                f"slot write of {len(data)} bytes does not match slot size {self.slot_size}"
            )
        self.access_log.append(("write", slot))
        self._slots[slot] = bytes(data)

    def slots_touched(self) -> List[int]:
        """Physical slots in the order they were accessed (duplicates preserved)."""
        return [slot for _, slot in self.access_log]

    def clear_log(self) -> None:
        self.access_log.clear()


def oblivious_sort_network(length: int) -> List[Tuple[int, int]]:
    """The compare-exchange schedule of Batcher's odd-even merge sort.

    The schedule depends only on ``length`` — never on the data — which is what
    makes the reshuffle oblivious.  The list of ``(i, j)`` pairs (with
    ``i < j``) is returned in execution order.
    """
    if length < 0:
        raise PirError("cannot build a sorting network of negative length")
    pairs: List[Tuple[int, int]] = []
    padded = 1
    while padded < max(length, 1):
        padded *= 2

    def add_pair(i: int, j: int) -> None:
        if i < length and j < length:
            pairs.append((i, j))

    # Iterative Batcher odd-even merge sort over the padded power-of-two size.
    p = 1
    while p < padded:
        k = p
        while k >= 1:
            for j in range(k % p, padded - k, 2 * k):
                for i in range(0, k):
                    if (i + j) // (2 * p) == (i + j + k) // (2 * p):
                        add_pair(i + j, i + j + k)
            k //= 2
        p *= 2
    return pairs


class SquareRootOram:
    """Goldreich–Ostrovsky square-root ORAM over ``N`` equal-sized blocks.

    The trusted side (the SCP in the paper's architecture) holds the
    encryption key, the current permutation and a position map; the untrusted
    side is an :class:`OramServer`.  Logical ``read``/``write`` calls hide both
    which block is touched and whether the operation is a read or a write.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        rng: Optional[secrets.SystemRandom] = None,
    ) -> None:
        blocks = validate_block_database(blocks)
        self._num_blocks = len(blocks)
        self._block_size = len(blocks[0])
        self._rng = rng if rng is not None else secrets.SystemRandom()
        self._key = secrets.token_bytes(16)
        self._epoch = 0

        self._shelter_capacity = max(1, math.isqrt(self._num_blocks))
        self._num_dummies = self._shelter_capacity
        self._main_slots = self._num_blocks + self._num_dummies
        # A slot stores nonce (20 bytes) + encrypted [kind | index | block].
        slot_size = 20 + 1 + _INDEX_BYTES + self._block_size
        self.server = OramServer(self._main_slots + self._shelter_capacity, slot_size)

        # Trusted-side state.
        self._position: Dict[int, int] = {}
        self._dummy_slots: List[int] = []
        self._shelter: Dict[int, bytes] = {}          # logical index -> plaintext block
        self._shelter_writes = 0
        self._accesses_this_epoch = 0
        self._dummies_used = 0

        self._plaintext = [bytes(block) for block in blocks]
        self._install_permutation(initial=True)

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def epoch(self) -> int:
        """Number of reshuffles performed so far."""
        return self._epoch

    @property
    def accesses_per_epoch(self) -> int:
        """Logical accesses served between two reshuffles (``sqrt(N)``)."""
        return self._shelter_capacity

    def read(self, index: int) -> bytes:
        """Obliviously read the block at logical ``index``."""
        return self._access(index, new_value=None)

    def write(self, index: int, value: bytes) -> None:
        """Obliviously overwrite the block at logical ``index``."""
        if len(value) != self._block_size:
            raise PirError(
                f"block write of {len(value)} bytes does not match block size {self._block_size}"
            )
        self._access(index, new_value=bytes(value))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _slot_payload(self, kind: int, index: int, data: bytes) -> bytes:
        return bytes([kind]) + index.to_bytes(_INDEX_BYTES, "big") + data

    def _encrypt_slot(self, slot: int, payload: bytes) -> bytes:
        nonce = self._epoch.to_bytes(8, "big") + slot.to_bytes(8, "big") + secrets.token_bytes(4)
        body = stream_encrypt(self._key, nonce, payload)
        return nonce + body

    def _decrypt_slot(self, ciphertext: bytes) -> bytes:
        nonce, body = ciphertext[:20], ciphertext[20:]
        return stream_encrypt(self._key, nonce, body)

    def _install_permutation(self, initial: bool = False) -> None:
        """(Re)permute the main area under a fresh secret permutation.

        On the very first installation the blocks are simply written out in
        permuted order.  On subsequent reshuffles the same result is achieved
        with an oblivious sorting network so that the server learns nothing
        from the reorganisation pattern (the schedule is data-independent).
        """
        order = list(range(self._main_slots))
        self._rng.shuffle(order)
        # order[k] is the item placed at physical slot k; invert it for the map.
        self._position = {}
        self._dummy_slots = []
        payloads: List[bytes] = [b""] * self._main_slots
        for slot, item in enumerate(order):
            if item < self._num_blocks:
                self._position[item] = slot
                payloads[slot] = self._slot_payload(_REAL, item, self._plaintext[item])
            else:
                self._dummy_slots.append(slot)
                payloads[slot] = self._slot_payload(_DUMMY, item, bytes(self._block_size))

        if initial:
            for slot, payload in enumerate(payloads):
                self.server.write(slot, self._slot_size_pad(self._encrypt_slot(slot, payload)))
        else:
            self._oblivious_rewrite(payloads)

        # Reset the shelter area to encrypted empty slots.
        for offset in range(self._shelter_capacity):
            slot = self._main_slots + offset
            empty = self._slot_payload(_DUMMY, 0, bytes(self._block_size))
            self.server.write(slot, self._slot_size_pad(self._encrypt_slot(slot, empty)))

        self._shelter = {}
        self._shelter_writes = 0
        self._accesses_this_epoch = 0
        self._dummies_used = 0

    def _slot_size_pad(self, data: bytes) -> bytes:
        if len(data) > self.server.slot_size:
            raise PirError("internal error: encrypted slot exceeds the slot size")
        return data + bytes(self.server.slot_size - len(data))

    def _oblivious_rewrite(self, payloads: List[bytes]) -> None:
        """Write the freshly permuted payloads back using a data-independent pattern.

        The square-root ORAM reshuffle is an oblivious sort of the old slots by
        their new (secretly tagged) positions.  The server-visible pattern of a
        Batcher network depends only on the array length, so we execute the
        network's compare-exchanges as read-read-write-write slot operations
        and then overwrite every slot with its new payload in sequential order
        — both phases are fixed schedules.
        """
        for i, j in oblivious_sort_network(self._main_slots):
            first = self.server.read(i)
            second = self.server.read(j)
            # The trusted side re-encrypts both slots; contents are swapped or
            # not depending on secret tags, which the server cannot see.
            self.server.write(i, self._slot_size_pad(self._encrypt_slot(i, self._decrypt_slot(first))))
            self.server.write(j, self._slot_size_pad(self._encrypt_slot(j, self._decrypt_slot(second))))
        for slot, payload in enumerate(payloads):
            self.server.write(slot, self._slot_size_pad(self._encrypt_slot(slot, payload)))

    def _scan_shelter(self) -> None:
        """Read every shelter slot (the fixed-cost scan of each access)."""
        for offset in range(self._shelter_capacity):
            self.server.read(self._main_slots + offset)

    def _append_to_shelter(self, index: int, value: bytes) -> None:
        slot = self._main_slots + self._shelter_writes
        payload = self._slot_payload(_REAL, index, value)
        self.server.write(slot, self._slot_size_pad(self._encrypt_slot(slot, payload)))
        self._shelter[index] = value
        self._shelter_writes += 1

    def _access(self, index: int, new_value: Optional[bytes]) -> bytes:
        if index < 0 or index >= self._num_blocks:
            raise PirError(f"block index {index} out of range")

        self._scan_shelter()

        in_shelter = index in self._shelter
        if in_shelter:
            # Probe the next unused dummy so the main-area access still happens
            # and every epoch touches distinct, random-looking slots.
            dummy_slot = self._dummy_slots[self._dummies_used]
            self.server.read(dummy_slot)
            self._dummies_used += 1
            value = self._shelter[index]
        else:
            slot = self._position[index]
            ciphertext = self.server.read(slot)
            payload = self._decrypt_slot(ciphertext)
            value = payload[1 + _INDEX_BYTES: 1 + _INDEX_BYTES + self._block_size]

        if new_value is not None:
            value = new_value
            self._plaintext[index] = new_value
        elif not in_shelter:
            self._plaintext[index] = value

        self._append_to_shelter(index, value)
        self._accesses_this_epoch += 1

        if self._accesses_this_epoch >= self.accesses_per_epoch:
            self._epoch += 1
            self._install_permutation()
        return value


class OramBackedPir(PirProtocol):
    """A :class:`PirProtocol` whose retrievals run through a real square-root ORAM.

    This is the end-to-end demonstrator used by tests and examples: page
    retrievals issued by the schemes can be served by an actual oblivious
    storage rather than the cost-only simulator.
    """

    def __init__(self, blocks: Sequence[bytes], rng: Optional[secrets.SystemRandom] = None) -> None:
        blocks = validate_block_database(blocks)
        self._oram = SquareRootOram(blocks, rng=rng)

    @property
    def num_blocks(self) -> int:
        return self._oram.num_blocks

    @property
    def oram(self) -> SquareRootOram:
        return self._oram

    @property
    def server(self) -> OramServer:
        """The untrusted storage (exposes the physical access log)."""
        return self._oram.server

    def retrieve(self, index: int) -> bytes:
        return self._oram.read(index)
