"""Sharded PIR databases: split one block/page store across independent shards.

A single PIR database pays its server-side cost per retrieval in the size of
the *whole* database (for the two-server XOR protocol, each server XORs about
half of its blocks per answered subset).  Sharding splits the database into
``S`` independent sub-databases so each retrieval is served by the one shard
owning the requested block, cutting server work per retrieval to ``1/S`` and
letting the shards answer a batch's sub-streams independently (in a real
deployment: on separate machines).

Two layers live here, mirroring the two PIR layers of the package:

* :class:`ShardedPir` wraps any block-level
  :class:`~repro.pir.protocol.PirProtocol`: the block database is split by a
  :class:`ShardMap` (round-robin or range sharding by block id), one protocol
  instance is built per shard, and the shard-aware :meth:`ShardedPir.
  retrieve_many` routes each shard's sub-batch to it independently.
* :class:`ShardedPirSimulator` is the engine-facing layer: a drop-in
  :class:`~repro.pir.scp.UsablePirSimulator` whose page reads route through
  per-shard :class:`PirShard` connections, each owning its slice of every
  page file.  Traces, plan conformance and the simulated cost model are
  byte-identical to the unsharded simulator — sharding the simulator is a
  *physical* storage/throughput decision, invisible to the adversary model.

Privacy note (documented, and asserted by the tests): within a shard the
underlying protocol's guarantee is untouched, but the adversary additionally
learns *which shard* a retrieval touched — i.e. ``block_id mod S`` (or its
range bucket).  This is the standard leakage/throughput trade-off of
partitioned PIR; deployments pick ``S`` accordingly.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ..costmodel import DEFAULT_SPEC, SystemSpec
from ..exceptions import PirError
from ..storage import Database
from .access_log import AccessTrace
from .kernels import (
    PackedDatabase,
    ServerKernel,
    SharedPackHandle,
    oblivious_read_many,
    resolve_kernel,
    shared_kernel,
    shared_kernel_key,
    shared_pack_registry,
)
from .protocol import PirProtocol, validate_block_database
from .scp import SecureCoprocessor, UsablePirSimulator
from .xor_pir import TwoServerXorPir

if TYPE_CHECKING:
    from ..storage.pagefile import PageFile

#: Supported shard-assignment strategies.
STRATEGIES = ("round-robin", "range")


class ShardMap:
    """Pure index arithmetic: global block id ↔ (shard, local block id).

    ``round-robin`` assigns block ``i`` to shard ``i % S`` (local id
    ``i // S``); ``range`` splits the id space into ``S`` contiguous runs
    whose sizes differ by at most one.  Both keep shard sizes balanced for
    any ``num_blocks``; round-robin additionally balances *hot ranges* (a
    scan-heavy workload spreads across all shards), which is why it is the
    default.
    """

    __slots__ = ("num_blocks", "num_shards", "strategy", "_range_starts")

    def __init__(
        self, num_blocks: int, num_shards: int, strategy: str = "round-robin"
    ) -> None:
        if num_blocks <= 0:
            raise PirError("a sharded database needs at least one block")
        if num_shards < 1:
            raise PirError(f"shard count must be positive, got {num_shards}")
        if strategy not in STRATEGIES:
            raise PirError(
                f"unknown shard strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.num_blocks = num_blocks
        self.num_shards = num_shards
        self.strategy = strategy
        # empty for round-robin (which never consults it)
        self._range_starts: List[int] = []
        if strategy == "range":
            base, extra = divmod(num_blocks, num_shards)
            starts = [0]
            for shard in range(num_shards):
                starts.append(starts[-1] + base + (1 if shard < extra else 0))
            self._range_starts = starts

    def shard_of(self, index: int) -> int:
        """The shard owning global block ``index``."""
        self._check(index)
        if self.strategy == "round-robin":
            return index % self.num_shards
        starts = self._range_starts
        # shards hold contiguous runs; find the run containing ``index``
        low, high = 0, self.num_shards - 1
        while low < high:
            mid = (low + high + 1) // 2
            if starts[mid] <= index:
                low = mid
            else:
                high = mid - 1
        return low

    def local_index(self, index: int) -> int:
        """The block's position within its owning shard."""
        self._check(index)
        if self.strategy == "round-robin":
            return index // self.num_shards
        return index - self._range_starts[self.shard_of(index)]

    def locate(self, index: int) -> Tuple[int, int]:
        """``(shard, local index)`` of a global block id."""
        return self.shard_of(index), self.local_index(index)

    def global_index(self, shard: int, local: int) -> int:
        """Inverse of :meth:`locate`."""
        if shard < 0 or shard >= self.num_shards:
            raise PirError(f"shard {shard} out of range")
        if self.strategy == "round-robin":
            index = local * self.num_shards + shard
        else:
            index = self._range_starts[shard] + local
        self._check(index)
        return index

    def shard_sizes(self) -> List[int]:
        """Number of blocks each shard owns (sizes differ by at most one)."""
        sizes = [0] * self.num_shards
        if self.strategy == "round-robin":
            base, extra = divmod(self.num_blocks, self.num_shards)
            for shard in range(self.num_shards):
                sizes[shard] = base + (1 if shard < extra else 0)
        else:
            starts = self._range_starts
            for shard in range(self.num_shards):
                sizes[shard] = starts[shard + 1] - starts[shard]
        return sizes

    def split(self, blocks: Sequence) -> List[List]:
        """Partition ``blocks`` (indexed by global id) into per-shard lists.

        Each shard's list is ordered by local id, so
        ``split(blocks)[s][l] == blocks[global_index(s, l)]``.
        """
        if len(blocks) != self.num_blocks:
            raise PirError(
                f"expected {self.num_blocks} blocks to split, got {len(blocks)}"
            )
        if self.strategy == "round-robin":
            return [list(blocks[shard :: self.num_shards]) for shard in range(self.num_shards)]
        starts = self._range_starts
        return [
            list(blocks[starts[shard] : starts[shard + 1]])
            for shard in range(self.num_shards)
        ]

    def _check(self, index: int) -> None:
        if index < 0 or index >= self.num_blocks:
            raise PirError(f"block index {index} out of range")


#: Builds the per-shard protocol instance from that shard's block list.
ProtocolFactory = Callable[[Sequence[bytes]], PirProtocol]


class ShardedPir(PirProtocol):
    """A PIR protocol over ``S`` independent sub-databases.

    The block database is split by a :class:`ShardMap`; one underlying
    protocol instance (default: :class:`~repro.pir.xor_pir.TwoServerXorPir`)
    serves each shard.  :meth:`retrieve_many` groups a batch by owning shard
    and answers each shard's sub-batch through that shard's own batched
    retrieval, so the per-retrieval server work scales with the shard size,
    not the database size.
    """

    def __init__(
        self,
        blocks: Sequence[bytes],
        num_shards: int,
        strategy: str = "round-robin",
        protocol_factory: Optional[ProtocolFactory] = None,
        log_queries: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        blocks = validate_block_database(blocks)
        if num_shards > len(blocks):
            raise PirError(
                f"cannot split {len(blocks)} blocks across {num_shards} shards "
                "(every shard needs at least one block)"
            )
        self.shard_map = ShardMap(len(blocks), num_shards, strategy)
        if protocol_factory is None:
            # each shard packs its own (1/S-sized) database through the
            # selected server kernel; ``kernel=None`` keeps runtime selection
            protocol_factory = lambda shard_blocks: TwoServerXorPir(
                shard_blocks, log_queries=log_queries, kernel=kernel
            )
        self.shards: List[PirProtocol] = [
            protocol_factory(shard_blocks)
            for shard_blocks in self.shard_map.split(blocks)
        ]
        self._num_blocks = len(blocks)

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    def retrieve(self, index: int) -> bytes:
        shard, local = self.shard_map.locate(index)
        return self.shards[shard].retrieve(local)

    def retrieve_many(self, indices: Sequence[int]) -> List[bytes]:
        """Batched retrieval routed shard by shard.

        Each shard answers its sub-batch independently (one batched call per
        shard); results are scattered back into request order, so the method
        is a drop-in replacement for any protocol's ``retrieve_many``.
        """
        indices = list(indices)
        by_shard: Dict[int, List[Tuple[int, int]]] = {}
        for position, index in enumerate(indices):
            shard, local = self.shard_map.locate(index)
            by_shard.setdefault(shard, []).append((position, local))
        results: List[Optional[bytes]] = [None] * len(indices)
        for shard, sub_batch in by_shard.items():
            answers = self.shards[shard].retrieve_many([local for _, local in sub_batch])
            for (position, _), answer in zip(sub_batch, answers):
                results[position] = answer
        return cast(List[bytes], results)


# ---------------------------------------------------------------------- #
# engine-facing layer: sharding the simulated page store
# ---------------------------------------------------------------------- #
class ShardedPageStore:
    """The partitioned *view* behind a sharded page simulator.

    Assigns every page of every page file to one of ``num_shards`` shards by
    a per-file :class:`ShardMap` — pure index arithmetic over the database's
    own page stores, holding **no page copies**: a shard read translates the
    ``(shard, local page)`` coordinate back to the logical page number and
    reads it from the backing :class:`~repro.storage.stores.PageStore`
    (which may be in memory, mmap or SQLite).  Sharding therefore adds zero
    resident page bytes regardless of shard count (asserted by the tests;
    see :attr:`resident_page_bytes`).  The view carries no per-connection
    state, so one store is safely shared by every
    :class:`ShardedPirSimulator` built over it — the query engine builds one
    per engine and hands it to all worker contexts.
    """

    __slots__ = ("num_shards", "strategy", "maps", "_files")

    def __init__(
        self, database: Database, num_shards: int, strategy: str = "round-robin"
    ) -> None:
        if num_shards < 1:
            raise PirError(f"shard count must be positive, got {num_shards}")
        if strategy not in STRATEGIES:
            raise PirError(
                f"unknown shard strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.num_shards = num_shards
        self.strategy = strategy
        self.maps: Dict[str, ShardMap] = {}
        self._files: Dict[str, "PageFile"] = {}
        for file_name in database.file_names():
            page_file = database.file(file_name)
            if page_file.num_pages == 0:
                continue
            # small files may have fewer pages than shards; they simply
            # occupy the first few shards
            self.maps[file_name] = ShardMap(
                page_file.num_pages, min(num_shards, page_file.num_pages), strategy
            )
            self._files[file_name] = page_file

    def locate(self, file_name: str, page_number: int) -> Tuple[int, int]:
        """``(shard, local page)`` owning a logical page."""
        try:
            file_map = self.maps[file_name]
        except KeyError:
            raise PirError(f"file {file_name!r} has no sharded pages") from None
        return file_map.locate(page_number)

    def page_size(self, file_name: str) -> int:
        """Padded page size of a sharded file (what a shard serves per read)."""
        page_file = self._files.get(file_name)
        if page_file is None:
            raise PirError(f"file {file_name!r} has no sharded pages")
        return page_file.page_size

    def shard_num_pages(self, shard_id: int, file_name: str) -> int:
        """Pages of ``file_name`` owned by shard ``shard_id``."""
        file_map = self.maps.get(file_name)
        if file_map is None or shard_id >= file_map.num_shards:
            return 0
        return file_map.shard_sizes()[shard_id]

    def check_local(
        self, shard_id: int, file_name: str, local_pages: Sequence[int]
    ) -> ShardMap:
        """Validate shard-local coordinates; returns the file's shard map.

        Shared by the direct-read and the XOR-kernel serving paths so both
        raise the identical :class:`PirError` for bad coordinates.
        """
        file_map = self.maps.get(file_name)
        if file_map is None:
            raise PirError(f"file {file_name!r} has no sharded pages")
        shard_size = (
            file_map.shard_sizes()[shard_id]
            if 0 <= shard_id < file_map.num_shards
            else 0
        )
        for local_page in local_pages:
            if local_page < 0 or local_page >= shard_size:
                raise PirError(
                    f"shard {shard_id} does not hold page {local_page} of "
                    f"file {file_name!r}"
                )
        return file_map

    def read_local(self, shard_id: int, file_name: str, local_page: int) -> bytes:
        """The padded page image at a shard-local coordinate."""
        file_map = self.check_local(shard_id, file_name, (local_page,))
        page_number = file_map.global_index(shard_id, local_page)
        return self._files[file_name].read_page(page_number)

    def read_local_batch(
        self, shard_id: int, file_name: str, local_pages: Sequence[int]
    ) -> List[bytes]:
        """Batched shard-local reads (one backing-store round trip)."""
        file_map = self.check_local(shard_id, file_name, local_pages)
        page_numbers = [
            file_map.global_index(shard_id, local_page) for local_page in local_pages
        ]
        return self._files[file_name].read_pages_batch(page_numbers)

    def shard_kernel(
        self, shard_id: int, file_name: str, kernel: Optional[str] = None
    ) -> ServerKernel:
        """The (memoised) packed server kernel over one shard of one file.

        The kernel packs the shard's pages in local order — local page ``l``
        is kernel block ``l`` — reading them zero-copy off the backing store
        when it exposes page views (the mmap backend).  Packs are cached per
        backing store by :func:`~repro.pir.kernels.shared_kernel`, so every
        simulator/worker sharing this view answers off one packed image per
        shard.
        """
        file_map = self.check_local(shard_id, file_name, ())
        shard_size = (
            file_map.shard_sizes()[shard_id]
            if 0 <= shard_id < file_map.num_shards
            else 0
        )
        if shard_size == 0:
            raise PirError(
                f"shard {shard_id} holds no pages of file {file_name!r}"
            )
        page_numbers = [
            file_map.global_index(shard_id, local) for local in range(shard_size)
        ]
        return shared_kernel(
            self._files[file_name],
            page_numbers,
            kernel=kernel,
            cache_key=("shard", shard_id, file_map.num_shards, self.strategy),
        )

    def publish_shard_packs(
        self, kernel: Optional[str] = None
    ) -> Dict[Tuple[object, ...], SharedPackHandle]:
        """Build every shard pack and publish it to the shared-pack registry.

        Returns the picklable handles keyed exactly as a worker's
        :meth:`shard_kernel` → :func:`~repro.pir.kernels.shared_kernel`
        lookup files them, so a process worker that adopts this mapping
        (:meth:`~repro.pir.kernels.SharedPackRegistry.adopt`) attaches the
        one machine-wide pack instead of repacking its shards.  Empty when
        the resolved kernel is not the packed one (the big-int oracle has no
        shareable image).  The publisher owns the segments: whoever calls
        this must eventually ``unpublish`` the returned keys (the engine and
        cluster do so from their ``close()``).
        """
        if resolve_kernel(kernel) != "numpy":
            return {}
        registry = shared_pack_registry()
        handles: Dict[Tuple[object, ...], SharedPackHandle] = {}
        for file_name, file_map in sorted(self.maps.items()):
            page_file = self._files[file_name]
            for shard_id in range(file_map.num_shards):
                pack = self.shard_kernel(shard_id, file_name, kernel="numpy")
                if not isinstance(pack, PackedDatabase):  # pragma: no cover
                    continue
                page_numbers = [
                    file_map.global_index(shard_id, local)
                    for local in range(file_map.shard_sizes()[shard_id])
                ]
                key = shared_kernel_key(
                    page_file,
                    page_numbers,
                    kernel="numpy",
                    cache_key=(
                        "shard",
                        shard_id,
                        file_map.num_shards,
                        self.strategy,
                    ),
                )
                handles[key] = registry.publish(key, pack)
        return handles

    @property
    def resident_page_bytes(self) -> int:
        """Page bytes this view holds beyond the backing stores — always 0.

        The pre-refactor store copied every page into per-shard dicts,
        doubling resident memory; the view keeps only shard maps and file
        references, so sharding is free regardless of shard count.
        """
        return 0


class PirShard:
    """One independent sub-database connection of a sharded page store.

    References the shared store view (no page copies) and tracks the serving
    statistics of this connection.  Worker contexts of the query engine each
    hold their own connection objects, so per-worker shard load can be
    inspected independently.

    With ``xor_kernel`` set, reads are served as two-server XOR retrievals
    over this shard's packed kernel (one shared pack per shard and file —
    see :meth:`ShardedPageStore.shard_kernel`) instead of direct store
    reads; the returned bytes are identical, the server-side XOR work is
    real.  ``log`` receives ``(file name, shard id, subset)`` per answered
    subset — the sharded deployment's adversary view.
    """

    __slots__ = ("shard_id", "pages_served", "_store", "_xor_kernel", "_rng", "_log")

    def __init__(
        self,
        shard_id: int,
        store: ShardedPageStore,
        xor_kernel: Optional[str] = None,
        rng: Optional[random.Random] = None,
        log: Optional[Callable[[Tuple[str, int, frozenset]], None]] = None,
    ) -> None:
        self.shard_id = shard_id
        self.pages_served = 0
        self._store = store
        self._xor_kernel = xor_kernel
        self._rng = rng
        self._log = log

    def num_pages(self, file_name: str) -> int:
        return self._store.shard_num_pages(self.shard_id, file_name)

    def read(self, file_name: str, local_page: int) -> bytes:
        if self._xor_kernel is None:
            page = self._store.read_local(self.shard_id, file_name, local_page)
        else:
            page = self._serve(file_name, [local_page])[0]
        self.pages_served += 1
        return page

    def read_many(self, file_name: str, local_pages: Sequence[int]) -> List[bytes]:
        if self._xor_kernel is None:
            pages = self._store.read_local_batch(self.shard_id, file_name, local_pages)
        else:
            pages = self._serve(file_name, list(local_pages))
        self.pages_served += len(pages)
        return pages

    def _serve(self, file_name: str, local_pages: List[int]) -> List[bytes]:
        """Answer validated local reads through this shard's XOR kernel."""
        self._store.check_local(self.shard_id, file_name, local_pages)
        kernel = self._store.shard_kernel(self.shard_id, file_name, self._xor_kernel)
        log: Optional[Callable[[frozenset], None]] = None
        if self._log is not None:
            sink, shard_id = self._log, self.shard_id
            log = lambda subset: sink((file_name, shard_id, subset))
        rng = self._rng
        if rng is None:  # pragma: no cover - XOR shards are always seeded
            raise PirError("XOR serving requires a seeded subset RNG")
        return oblivious_read_many(kernel, rng, local_pages, log=log)


class ShardedPirSimulator(UsablePirSimulator):
    """A :class:`UsablePirSimulator` whose page reads route through shards.

    Every page file of the database is split across ``num_shards``
    :class:`PirShard` connections by a per-file :class:`ShardMap`.  The
    partitioned pages live in a :class:`ShardedPageStore`; pass an existing
    ``store`` to share one partitioning across several simulators (the query
    engine does this for its worker contexts — connections and their stats
    stay per-simulator, the page bytes are stored once).  The adversary
    model is unchanged: traces record the *logical* file name and page
    number, the simulated retrieval time is charged against the logical
    file's page count, and all validation runs against the logical database —
    so query results, traces and response times are bit-identical to the
    unsharded simulator for every shard count (property-tested).
    """

    def __init__(
        self,
        database: Database,
        scp: Optional[SecureCoprocessor] = None,
        spec: SystemSpec = DEFAULT_SPEC,
        enforce_limits: bool = True,
        num_shards: int = 2,
        strategy: str = "round-robin",
        store: Optional[ShardedPageStore] = None,
        xor_kernel: Optional[str] = None,
        log_queries: bool = False,
        kernel_seed: int = 0,
    ) -> None:
        super().__init__(
            database,
            scp=scp,
            spec=spec,
            enforce_limits=enforce_limits,
            xor_kernel=xor_kernel,
            log_queries=log_queries,
            kernel_seed=kernel_seed,
        )
        if store is None:
            store = ShardedPageStore(database, num_shards, strategy)
        elif store.num_shards != num_shards or store.strategy != strategy:
            raise PirError(
                "supplied shard store does not match the requested shard layout"
            )
        self.store = store
        self.num_shards = num_shards
        self.strategy = strategy
        #: This simulator's own connections to the shared store's shards.
        #: With XOR serving enabled each connection owns an independent,
        #: deterministically seeded subset RNG, so adversary-view logs are
        #: reproducible (and identical across kernels) for a given seed.
        log = self.queries_seen.append if log_queries else None
        self.shards = [
            PirShard(
                shard_id,
                store,
                xor_kernel=self.xor_kernel,
                rng=(
                    random.Random(kernel_seed * 0x9E3779B1 + shard_id)
                    if self.xor_kernel is not None
                    else None
                ),
                log=log,
            )
            for shard_id in range(num_shards)
        ]

    def shard_of_page(self, file_name: str, page_number: int) -> Tuple[int, int]:
        """``(shard, local page)`` serving a logical page — what a sharded
        deployment's adversary would additionally observe."""
        return self.store.locate(file_name, page_number)

    def shard_page_counts(self) -> List[Dict[str, int]]:
        """Per-shard ``{file_name: pages owned}`` (storage balance)."""
        return [
            {
                name: shard.num_pages(name)
                for name in self.store.maps
                if shard.num_pages(name)
            }
            for shard in self.shards
        ]

    def shard_load(self) -> List[int]:
        """Pages served so far by each shard connection (serving balance)."""
        return [shard.pages_served for shard in self.shards]

    def _read_page(self, page_file: "PageFile", page_number: int) -> bytes:
        shard, local = self.shard_of_page(page_file.name, page_number)
        return self.shards[shard].read(page_file.name, local)

    def retrieve_pages(
        self,
        file_name: str,
        page_numbers: Sequence[int],
        trace: Optional[AccessTrace] = None,
    ) -> List[bytes]:
        """Batched retrieval: each shard serves its sub-batch independently.

        Validation, cost accounting and trace recording are performed in
        request order (identical to repeated :meth:`retrieve_page` calls);
        only the byte reads are grouped by owning shard, which is the part a
        real deployment answers on independent machines.
        """
        page_numbers = list(page_numbers)
        page_file = self._validate_file(file_name)
        for page_number in page_numbers:
            self._validate_page(page_file, file_name, page_number)
        by_shard: Dict[int, List[Tuple[int, int]]] = {}
        for position, page_number in enumerate(page_numbers):
            shard, local = self.shard_of_page(file_name, page_number)
            by_shard.setdefault(shard, []).append((position, local))
        results: List[Optional[bytes]] = [None] * len(page_numbers)
        for shard, sub_batch in by_shard.items():
            answers = self.shards[shard].read_many(
                file_name, [local for _, local in sub_batch]
            )
            for (position, _), answer in zip(sub_batch, answers):
                results[position] = answer
        for page_number in page_numbers:
            self._charge(page_file, file_name, page_number, trace)
        return cast(List[bytes], results)
