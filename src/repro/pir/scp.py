"""Secure co-processor (SCP) and hardware-aided PIR simulator.

The paper employs the protocol of Williams & Sion [36] running on an IBM 4764
cryptographic co-processor installed at the LBS, and *strictly simulates* its
performance (Section 7.1).  This module reproduces that simulation:

* :class:`SecureCoprocessor` models the device: its memory, the ``c·sqrt(N)``
  memory requirement of the protocol, and the resulting maximum supported
  file size (2.5 GByte with 32 MByte of SCP RAM).
* :class:`UsablePirSimulator` is the PIR black box the schemes talk to.  It
  returns the requested page content (the SCP is trusted, so functionally the
  retrieval simply succeeds) while charging the amortized ``O(log² N)``
  retrieval cost and recording what the adversary observes.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC, SystemSpec, pir_page_retrieval_time
from ..exceptions import FileSizeLimitError, PirError
from ..storage import Database, PageFile
from .access_log import AccessTrace
from .kernels import oblivious_read_many, resolve_kernel, shared_kernel


class SecureCoprocessor:
    """A tamper-resistant secure co-processor installed at the LBS."""

    def __init__(self, spec: SystemSpec = DEFAULT_SPEC) -> None:
        self.spec = spec

    @property
    def memory_bytes(self) -> int:
        return self.spec.scp_memory_bytes

    def memory_required_for(self, num_pages: int) -> float:
        """Memory the PIR protocol of [36] needs to serve a file of ``num_pages`` pages."""
        return self.spec.scp_memory_factor * math.sqrt(num_pages * self.spec.page_size)

    def supports_file(self, page_file: PageFile) -> bool:
        """Whether the SCP can serve PIR requests against ``page_file``."""
        if page_file.size_bytes > self.spec.max_file_bytes:
            return False
        return self.memory_required_for(page_file.num_pages) <= self.memory_bytes

    def check_file(self, page_file: PageFile) -> None:
        """Raise :class:`FileSizeLimitError` when the file cannot be supported."""
        if not self.supports_file(page_file):
            raise FileSizeLimitError(
                page_file.name, page_file.size_bytes, self.spec.max_file_bytes
            )


class UsablePirSimulator:
    """Simulated hardware-aided PIR access to the files of a :class:`Database`.

    Every retrieval:

    * validates the file against the SCP limits,
    * records the adversary-visible event (file touched, not which page) and
      the private page number in the supplied :class:`AccessTrace`,
    * accumulates the simulated PIR time, and
    * returns the page bytes.

    ``xor_kernel`` additionally routes every page read through a real
    two-server XOR retrieval served by a packed server kernel
    (:mod:`repro.pir.kernels`): ``"auto"``/``"numpy"``/``"bigint"`` select
    the kernel, ``None`` (the default) keeps direct page reads — eagerly
    packing every file would defeat the out-of-core storage backends, so XOR
    serving is a per-simulator opt-in.  The page bytes returned, the traces
    and the simulated cost model are identical either way; what changes is
    that the server-side work is *actually performed*, which is what the
    kernel benchmarks measure.  ``log_queries`` records the server-visible
    subsets in ``queries_seen`` as ``(file name, subset)`` — with the same
    ``kernel_seed``, both kernels produce identical logs (property-tested).
    """

    def __init__(
        self,
        database: Database,
        scp: Optional[SecureCoprocessor] = None,
        spec: SystemSpec = DEFAULT_SPEC,
        enforce_limits: bool = True,
        xor_kernel: Optional[str] = None,
        log_queries: bool = False,
        kernel_seed: int = 0,
    ) -> None:
        self.database = database
        self.spec = spec
        self.scp = scp if scp is not None else SecureCoprocessor(spec)
        self.enforce_limits = enforce_limits
        self.xor_kernel: Optional[str] = (
            None if xor_kernel in (None, "off") else resolve_kernel(xor_kernel)
        )
        self.log_queries = log_queries
        self.queries_seen: List[Tuple[str, frozenset]] = []
        self._kernel_rng = random.Random(kernel_seed)
        self._pir_time_s = 0.0

    @property
    def simulated_pir_time_s(self) -> float:
        """Total simulated PIR time accumulated so far."""
        return self._pir_time_s

    def reset_time(self) -> None:
        self._pir_time_s = 0.0

    def file_page_counts(self) -> Dict[str, int]:
        return {name: self.database.file(name).num_pages for name in self.database.file_names()}

    def retrieve_page(
        self, file_name: str, page_number: int, trace: Optional[AccessTrace] = None
    ) -> bytes:
        """Obliviously retrieve one page of ``file_name``."""
        page_file = self._validate_file(file_name)
        self._validate_page(page_file, file_name, page_number)
        data = self._read_page(page_file, page_number)
        self._charge(page_file, file_name, page_number, trace)
        return data

    def retrieve_pages(
        self,
        file_name: str,
        page_numbers: Sequence[int],
        trace: Optional[AccessTrace] = None,
    ) -> List[bytes]:
        """Retrieve a batch of pages; equivalent to repeated :meth:`retrieve_page`.

        The bytes come back in one batched page-store read
        (:meth:`~repro.storage.pagefile.PageFile.read_pages_batch` — one
        round trip for the SQLite backend), while validation, cost accounting
        and trace recording run per page in request order, so traces and
        simulated times are identical to repeated single retrievals.  The
        sharded simulator (:class:`~repro.pir.sharded.ShardedPirSimulator`)
        overrides this to serve each shard's sub-batch independently.
        """
        page_numbers = list(page_numbers)
        page_file = self._validate_file(file_name)
        for page_number in page_numbers:
            self._validate_page(page_file, file_name, page_number)
        if self.xor_kernel is None:
            results = page_file.read_pages_batch(page_numbers)
        else:
            results = self._oblivious_read(page_file, page_numbers)
        for page_number in page_numbers:
            self._charge(page_file, file_name, page_number, trace)
        return results

    # ------------------------------------------------------------------ #
    # hooks shared with the sharded simulator
    # ------------------------------------------------------------------ #
    def _validate_file(self, file_name: str) -> PageFile:
        page_file = self.database.file(file_name)
        if self.enforce_limits:
            self.scp.check_file(page_file)
        return page_file

    def _validate_page(self, page_file: PageFile, file_name: str, page_number: int) -> None:
        if page_number < 0 or page_number >= page_file.num_pages:
            raise PirError(
                f"page {page_number} out of range for file {file_name!r} "
                f"({page_file.num_pages} pages)"
            )

    def _read_page(self, page_file: PageFile, page_number: int) -> bytes:
        """Fetch the page bytes (overridden by the sharded simulator)."""
        if self.xor_kernel is None:
            return page_file.read_page(page_number)
        return self._oblivious_read(page_file, [page_number])[0]

    def _oblivious_read(
        self, page_file: PageFile, page_numbers: Sequence[int]
    ) -> List[bytes]:
        """Serve validated page reads through the XOR kernel (opt-in path).

        The packed kernel for each file is memoised per backing store
        (:func:`~repro.pir.kernels.shared_kernel`), so every simulator over
        the same database — e.g. all engine worker contexts — answers off
        one packed image.
        """
        kernel = shared_kernel(page_file, kernel=self.xor_kernel)
        log: Optional[Callable[[frozenset], None]] = None
        if self.log_queries:
            file_name = page_file.name
            log = lambda subset: self.queries_seen.append((file_name, subset))
        return oblivious_read_many(kernel, self._kernel_rng, page_numbers, log=log)

    def _charge(
        self,
        page_file: PageFile,
        file_name: str,
        page_number: int,
        trace: Optional[AccessTrace],
    ) -> None:
        """Accumulate the simulated cost and record the access."""
        self._pir_time_s += pir_page_retrieval_time(page_file.num_pages, self.spec)
        if trace is not None:
            trace.record_pir_access(file_name, page_number)

    def download_header(self, trace: Optional[AccessTrace] = None) -> bytes:
        """Download the header file in full, without the PIR interface."""
        header = self.database.header
        if trace is not None:
            trace.record_header_download(len(header))
        return header
