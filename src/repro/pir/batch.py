"""Batched PIR retrieval: subset-mask helpers and the generic batch driver.

Every :class:`~repro.pir.protocol.PirProtocol` exposes ``retrieve_many``; the
base class falls back to repeated single retrievals, while protocols that can
amortize work across a batch override it (``TwoServerXorPir`` draws the random
subsets for the whole batch from one ``getrandbits`` call and answers them in
one pass per server).  This module holds the shared bitmask utilities and a
convenience front end.

Subsets of block indices are represented as integer bitmasks: bit ``i`` set
means block ``i`` is in the subset.  On top of being compact, this lets the
servers accumulate answers with native big-integer XOR instead of
byte-at-a-time loops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import PirError


def validate_subset_mask(mask: int, num_blocks: Optional[int] = None) -> int:
    """Validate a subset bitmask against the database size and return it.

    Shared by the big-int and the packed numpy server kernels so both raise
    the identical :class:`PirError` for malformed masks: a corrupted mask
    naming a block ``>= num_blocks`` would otherwise index past the database
    or silently misdecode the answer.
    """
    if mask < 0:
        raise PirError("subset masks must be non-negative")
    if num_blocks is not None and mask >> num_blocks:
        raise PirError(
            f"subset mask names block index {mask.bit_length() - 1}, but the "
            f"database has only {num_blocks} blocks"
        )
    return mask


def mask_indices(mask: int, num_blocks: Optional[int] = None) -> List[int]:
    """The sorted block indices named by a subset bitmask.

    When ``num_blocks`` is given, the mask is validated against the database
    size via :func:`validate_subset_mask` and surfaces :class:`PirError` for
    malformed masks.
    """
    validate_subset_mask(mask, num_blocks)
    indices: List[int] = []
    remaining = mask
    while remaining:
        lowest = remaining & -remaining
        indices.append(lowest.bit_length() - 1)
        remaining ^= lowest
    return indices


def indices_mask(indices: Sequence[int]) -> int:
    """The subset bitmask naming ``indices``."""
    mask = 0
    for index in indices:
        if index < 0:
            raise PirError(f"block index {index} out of range")
        mask |= 1 << index
    return mask


def random_subset_masks(rng, num_blocks: int, count: int) -> List[int]:
    """``count`` independent uniform subset masks over ``num_blocks`` blocks.

    All ``num_blocks * count`` random bits are drawn with a single
    ``rng.getrandbits`` call, which is what makes batched retrieval cheaper
    than per-query subset generation.  Each slice of ``num_blocks`` bits is an
    independent uniform mask, so per-query privacy is unchanged.
    """
    if num_blocks <= 0:
        raise PirError("a PIR database needs at least one block")
    if count < 0:
        raise PirError("cannot draw a negative number of subsets")
    if count == 0:
        return []
    bits = rng.getrandbits(num_blocks * count)
    full = (1 << num_blocks) - 1
    return [(bits >> (position * num_blocks)) & full for position in range(count)]


def retrieve_many(protocol, indices: Sequence[int]) -> List[bytes]:
    """Retrieve a batch of blocks through any PIR protocol.

    Thin front end over ``protocol.retrieve_many`` so call sites can stay
    agnostic of which protocol (and which batching strategy) is in use.
    """
    return protocol.retrieve_many(indices)
