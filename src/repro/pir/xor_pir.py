"""Two-server information-theoretic PIR (Chor, Goldreich, Kushilevitz, Sudan [4]).

The database (a list of equal-sized blocks) is replicated on two
non-colluding servers.  To fetch block ``i`` the client draws a uniformly
random subset of block indices, sends it to server 0, and sends the same
subset with index ``i`` toggled to server 1.  Each server XORs together the
blocks named by its subset; the client XORs the two answers, which cancels
every block except block ``i``.

Each individual server sees a uniformly random subset regardless of ``i``, so
it learns nothing about the retrieved index — this is the information-
theoretic privacy guarantee the tests verify.
"""

from __future__ import annotations

import secrets
from typing import List, Optional, Sequence, Set

from ..exceptions import PirError
from .protocol import PirProtocol, validate_block_database


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise PirError("cannot XOR byte strings of different lengths")
    return bytes(x ^ y for x, y in zip(a, b))


class XorPirServer:
    """One of the two replicated servers."""

    def __init__(self, blocks: Sequence[bytes]) -> None:
        self._blocks = validate_block_database(blocks)
        self.queries_seen: List[frozenset] = []

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def block_size(self) -> int:
        return len(self._blocks[0])

    def answer(self, subset: Set[int]) -> bytes:
        """XOR of the blocks whose indices are in ``subset``."""
        for index in subset:
            if index < 0 or index >= len(self._blocks):
                raise PirError(f"block index {index} out of range")
        self.queries_seen.append(frozenset(subset))
        result = bytes(self.block_size)
        for index in subset:
            result = xor_bytes(result, self._blocks[index])
        return result


class TwoServerXorPir(PirProtocol):
    """Client-side driver of the two-server XOR PIR."""

    def __init__(self, blocks: Sequence[bytes], rng: Optional[secrets.SystemRandom] = None) -> None:
        blocks = validate_block_database(blocks)
        self.server_a = XorPirServer(blocks)
        self.server_b = XorPirServer(blocks)
        self._num_blocks = len(blocks)
        self._rng = rng if rng is not None else secrets.SystemRandom()

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _random_subset(self) -> Set[int]:
        return {index for index in range(self._num_blocks) if self._rng.random() < 0.5}

    def retrieve(self, index: int) -> bytes:
        if index < 0 or index >= self._num_blocks:
            raise PirError(f"block index {index} out of range")
        subset_a = self._random_subset()
        subset_b = set(subset_a)
        if index in subset_b:
            subset_b.remove(index)
        else:
            subset_b.add(index)
        answer_a = self.server_a.answer(subset_a)
        answer_b = self.server_b.answer(subset_b)
        return xor_bytes(answer_a, answer_b)
