"""Two-server information-theoretic PIR (Chor, Goldreich, Kushilevitz, Sudan [4]).

The database (a list of equal-sized blocks) is replicated on two
non-colluding servers.  To fetch block ``i`` the client draws a uniformly
random subset of block indices, sends it to server 0, and sends the same
subset with index ``i`` toggled to server 1.  Each server XORs together the
blocks named by its subset; the client XORs the two answers, which cancels
every block except block ``i``.

Each individual server sees a uniformly random subset regardless of ``i``, so
it learns nothing about the retrieved index — this is the information-
theoretic privacy guarantee the tests verify.

Subsets are represented internally as integer bitmasks; the XOR folding
itself lives in a pluggable server kernel (:mod:`repro.pir.kernels`): the
packed numpy bit-matrix kernel when numpy is importable, the big-int fold as
the always-available reference oracle.  One immutable kernel instance is
shared by both server replicas — replication is a *trust* split, not a data
layout, so packing the database twice per protocol instance (as earlier
revisions did) only doubled resident memory.
:meth:`TwoServerXorPir.retrieve_many` amortizes the random-subset generation
over a whole batch (one ``getrandbits`` call) and, on the packed kernel,
combines both servers' answers as one array XOR with ``memoryview`` decode —
no per-answer bytes round trip.  Adversary-view logging (``queries_seen``)
is opt-in so that long benchmark runs do not accumulate an unbounded query
log.
"""

from __future__ import annotations

import secrets
from typing import Iterable, List, Optional, Sequence, Set, Union

from ..exceptions import PirError
from .batch import mask_indices, random_subset_masks
from .kernels import PackedDatabase, ServerKernel, is_kernel, make_kernel
from .protocol import PirProtocol, validate_block_database


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise PirError("cannot XOR byte strings of different lengths")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(len(a), "big")


class XorPirServer:
    """One of the two replicated servers.

    The first argument is either the block database itself or a prebuilt
    :data:`~repro.pir.kernels.ServerKernel` — the latter is how
    :class:`TwoServerXorPir` shares one packed database image between both
    replicas.  ``kernel`` names the answering kernel to build when blocks
    are given (``None`` → the :func:`~repro.pir.kernels.resolve_kernel`
    runtime selection).

    ``log_queries`` controls whether the server keeps its adversary view
    (the subsets it was asked to answer) in ``queries_seen``.  It defaults to
    off: the log grows by one entry per retrieval and is only needed by the
    privacy tests/demos that inspect what a server observed.
    """

    def __init__(
        self,
        blocks: Union[Sequence[bytes], ServerKernel],
        log_queries: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        if is_kernel(blocks):
            self.kernel: ServerKernel = blocks
        else:
            self.kernel = make_kernel(validate_block_database(blocks), kernel=kernel)
        self.log_queries = log_queries
        self.queries_seen: List[frozenset] = []

    @property
    def num_blocks(self) -> int:
        return self.kernel.num_blocks

    @property
    def block_size(self) -> int:
        return self.kernel.block_size

    @property
    def kernel_name(self) -> str:
        """Which kernel answers on this server (``"numpy"`` or ``"bigint"``)."""
        return self.kernel.name

    def answer(self, subset: Set[int]) -> bytes:
        """XOR of the blocks whose indices are in ``subset``."""
        num_blocks = self.kernel.num_blocks
        for index in subset:
            if index < 0 or index >= num_blocks:
                raise PirError(f"block index {index} out of range")
        if self.log_queries:
            self.queries_seen.append(frozenset(subset))
        return self.kernel.answer_indices(subset)

    def answer_mask(self, mask: int) -> bytes:
        """XOR of the blocks whose indices are set bits of ``mask``.

        The mask is validated against the database size (a corrupted mask
        would otherwise misdecode or index past the block list) — see
        :func:`repro.pir.batch.validate_subset_mask`.
        """
        if self.log_queries:
            self.queries_seen.append(
                frozenset(mask_indices(mask, num_blocks=self.kernel.num_blocks))
            )
        return self.kernel.answer_mask(mask)

    def answer_many(self, masks: Iterable[int]) -> List[bytes]:
        """Answers for a batch of subset masks (one round trip in a real system).

        On the packed kernel the whole batch is one vectorized table gather
        plus XOR-reduce; the big-int kernel folds mask by mask.
        """
        masks = list(masks)
        if self.log_queries:
            for mask in masks:
                self.queries_seen.append(
                    frozenset(mask_indices(mask, num_blocks=self.kernel.num_blocks))
                )
        return self.kernel.answer_many(masks)

    def answer_rows(self, masks: Sequence[int]):
        """Packed-kernel answers as a ``(B, words)`` uint64 array.

        Only available when the packed kernel serves; the batched client
        path uses it to combine both servers' answers with one array XOR.
        """
        if not isinstance(self.kernel, PackedDatabase):
            raise PirError("answer_rows requires the packed numpy kernel")
        if self.log_queries:
            for mask in masks:
                self.queries_seen.append(
                    frozenset(mask_indices(mask, num_blocks=self.kernel.num_blocks))
                )
        return self.kernel.answer_rows(masks)


class TwoServerXorPir(PirProtocol):
    """Client-side driver of the two-server XOR PIR.

    Both replicas answer off one shared immutable kernel (``self.server_a.
    kernel is self.server_b.kernel``): the database is packed exactly once
    per protocol instance.
    """

    def __init__(
        self,
        blocks: Union[Sequence[bytes], ServerKernel],
        rng: Optional[secrets.SystemRandom] = None,
        log_queries: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        if is_kernel(blocks):
            shared: ServerKernel = blocks
        else:
            shared = make_kernel(validate_block_database(blocks), kernel=kernel)
        self.server_a = XorPirServer(shared, log_queries=log_queries)
        self.server_b = XorPirServer(shared, log_queries=log_queries)
        self._num_blocks = shared.num_blocks
        self._rng = rng if rng is not None else secrets.SystemRandom()

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def kernel_name(self) -> str:
        """The (shared) server kernel answering this protocol's queries."""
        return self.server_a.kernel_name

    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self._num_blocks:
            raise PirError(f"block index {index} out of range")

    def retrieve(self, index: int) -> bytes:
        self._check_index(index)
        mask_a = self._rng.getrandbits(self._num_blocks)
        mask_b = mask_a ^ (1 << index)
        answer_a = self.server_a.answer_mask(mask_a)
        answer_b = self.server_b.answer_mask(mask_b)
        return xor_bytes(answer_a, answer_b)

    def retrieve_many(self, indices: Sequence[int]) -> List[bytes]:
        """Batched retrieval: one random draw and one answer batch per server.

        Equivalent to calling :meth:`retrieve` once per index (the property
        tests assert this), but the random subsets for the whole batch come
        from a single ``getrandbits`` call and each server answers the batch
        in one go.  When the packed kernel serves, the two answer batches
        are combined as a single array XOR and sliced out of one flat
        ``memoryview``.
        """
        indices = list(indices)
        for index in indices:
            self._check_index(index)
        if not indices:
            return []
        masks_a = random_subset_masks(self._rng, self._num_blocks, len(indices))
        masks_b = [mask ^ (1 << index) for mask, index in zip(masks_a, indices)]
        kernel = self.server_a.kernel
        if isinstance(kernel, PackedDatabase):
            rows = self.server_a.answer_rows(masks_a)
            rows = rows ^ self.server_b.answer_rows(masks_b)
            return kernel.rows_to_blocks(rows)
        answers_a = self.server_a.answer_many(masks_a)
        answers_b = self.server_b.answer_many(masks_b)
        return [xor_bytes(a, b) for a, b in zip(answers_a, answers_b)]
