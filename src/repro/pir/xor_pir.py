"""Two-server information-theoretic PIR (Chor, Goldreich, Kushilevitz, Sudan [4]).

The database (a list of equal-sized blocks) is replicated on two
non-colluding servers.  To fetch block ``i`` the client draws a uniformly
random subset of block indices, sends it to server 0, and sends the same
subset with index ``i`` toggled to server 1.  Each server XORs together the
blocks named by its subset; the client XORs the two answers, which cancels
every block except block ``i``.

Each individual server sees a uniformly random subset regardless of ``i``, so
it learns nothing about the retrieved index — this is the information-
theoretic privacy guarantee the tests verify.

Subsets are represented internally as integer bitmasks and block contents as
big integers, so XOR accumulation runs at native speed instead of
byte-at-a-time; :meth:`TwoServerXorPir.retrieve_many` additionally amortizes
the random-subset generation over a whole batch (one ``getrandbits`` call).
Adversary-view logging (``queries_seen``) is opt-in so that long benchmark
runs do not accumulate an unbounded query log.
"""

from __future__ import annotations

import secrets
from typing import Iterable, List, Optional, Sequence, Set

from ..exceptions import PirError
from .batch import mask_indices, random_subset_masks
from .protocol import PirProtocol, validate_block_database


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(a) != len(b):
        raise PirError("cannot XOR byte strings of different lengths")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(len(a), "big")


class XorPirServer:
    """One of the two replicated servers.

    ``log_queries`` controls whether the server keeps its adversary view
    (the subsets it was asked to answer) in ``queries_seen``.  It defaults to
    off: the log grows by one entry per retrieval and is only needed by the
    privacy tests/demos that inspect what a server observed.
    """

    def __init__(self, blocks: Sequence[bytes], log_queries: bool = False) -> None:
        self._blocks = validate_block_database(blocks)
        self._block_ints = [int.from_bytes(block, "big") for block in self._blocks]
        self.log_queries = log_queries
        self.queries_seen: List[frozenset] = []

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def block_size(self) -> int:
        return len(self._blocks[0])

    def answer(self, subset: Set[int]) -> bytes:
        """XOR of the blocks whose indices are in ``subset``."""
        for index in subset:
            if index < 0 or index >= len(self._blocks):
                raise PirError(f"block index {index} out of range")
        if self.log_queries:
            self.queries_seen.append(frozenset(subset))
        accumulator = 0
        block_ints = self._block_ints
        for index in subset:
            accumulator ^= block_ints[index]
        return accumulator.to_bytes(self.block_size, "big")

    def answer_mask(self, mask: int) -> bytes:
        """XOR of the blocks whose indices are set bits of ``mask``.

        The mask is validated against the database size (a corrupted mask
        would otherwise misdecode or index past the block list) — see
        :func:`repro.pir.batch.mask_indices`.
        """
        indices = mask_indices(mask, num_blocks=len(self._blocks))
        if self.log_queries:
            self.queries_seen.append(frozenset(indices))
        accumulator = 0
        block_ints = self._block_ints
        for index in indices:
            accumulator ^= block_ints[index]
        return accumulator.to_bytes(self.block_size, "big")

    def answer_many(self, masks: Iterable[int]) -> List[bytes]:
        """Answers for a batch of subset masks (one round trip in a real system)."""
        return [self.answer_mask(mask) for mask in masks]


class TwoServerXorPir(PirProtocol):
    """Client-side driver of the two-server XOR PIR."""

    def __init__(
        self,
        blocks: Sequence[bytes],
        rng: Optional[secrets.SystemRandom] = None,
        log_queries: bool = False,
    ) -> None:
        blocks = validate_block_database(blocks)
        self.server_a = XorPirServer(blocks, log_queries=log_queries)
        self.server_b = XorPirServer(blocks, log_queries=log_queries)
        self._num_blocks = len(blocks)
        self._rng = rng if rng is not None else secrets.SystemRandom()

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _random_subset(self) -> Set[int]:
        return set(mask_indices(self._rng.getrandbits(self._num_blocks)))

    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self._num_blocks:
            raise PirError(f"block index {index} out of range")

    def retrieve(self, index: int) -> bytes:
        self._check_index(index)
        mask_a = self._rng.getrandbits(self._num_blocks)
        mask_b = mask_a ^ (1 << index)
        answer_a = self.server_a.answer_mask(mask_a)
        answer_b = self.server_b.answer_mask(mask_b)
        return xor_bytes(answer_a, answer_b)

    def retrieve_many(self, indices: Sequence[int]) -> List[bytes]:
        """Batched retrieval: one random draw and one answer batch per server.

        Equivalent to calling :meth:`retrieve` once per index (the property
        tests assert this), but the random subsets for the whole batch come
        from a single ``getrandbits`` call and each server answers the batch
        in one go.
        """
        indices = list(indices)
        for index in indices:
            self._check_index(index)
        masks_a = random_subset_masks(self._rng, self._num_blocks, len(indices))
        masks_b = [mask ^ (1 << index) for mask, index in zip(masks_a, indices)]
        answers_a = self.server_a.answer_many(masks_a)
        answers_b = self.server_b.answer_many(masks_b)
        return [xor_bytes(a, b) for a, b in zip(answers_a, answers_b)]
