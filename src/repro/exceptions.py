"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid node/edge references."""


class NoPathError(GraphError):
    """Raised when no path exists between the requested source and target."""

    def __init__(self, source, target):
        super().__init__(f"no path from node {source!r} to node {target!r}")
        self.source = source
        self.target = target


class StorageError(ReproError):
    """Raised for page/record encoding problems or file-format violations."""


class PageOverflowError(StorageError):
    """Raised when a record does not fit into a single disk page."""


class PirError(ReproError):
    """Raised for PIR protocol failures."""


class FileSizeLimitError(PirError):
    """Raised when a file exceeds the maximum size supported by the PIR interface."""

    def __init__(self, file_name: str, size_bytes: int, limit_bytes: int):
        super().__init__(
            f"file {file_name!r} is {size_bytes} bytes which exceeds the "
            f"PIR interface limit of {limit_bytes} bytes"
        )
        self.file_name = file_name
        self.size_bytes = size_bytes
        self.limit_bytes = limit_bytes


class PartitionError(ReproError):
    """Raised when network partitioning cannot satisfy its constraints."""


class SchemeError(ReproError):
    """Raised for scheme construction or query-processing failures."""


class PlanViolationError(SchemeError):
    """Raised when query processing would deviate from the fixed query plan.

    A plan violation is a privacy bug: it would let the adversary distinguish
    queries by their access pattern, so it is always an error rather than a
    silent fallback.
    """
