"""Page files: named, page-granular files hosted by the LBS.

The paper's database consists of a small number of files (header ``Fh``,
look-up ``Fl``, network index ``Fi``, region data ``Fd``); each of them is a
:class:`PageFile` here.  Page files are stored in memory (the paper notes that
its framework applies equally to disk, SSD or RAM storage) but provide exact
byte accounting, which is what the evaluation measures.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..exceptions import StorageError
from .page import DEFAULT_PAGE_SIZE, Page


class PageFile:
    """A named sequence of fixed-size pages."""

    def __init__(self, name: str, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if not name:
            raise StorageError("a page file needs a non-empty name")
        self.name = name
        self.page_size = page_size
        self._pages: List[Page] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def new_page(self) -> Page:
        """Append and return a fresh, empty page."""
        page = Page(self.page_size)
        self._pages.append(page)
        return page

    def append_page(self, page: Page) -> int:
        """Append an existing page; returns its page number."""
        if page.page_size != self.page_size:
            raise StorageError(
                f"page size {page.page_size} does not match file page size {self.page_size}"
            )
        self._pages.append(page)
        return len(self._pages) - 1

    def append_record_packed(self, data: bytes) -> int:
        """Append a record into the last page if it fits, else into a new page.

        Returns the page number holding the record.  Records larger than a
        page are rejected — callers that need multi-page records handle the
        spanning themselves (the ``Fi`` builders do).
        """
        if len(data) > self.page_size:
            raise StorageError(
                f"record of {len(data)} bytes exceeds the page size {self.page_size}"
            )
        if not self._pages or not self._pages[-1].fits(data):
            self.new_page()
        self._pages[-1].append(data)
        return len(self._pages) - 1

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Physical file size (pages are padded to the page size)."""
        return self.num_pages * self.page_size

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes across all pages."""
        return sum(page.used_bytes for page in self._pages)

    @property
    def utilization(self) -> float:
        """Average fraction of each page occupied by payload."""
        if not self._pages:
            return 0.0
        return self.payload_bytes / self.size_bytes

    def page(self, page_number: int) -> Page:
        """The page object at ``page_number`` (0-based)."""
        if page_number < 0 or page_number >= len(self._pages):
            raise StorageError(
                f"page {page_number} out of range for file {self.name!r} "
                f"with {len(self._pages)} pages"
            )
        return self._pages[page_number]

    def read_page(self, page_number: int) -> bytes:
        """The padded page image at ``page_number``."""
        return self.page(page_number).to_bytes()

    def pages(self) -> Iterator[Page]:
        return iter(self._pages)

    def to_bytes(self) -> bytes:
        """The whole file image."""
        return b"".join(page.to_bytes() for page in self._pages)

    def __len__(self) -> int:
        return self.num_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageFile(name={self.name!r}, pages={self.num_pages}, "
            f"size={self.size_bytes} bytes)"
        )
