"""Page files: named, page-granular files hosted by the LBS.

The paper's database consists of a small number of files (header ``Fh``,
look-up ``Fl``, network index ``Fi``, region data ``Fd``); each of them is a
:class:`PageFile` here.  A page file owns a pluggable
:class:`~repro.storage.stores.PageStore` backend (memory, mmap or SQLite —
the paper notes its framework applies equally to disk, SSD or RAM storage)
and streams pages into it as they *seal*: only the page currently being
filled (the *tail*) lives in process memory as a mutable
:class:`~repro.storage.page.Page`; every earlier page is a sealed record in
the backend store.  Builders therefore construct arbitrarily large files
with O(1) resident pages, while byte accounting stays exact.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from ..exceptions import PageOverflowError, StorageError
from .page import DEFAULT_PAGE_SIZE, Page
from .stores import MemoryPageStore, PageStore


class PageFile:
    """A named sequence of fixed-size pages over a pluggable page store."""

    def __init__(
        self,
        name: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        store: Optional[PageStore] = None,
    ) -> None:
        if not name:
            raise StorageError("a page file needs a non-empty name")
        self.name = name
        self.page_size = page_size
        if store is not None and store.page_size != page_size:
            raise StorageError(
                f"store page size {store.page_size} does not match "
                f"file page size {page_size}"
            )
        #: Sealed-page backend (bare page files default to in-memory storage;
        #: databases pick the backend — see :class:`~repro.storage.database.
        #: Database`).
        self.store: PageStore = store if store is not None else MemoryPageStore(page_size)
        #: The mutable page currently being filled, if any.
        self._tail: Optional[Page] = None
        #: Store slot of a re-opened tail (None while the tail is brand new).
        self._tail_number: Optional[int] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def new_page(self) -> Page:
        """Append and return a fresh, empty page (sealing the previous tail)."""
        self._seal_tail()
        self._tail = Page(self.page_size)
        return self._tail

    def append_page(self, page: Page) -> int:
        """Append an existing page (sealed immediately); returns its page number."""
        if page.page_size != self.page_size:
            raise StorageError(
                f"page size {page.page_size} does not match file page size {self.page_size}"
            )
        self._seal_tail()
        return self.store.append_page(page.payload())

    def append_record_packed(self, data: bytes) -> int:
        """Append a record into the last page if it fits, else into a new page.

        Returns the page number holding the record.  Records larger than a
        page are rejected — callers that need multi-page records handle the
        spanning themselves (the ``Fi`` builders do).
        """
        if len(data) > self.page_size:
            raise PageOverflowError(
                f"record of {len(data)} bytes does not fit a single page of "
                f"file {self.name!r} (page size {self.page_size} bytes)"
            )
        if self._tail is None:
            last = self.store.num_pages - 1
            if last >= 0 and self.store.page_used(last) + len(data) <= self.page_size:
                # re-open the sealed last page: it still has room
                self._tail = Page.from_bytes(self.store.get_payload(last), self.page_size)
                self._tail_number = last
            else:
                self.new_page()
        elif not self._tail.fits(data):
            self.new_page()
        self._tail.append(data)
        return self._tail_page_number()

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def _tail_page_number(self) -> int:
        """The page number the current tail occupies (requires a tail)."""
        if self._tail_number is not None:
            return self._tail_number
        return self.store.num_pages

    def _seal_tail(self) -> None:
        """Write the tail page (if any) to the store."""
        if self._tail is None:
            return
        if self._tail_number is None:
            self.store.append_page(self._tail.payload())
        else:
            self.store.put_page(self._tail_number, self._tail.payload())
        self._tail = None
        self._tail_number = None

    @property
    def num_pages(self) -> int:
        count = self.store.num_pages
        if self._tail is not None and self._tail_number is None:
            count += 1
        return count

    @property
    def size_bytes(self) -> int:
        """Physical file size (pages are padded to the page size)."""
        return self.num_pages * self.page_size

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes across all pages."""
        total = self.store.payload_bytes
        if self._tail is not None:
            total += self._tail.used_bytes
            if self._tail_number is not None:
                # the store still holds the stale sealed copy of the tail
                total -= self.store.page_used(self._tail_number)
        return total

    @property
    def utilization(self) -> float:
        """Average fraction of each page occupied by payload."""
        if not self.num_pages:
            return 0.0
        return self.payload_bytes / self.size_bytes

    def _check_page_number(self, page_number: int) -> None:
        if page_number < 0 or page_number >= self.num_pages:
            raise StorageError(
                f"page {page_number} out of range for file {self.name!r} "
                f"with {self.num_pages} pages"
            )

    def page(self, page_number: int) -> Page:
        """The page at ``page_number`` (0-based).

        The live tail page is returned directly; sealed pages come back as
        reconstructed snapshots — mutating a snapshot does not write through
        to the store (use the builder APIs to write).
        """
        self._check_page_number(page_number)
        if self._tail is not None and page_number == self._tail_page_number():
            return self._tail
        return Page.from_bytes(self.store.get_payload(page_number), self.page_size)

    def page_used_bytes(self, page_number: int) -> int:
        """Payload bytes of one page without materialising it."""
        self._check_page_number(page_number)
        if self._tail is not None and page_number == self._tail_page_number():
            return self._tail.used_bytes
        return self.store.page_used(page_number)

    def read_page(self, page_number: int) -> bytes:
        """The padded page image at ``page_number``."""
        self._check_page_number(page_number)
        if self._tail is not None and page_number == self._tail_page_number():
            return self._tail.to_bytes()
        return self.store.get_page(page_number)

    def read_pages_batch(self, page_numbers: Sequence[int]) -> List[bytes]:
        """Padded page images for a batch of pages (one store round trip)."""
        for page_number in page_numbers:
            self._check_page_number(page_number)
        tail_number = self._tail_page_number() if self._tail is not None else None
        if tail_number is not None and any(n == tail_number for n in page_numbers):
            return [self.read_page(n) for n in page_numbers]
        return self.store.get_pages_batch(page_numbers)

    def resolve_page(self, page_number: int, resolver: Callable[[bytes], object]) -> object:
        """Store-memoised ``resolver(page image)`` for one sealed page.

        The resolved value is cached with the bytes in the page store (see
        :meth:`~repro.storage.stores.PageStore.resolve`), so per-page decode
        products — index-entry resolution above all — live at the storage
        layer instead of in byte-keyed client caches.  A live tail page is
        resolved directly without caching (it is still mutable).
        """
        self._check_page_number(page_number)
        if self._tail is not None and page_number == self._tail_page_number():
            return resolver(self._tail.to_bytes())
        return self.store.resolve(page_number, resolver)

    def pages(self) -> Iterator[Page]:
        for page_number in range(self.num_pages):
            yield self.page(page_number)

    def to_bytes(self) -> bytes:
        """The whole file image."""
        return b"".join(self.read_page(n) for n in range(self.num_pages))

    def flush(self) -> None:
        """Seal the tail page and push buffered pages to the store medium."""
        self._seal_tail()
        self.store.flush()

    def close(self) -> None:
        """Flush and release the backing store."""
        self._seal_tail()
        self.store.close()

    def __len__(self) -> int:
        return self.num_pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageFile(name={self.name!r}, pages={self.num_pages}, "
            f"size={self.size_bytes} bytes, store={self.store.backend})"
        )
