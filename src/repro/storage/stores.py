"""Pluggable page-store backends: where a page file's sealed pages live.

The paper's architecture serves fixed-size pages through the PIR interface
and notes that the framework applies equally to disk, SSD or RAM storage.
This module makes that storage decision explicit: a :class:`PageStore` is the
append-mostly container behind every :class:`~repro.storage.pagefile.PageFile`,
and three interchangeable backends implement it:

* :class:`MemoryPageStore` — pages in Python lists, the historical behaviour
  and the default;
* :class:`MmapPageStore` — one fixed-record binary file per page file
  (``<name>.mpages``): a small header followed by ``4 + page_size`` byte
  records, appended with buffered writes and read back through a shared
  ``mmap`` (``get_page_view`` returns a zero-copy :class:`memoryview`);
* :class:`SqlitePageStore` — one SQLite database per page file
  (``<name>.sqlite``) with a ``pages(page, used, data)`` table, built with
  batched ``executemany`` inserts and served by indexed primary-key lookups.

The mmap and SQLite backends keep sealed pages *out of process memory*, so a
database can grow far beyond RAM while the builders stream pages into it.
Both persist across process restarts: reopen with
``open_page_store(..., create=False)`` and the store serves bit-identical
pages (property-tested).

Backend selection flows through three increasingly general seams:

1. explicit arguments (``Database(store_backend="sqlite", store_dir=...)``);
2. a context scope (:func:`store_backend_scope`) used by the CLI and tests to
   redirect every database built inside the block;
3. the ``REPRO_STORE_BACKEND`` environment variable (with optional
   ``REPRO_STORE_DIR``), which the CI matrix uses to run the whole test
   suite against each backend.

Stores also host the per-page *resolution cache* (:meth:`PageStore.resolve`):
a memoised ``resolver(page_image)`` keyed by page number, so decoded
artifacts — most importantly the network-index entries of
:mod:`repro.schemes.index_entries` — live with the bytes instead of in
byte-keyed client caches that would pin every page image in RAM.
"""

from __future__ import annotations

import abc
import mmap
import os
import sqlite3
import struct
import tempfile
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import StorageError

#: Backends selectable by name through every seam (CLI, env, scope, kwargs).
STORE_BACKENDS = ("memory", "mmap", "sqlite")

#: Environment variable naming the default backend (CI matrix uses this).
ENV_STORE_BACKEND = "REPRO_STORE_BACKEND"
#: Environment variable naming the default store directory.
ENV_STORE_DIR = "REPRO_STORE_DIR"

PathLike = Union[str, Path]

#: Context-scoped ``(backend, directory)`` default installed by
#: :func:`store_backend_scope` (None = fall back to the environment).
_store_options_var: ContextVar[Optional[Tuple[str, Optional[PathLike]]]] = ContextVar(
    "repro_store_options", default=None
)


def _normalize_backend(backend: str) -> str:
    backend = str(backend).strip().lower()
    if backend not in STORE_BACKENDS:
        raise StorageError(
            f"unknown page-store backend {backend!r}; expected one of {STORE_BACKENDS}"
        )
    return backend


@contextmanager
def store_backend_scope(
    backend: str, directory: Optional[PathLike] = None
) -> Iterator[None]:
    """Make ``backend`` the default page-store backend inside the block.

    Every :class:`~repro.storage.database.Database` created in the dynamic
    extent of the block (scheme builders included) places its page files on
    the given backend — the seam the CLI's ``--store``/``--store-dir`` flags
    use so schemes stream their build straight into an out-of-core store.
    """
    token = _store_options_var.set((_normalize_backend(backend), directory))
    try:
        yield
    finally:
        _store_options_var.reset(token)


def resolve_store_options(
    backend: Optional[str] = None, directory: Optional[PathLike] = None
) -> Tuple[str, Optional[PathLike]]:
    """The effective ``(backend, directory)`` for a new database.

    Explicit arguments win, then an active :func:`store_backend_scope`, then
    the ``REPRO_STORE_BACKEND``/``REPRO_STORE_DIR`` environment, then the
    in-memory default.
    """
    scoped = _store_options_var.get()
    if backend is None:
        if scoped is not None:
            backend = scoped[0]
        else:
            backend = os.environ.get(ENV_STORE_BACKEND) or "memory"
    backend = _normalize_backend(backend)
    if directory is None:
        if scoped is not None and scoped[1] is not None:
            directory = scoped[1]
        else:
            directory = os.environ.get(ENV_STORE_DIR) or None
    return backend, directory


# ---------------------------------------------------------------------- #
# the protocol
# ---------------------------------------------------------------------- #
class PageStore(abc.ABC):
    """Backend-neutral page container: sealed, fixed-size pages by number.

    Pages are stored as ``(payload, used)`` records — the payload is the
    written prefix, ``used == len(payload)``, and :meth:`get_page` pads the
    image to ``page_size`` exactly like :meth:`~repro.storage.page.Page.
    to_bytes`.  Appends are cheap and may be buffered; every read method
    observes all prior appends (stores flush internally as needed).
    """

    #: Backend name, matching the :data:`STORE_BACKENDS` entry.
    backend: str = "abstract"

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise StorageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        #: page number -> {resolver: resolved value} (see :meth:`resolve`).
        self._resolve_cache: Dict[int, Dict[Callable[[bytes], object], object]] = {}

    # ------------------------------------------------------------------ #
    # required backend primitives
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def num_pages(self) -> int:
        """Number of pages stored."""

    @abc.abstractmethod
    def get_payload(self, page_number: int) -> bytes:
        """The unpadded payload of one page."""

    @abc.abstractmethod
    def page_used(self, page_number: int) -> int:
        """Payload bytes of one page (``len(get_payload(n))`` without the read)."""

    @abc.abstractmethod
    def _append(self, payload: bytes) -> None:
        """Backend write of one new page record."""

    @abc.abstractmethod
    def _overwrite(self, page_number: int, payload: bytes) -> None:
        """Backend rewrite of an existing page record."""

    # ------------------------------------------------------------------ #
    # shared protocol surface
    # ------------------------------------------------------------------ #
    def get_page(self, page_number: int) -> bytes:
        """The padded ``page_size``-byte page image."""
        return self._pad(self.get_payload(page_number))

    def get_pages_batch(self, page_numbers: Sequence[int]) -> List[bytes]:
        """Padded images for a batch of pages (one backend round trip where
        the backend supports it)."""
        return [self.get_page(page_number) for page_number in page_numbers]

    def append_page(self, payload: bytes) -> int:
        """Append one page; returns its page number."""
        payload = bytes(payload)
        if len(payload) > self.page_size:
            raise StorageError(
                f"page payload of {len(payload)} bytes exceeds the "
                f"page size {self.page_size}"
            )
        self._append(payload)
        return self.num_pages - 1

    def put_page(self, page_number: int, payload: bytes) -> None:
        """Overwrite an existing page (used when a sealed tail is re-opened
        to pack another record into its free space)."""
        self._check_range(page_number)
        payload = bytes(payload)
        if len(payload) > self.page_size:
            raise StorageError(
                f"page payload of {len(payload)} bytes exceeds the "
                f"page size {self.page_size}"
            )
        self._overwrite(page_number, payload)
        self._resolve_cache.pop(page_number, None)

    def iter_pages(self) -> Iterator[bytes]:
        """Iterate the padded page images in page order."""
        for page_number in range(self.num_pages):
            yield self.get_page(page_number)

    def iter_payloads(self) -> Iterator[bytes]:
        """Iterate the unpadded payloads in page order."""
        for page_number in range(self.num_pages):
            yield self.get_payload(page_number)

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes across all pages."""
        return sum(self.page_used(n) for n in range(self.num_pages))

    def resolve(self, page_number: int, resolver: Callable[[bytes], object]) -> object:
        """Memoised ``resolver(page_image)`` for one page.

        The cache is keyed by ``(page_number, resolver)`` and lives with the
        store, so repeated resolution of the same page (index-entry decoding
        is the flagship case) does not re-read or re-decode the bytes; it is
        invalidated when the page is overwritten.
        """
        per_page = self._resolve_cache.get(page_number)
        if per_page is not None and resolver in per_page:
            return per_page[resolver]
        value = resolver(self.get_page(page_number))
        self._resolve_cache.setdefault(page_number, {})[resolver] = value
        return value

    def flush(self) -> None:
        """Push buffered appends to the backend medium."""

    def close(self) -> None:
        """Flush and release backend resources (idempotent)."""
        self.flush()

    #: Where the store's bytes physically live (None for in-memory stores).
    path: Optional[Path] = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _pad(self, payload: bytes) -> bytes:
        return payload + b"\x00" * (self.page_size - len(payload))

    def _check_range(self, page_number: int) -> None:
        if page_number < 0 or page_number >= self.num_pages:
            raise StorageError(
                f"page {page_number} out of range for a store with "
                f"{self.num_pages} pages"
            )


# ---------------------------------------------------------------------- #
# memory backend
# ---------------------------------------------------------------------- #
class MemoryPageStore(PageStore):
    """Pages in a Python list — the historical in-RAM behaviour."""

    backend = "memory"

    def __init__(self, page_size: int) -> None:
        super().__init__(page_size)
        self._payloads: List[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._payloads)

    def get_payload(self, page_number: int) -> bytes:
        self._check_range(page_number)
        return self._payloads[page_number]

    def page_used(self, page_number: int) -> int:
        self._check_range(page_number)
        return len(self._payloads[page_number])

    @property
    def payload_bytes(self) -> int:
        return sum(len(payload) for payload in self._payloads)

    def _append(self, payload: bytes) -> None:
        self._payloads.append(payload)

    def _overwrite(self, page_number: int, payload: bytes) -> None:
        self._payloads[page_number] = payload


# ---------------------------------------------------------------------- #
# mmap backend
# ---------------------------------------------------------------------- #
class MmapPageStore(PageStore):
    """One fixed-record binary file per page file, read through ``mmap``.

    Layout: an 8-byte header (magic ``RPS1`` + little-endian ``uint32`` page
    size) followed by one record per page — a ``uint32`` payload length and
    the zero-padded ``page_size``-byte page image.  Appends buffer in memory
    and flush with one sequential write; reads go through a shared read-only
    memory map, so resident memory stays bounded by the OS page cache, not
    the database size.  :meth:`get_page_view` exposes the zero-copy
    :class:`memoryview` of a page for callers that only need buffer access.
    """

    backend = "mmap"

    MAGIC = b"RPS1"
    _HEADER = struct.Struct("<4sI")
    _USED = struct.Struct("<I")
    #: Buffered appends are flushed in batches of this many pages.
    FLUSH_EVERY = 1024

    def __init__(
        self, path: PathLike, page_size: Optional[int] = None, create: bool = True
    ) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._pending: List[bytes] = []
        self._mm: Optional[mmap.mmap] = None
        self._closed = False
        if create:
            if page_size is None:
                raise StorageError("creating an mmap page store requires a page size")
            super().__init__(page_size)
            self._file = open(self.path, "w+b")
            self._file.write(self._HEADER.pack(self.MAGIC, page_size))
            self._file.flush()
            self._num_flushed = 0
            self._payload_total: Optional[int] = 0
        else:
            if not self.path.exists():
                raise StorageError(f"no mmap page store at {self.path}")
            self._file = open(self.path, "r+b")
            header = self._file.read(self._HEADER.size)
            if len(header) != self._HEADER.size:
                raise StorageError(f"truncated mmap page store header in {self.path}")
            magic, stored_size = self._HEADER.unpack(header)
            if magic != self.MAGIC:
                raise StorageError(f"{self.path} is not an mmap page store")
            if page_size is not None and page_size != stored_size:
                raise StorageError(
                    f"mmap page store {self.path} has page size {stored_size}, "
                    f"expected {page_size}"
                )
            super().__init__(stored_size)
            body = self.path.stat().st_size - self._HEADER.size
            if body % self._record_size:
                raise StorageError(f"mmap page store {self.path} is corrupt")
            self._num_flushed = body // self._record_size
            # computed lazily on first use: an eager scan would fault every
            # record header into memory, making reopening a database cost
            # RSS proportional to its size
            self._payload_total = None

    @property
    def _record_size(self) -> int:
        return self._USED.size + self.page_size

    def _offset(self, page_number: int) -> int:
        return self._HEADER.size + page_number * self._record_size

    @property
    def num_pages(self) -> int:
        return self._num_flushed + len(self._pending)

    @property
    def payload_bytes(self) -> int:
        total = self._payload_total
        if total is None:
            self._ensure_flushed()
            total = sum(self._used_at(n) for n in range(self._num_flushed))
            self._payload_total = total
            self._drop_residency()
        return total

    def _drop_residency(self) -> None:
        """Tell the kernel the mapped pages are disposable again.

        A full-file scan (payload accounting, ``databases_equal``) faults the
        whole map resident; dropping it keeps RSS bounded by the working set
        instead of the database size.  Purely advisory — pages re-fault from
        the page cache or disk on the next read.
        """
        if self._mm is not None and hasattr(mmap, "MADV_DONTNEED"):
            try:
                self._mm.madvise(mmap.MADV_DONTNEED)
            except OSError:  # pragma: no cover - kernel-dependent
                pass

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def _mapping(self) -> mmap.mmap:
        if self._mm is None:
            self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        return self._mm

    def _ensure_flushed(self) -> None:
        if self._pending:
            self.flush()

    def _used_at(self, page_number: int) -> int:
        return int(
            self._USED.unpack_from(self._mapping(), self._offset(page_number))[0]
        )

    def get_payload(self, page_number: int) -> bytes:
        self._check_range(page_number)
        self._ensure_flushed()
        used = self._used_at(page_number)
        start = self._offset(page_number) + self._USED.size
        return bytes(self._mapping()[start:start + used])

    def get_page(self, page_number: int) -> bytes:
        self._check_range(page_number)
        self._ensure_flushed()
        start = self._offset(page_number) + self._USED.size
        return bytes(self._mapping()[start:start + self.page_size])

    def get_page_view(self, page_number: int) -> memoryview:
        """Zero-copy :class:`memoryview` of the padded page image."""
        self._check_range(page_number)
        self._ensure_flushed()
        start = self._offset(page_number) + self._USED.size
        return memoryview(self._mapping())[start:start + self.page_size]

    def get_pages_batch(self, page_numbers: Sequence[int]) -> List[bytes]:
        for page_number in page_numbers:
            self._check_range(page_number)
        self._ensure_flushed()
        mm = self._mapping()
        view = memoryview(mm)
        record, used_size = self._record_size, self._USED.size
        header = self._HEADER.size
        return [
            bytes(view[header + n * record + used_size:
                       header + n * record + used_size + self.page_size])
            for n in page_numbers
        ]

    def page_used(self, page_number: int) -> int:
        self._check_range(page_number)
        self._ensure_flushed()
        return self._used_at(page_number)

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def _append(self, payload: bytes) -> None:
        self._pending.append(payload)
        if self._payload_total is not None:
            self._payload_total += len(payload)
        if len(self._pending) >= self.FLUSH_EVERY:
            self.flush()

    def _overwrite(self, page_number: int, payload: bytes) -> None:
        self._ensure_flushed()
        if self._payload_total is not None:
            self._payload_total += len(payload) - self._used_at(page_number)
        self._file.seek(self._offset(page_number))
        self._file.write(self._USED.pack(len(payload)))
        self._file.write(self._pad(payload))
        self._file.flush()

    def flush(self) -> None:
        with self._lock:
            if not self._pending:
                return
            pending, self._pending = self._pending, []
            self._file.seek(0, os.SEEK_END)
            self._file.write(
                b"".join(
                    self._USED.pack(len(payload)) + self._pad(payload)
                    for payload in pending
                )
            )
            self._file.flush()
            self._num_flushed += len(pending)
            # the old map does not cover the new records; remap lazily
            if self._mm is not None:
                self._mm.close()
                self._mm = None

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        self._file.close()
        self._closed = True


# ---------------------------------------------------------------------- #
# SQLite backend
# ---------------------------------------------------------------------- #
class SqlitePageStore(PageStore):
    """One SQLite database per page file with an indexed ``pages`` table.

    Appends buffer in memory and land in batched ``executemany`` inserts;
    lookups are primary-key point (or ``IN``-list) queries.  The connection
    is shared across the engine's worker threads behind a lock — reads are
    short, so serialising them costs less than per-thread connections.
    """

    backend = "sqlite"

    #: Buffered appends are flushed in batches of this many pages.
    FLUSH_EVERY = 1024
    #: SQLite bind-variable budget per ``IN``-list batch query.
    _IN_BATCH = 500

    def __init__(
        self, path: PathLike, page_size: Optional[int] = None, create: bool = True
    ) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._pending: List[Tuple[int, int, bytes]] = []
        self._closed = False
        if not create and not self.path.exists():
            raise StorageError(f"no SQLite page store at {self.path}")
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        if create:
            if page_size is None:
                raise StorageError("creating a SQLite page store requires a page size")
            super().__init__(page_size)
            with self._conn:
                self._conn.execute("DROP TABLE IF EXISTS pages")
                self._conn.execute("DROP TABLE IF EXISTS meta")
                self._conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value INTEGER NOT NULL)"
                )
                self._conn.execute(
                    "CREATE TABLE pages ("
                    "page INTEGER PRIMARY KEY, "
                    "used INTEGER NOT NULL, "
                    "data BLOB NOT NULL)"
                )
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('page_size', ?)",
                    (page_size,),
                )
            self._count = 0
        else:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'page_size'"
            ).fetchone()
            if row is None:
                raise StorageError(f"{self.path} is not a page-store database")
            stored_size = int(row[0])
            if page_size is not None and page_size != stored_size:
                raise StorageError(
                    f"SQLite page store {self.path} has page size {stored_size}, "
                    f"expected {page_size}"
                )
            super().__init__(stored_size)
            self._count = int(
                self._conn.execute("SELECT COUNT(*) FROM pages").fetchone()[0]
            )

    @property
    def num_pages(self) -> int:
        return self._count

    def _ensure_flushed(self) -> None:
        if self._pending:
            self.flush()

    def get_payload(self, page_number: int) -> bytes:
        self._check_range(page_number)
        with self._lock:
            self._ensure_flushed()
            row = self._conn.execute(
                "SELECT data FROM pages WHERE page = ?", (page_number,)
            ).fetchone()
        if row is None:
            raise StorageError(f"page {page_number} missing from {self.path}")
        return bytes(row[0])

    def page_used(self, page_number: int) -> int:
        self._check_range(page_number)
        with self._lock:
            self._ensure_flushed()
            row = self._conn.execute(
                "SELECT used FROM pages WHERE page = ?", (page_number,)
            ).fetchone()
        if row is None:
            raise StorageError(f"page {page_number} missing from {self.path}")
        return int(row[0])

    def get_pages_batch(self, page_numbers: Sequence[int]) -> List[bytes]:
        for page_number in page_numbers:
            self._check_range(page_number)
        wanted = sorted(set(page_numbers))
        by_number: Dict[int, bytes] = {}
        with self._lock:
            self._ensure_flushed()
            for start in range(0, len(wanted), self._IN_BATCH):
                chunk = wanted[start:start + self._IN_BATCH]
                placeholders = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT page, data FROM pages WHERE page IN ({placeholders})",
                    chunk,
                ).fetchall()
                for page_number, data in rows:
                    by_number[int(page_number)] = bytes(data)
        missing = [n for n in wanted if n not in by_number]
        if missing:
            raise StorageError(f"pages {missing} missing from {self.path}")
        return [self._pad(by_number[page_number]) for page_number in page_numbers]

    @property
    def payload_bytes(self) -> int:
        with self._lock:
            self._ensure_flushed()
            total = self._conn.execute("SELECT COALESCE(SUM(used), 0) FROM pages").fetchone()[0]
        return int(total)

    def _append(self, payload: bytes) -> None:
        self._pending.append((self._count, len(payload), payload))
        self._count += 1
        if len(self._pending) >= self.FLUSH_EVERY:
            self.flush()

    def _overwrite(self, page_number: int, payload: bytes) -> None:
        with self._lock:
            self._ensure_flushed()
            with self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO pages (page, used, data) VALUES (?, ?, ?)",
                    (page_number, len(payload), payload),
                )

    def flush(self) -> None:
        with self._lock:
            if not self._pending:
                return
            pending, self._pending = self._pending, []
            with self._conn:
                self._conn.executemany(
                    "INSERT INTO pages (page, used, data) VALUES (?, ?, ?)", pending
                )

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True


# ---------------------------------------------------------------------- #
# factory
# ---------------------------------------------------------------------- #
def store_file_name(backend: str, name: str) -> str:
    """The on-disk file name a named page file uses under ``backend``."""
    backend = _normalize_backend(backend)
    if backend == "mmap":
        return f"{name}.mpages"
    if backend == "sqlite":
        return f"{name}.sqlite"
    raise StorageError(f"backend {backend!r} stores no files")


def open_page_store(
    backend: str,
    name: str,
    page_size: Optional[int] = None,
    directory: Optional[PathLike] = None,
    create: bool = True,
) -> PageStore:
    """Open (or create) the page store for a named page file.

    ``directory`` is required for the on-disk backends; ``create=False``
    reopens an existing store (page size read back from the medium), which is
    how a persisted database survives a process restart.
    """
    backend = _normalize_backend(backend)
    if backend == "memory":
        if not create:
            raise StorageError("an in-memory page store cannot be reopened")
        if page_size is None:
            raise StorageError("creating a memory page store requires a page size")
        return MemoryPageStore(page_size)
    if directory is None:
        raise StorageError(f"the {backend!r} page-store backend needs a directory")
    directory = Path(directory)
    if create:
        directory.mkdir(parents=True, exist_ok=True)
    path = directory / store_file_name(backend, name)
    if backend == "mmap":
        return MmapPageStore(path, page_size=page_size, create=create)
    return SqlitePageStore(path, page_size=page_size, create=create)


def temporary_store_directory() -> tempfile.TemporaryDirectory:
    """A self-cleaning directory for a database's anonymous on-disk stores."""
    return tempfile.TemporaryDirectory(prefix="repro-pagestore-")
