"""Binary record codecs used when laying data out on disk pages.

The encodings are intentionally simple and compact:

* unsigned 32-bit integers for node/region identifiers and page numbers,
* IEEE-754 32-bit floats for coordinates and edge weights,
* LEB128-style varints for small counts (list lengths, delta sizes).

:class:`RecordWriter` and :class:`RecordReader` wrap these primitives with a
sequential interface so that file builders and the querying client agree on
layouts by construction.
"""

from __future__ import annotations

import struct
from typing import List

from ..exceptions import StorageError

UINT32 = struct.Struct("<I")
FLOAT32 = struct.Struct("<f")
FLOAT64 = struct.Struct("<d")
UINT16 = struct.Struct("<H")
#: Packed (uint32, float32) pair — one adjacency-list element.
PAIR_UINT32_FLOAT32 = struct.Struct("<If")
#: Packed (uint32, uint32, float32) triple — one weighted edge.
TRIPLE_UINT32_UINT32_FLOAT32 = struct.Struct("<IIf")


def encode_uint32(value: int) -> bytes:
    if value < 0 or value > 0xFFFFFFFF:
        raise StorageError(f"value {value} out of range for uint32")
    return UINT32.pack(value)


def decode_uint32(data: bytes, offset: int = 0) -> int:
    return UINT32.unpack_from(data, offset)[0]


def encode_uint16(value: int) -> bytes:
    if value < 0 or value > 0xFFFF:
        raise StorageError(f"value {value} out of range for uint16")
    return UINT16.pack(value)


def encode_float32(value: float) -> bytes:
    return FLOAT32.pack(value)


def decode_float32(data: bytes, offset: int = 0) -> float:
    return FLOAT32.unpack_from(data, offset)[0]


def encode_float64(value: float) -> bytes:
    return FLOAT64.pack(value)


def decode_float64(data: bytes, offset: int = 0) -> float:
    return FLOAT64.unpack_from(data, offset)[0]


def encode_varint(value: int) -> bytes:
    """LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise StorageError("varint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple:
    """Decode a varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise StorageError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


class RecordWriter:
    """Sequential binary writer."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def uint32(self, value: int) -> "RecordWriter":
        self._parts.append(encode_uint32(value))
        return self

    def uint16(self, value: int) -> "RecordWriter":
        self._parts.append(encode_uint16(value))
        return self

    def float32(self, value: float) -> "RecordWriter":
        self._parts.append(encode_float32(value))
        return self

    def float64(self, value: float) -> "RecordWriter":
        self._parts.append(encode_float64(value))
        return self

    def varint(self, value: int) -> "RecordWriter":
        self._parts.append(encode_varint(value))
        return self

    def raw(self, data: bytes) -> "RecordWriter":
        self._parts.append(bytes(data))
        return self

    def uint32_list(self, values) -> "RecordWriter":
        """A varint length prefix followed by uint32 elements."""
        values = list(values)
        self.varint(len(values))
        for value in values:
            self.uint32(value)
        return self

    def string(self, text: str) -> "RecordWriter":
        """A varint length prefix followed by UTF-8 bytes."""
        encoded = text.encode("utf-8")
        self.varint(len(encoded))
        self._parts.append(encoded)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class RecordReader:
    """Sequential binary reader matching :class:`RecordWriter`."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        return len(self._data) - self._offset

    def uint32(self) -> int:
        value = decode_uint32(self._data, self._offset)
        self._offset += UINT32.size
        return value

    def uint16(self) -> int:
        value = UINT16.unpack_from(self._data, self._offset)[0]
        self._offset += UINT16.size
        return value

    def float32(self) -> float:
        value = decode_float32(self._data, self._offset)
        self._offset += FLOAT32.size
        return value

    def float64(self) -> float:
        value = decode_float64(self._data, self._offset)
        self._offset += FLOAT64.size
        return value

    def varint(self) -> int:
        value, self._offset = decode_varint(self._data, self._offset)
        return value

    def raw(self, size: int) -> bytes:
        if self._offset + size > len(self._data):
            raise StorageError("attempt to read past the end of the record")
        value = self._data[self._offset:self._offset + size]
        self._offset += size
        return value

    def uint32_list(self) -> List[int]:
        count = self.varint()
        size = UINT32.size * count
        if self._offset + size > len(self._data):
            raise StorageError("attempt to read past the end of the record")
        values = list(struct.unpack_from(f"<{count}I", self._data, self._offset))
        self._offset += size
        return values

    def _batch(self, codec: struct.Struct, count: int) -> List[tuple]:
        """``count`` consecutive fixed-size records in one C-level pass."""
        size = codec.size * count
        if self._offset + size > len(self._data):
            raise StorageError("attempt to read past the end of the record")
        values = list(codec.iter_unpack(self._data[self._offset:self._offset + size]))
        self._offset += size
        return values

    def adjacency_list(self, count: int) -> List[tuple]:
        """``count`` packed (uint32 neighbor, float32 weight) pairs."""
        return self._batch(PAIR_UINT32_FLOAT32, count)

    def edge_list(self, count: int) -> List[tuple]:
        """``count`` packed (uint32, uint32, float32) weighted edges."""
        return self._batch(TRIPLE_UINT32_UINT32_FLOAT32, count)

    def string(self) -> str:
        count = self.varint()
        return self.raw(count).decode("utf-8")
