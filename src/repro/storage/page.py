"""Fixed-size disk pages.

All scheme files (``Fd``, ``Fi``, ``Fl``) are built from fixed-size pages so
that the storage-space and page-utilization numbers reported by the benchmark
harness are byte-exact, and so that the PIR layer can retrieve data at page
granularity exactly as the paper's architecture prescribes.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import PageOverflowError

#: Default disk page size from Table 2 of the paper (4 KByte).
DEFAULT_PAGE_SIZE = 4096


class Page:
    """A single fixed-size disk page with append-only writes."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._buffer = bytearray()

    @property
    def used_bytes(self) -> int:
        """Number of payload bytes written so far."""
        return len(self._buffer)

    @property
    def free_bytes(self) -> int:
        """Bytes still available in the page."""
        return self.page_size - len(self._buffer)

    @property
    def utilization(self) -> float:
        """Fraction of the page occupied by payload (0.0–1.0)."""
        return self.used_bytes / self.page_size

    def fits(self, data: bytes) -> bool:
        """True when ``data`` can still be appended to this page."""
        return len(data) <= self.free_bytes

    def append(self, data: bytes) -> int:
        """Append ``data`` and return the offset at which it was written."""
        if not self.fits(data):
            raise PageOverflowError(
                f"record of {len(data)} bytes does not fit in page with "
                f"{self.free_bytes} free bytes"
            )
        offset = len(self._buffer)
        self._buffer.extend(data)
        return offset

    def payload(self) -> bytes:
        """The payload bytes written so far (without padding)."""
        return bytes(self._buffer)

    def to_bytes(self) -> bytes:
        """The full page image, zero-padded to ``page_size`` bytes."""
        return bytes(self._buffer) + b"\x00" * self.free_bytes

    @classmethod
    def from_bytes(cls, data: bytes, page_size: Optional[int] = None) -> "Page":
        """Rebuild a page from a page image (padding is preserved as payload)."""
        size = page_size if page_size is not None else len(data)
        if len(data) > size:
            raise PageOverflowError(f"page image of {len(data)} bytes exceeds page size {size}")
        page = cls(size)
        page._buffer = bytearray(data)
        return page

    def __len__(self) -> int:
        return self.page_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(used={self.used_bytes}/{self.page_size})"
