"""Paged storage substrate: pages, record codecs, page files and databases."""

from .compression import (
    compression_ratio,
    delta_decode_ids,
    delta_encode_ids,
    dequantize_weights,
    quantize_weights,
    zigzag_decode,
    zigzag_encode,
)
from .database import Database
from .page import DEFAULT_PAGE_SIZE, Page
from .pagefile import PageFile
from .persist import databases_equal, load_database, save_database
from .record import (
    RecordReader,
    RecordWriter,
    decode_float32,
    decode_float64,
    decode_uint32,
    decode_varint,
    encode_float32,
    encode_float64,
    encode_uint16,
    encode_uint32,
    encode_varint,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "Database",
    "Page",
    "PageFile",
    "RecordReader",
    "RecordWriter",
    "compression_ratio",
    "databases_equal",
    "decode_float32",
    "decode_float64",
    "decode_uint32",
    "decode_varint",
    "delta_decode_ids",
    "delta_encode_ids",
    "dequantize_weights",
    "encode_float32",
    "encode_float64",
    "encode_uint16",
    "encode_uint32",
    "encode_varint",
    "load_database",
    "quantize_weights",
    "save_database",
    "zigzag_decode",
    "zigzag_encode",
]
