"""Lossless compression primitives for network data (future-work direction).

The paper's conclusion points at "(lossless or lossy) compression of network
data, taking into account their characteristics/structure" as a way to reduce
the space and PIR-time overheads.  This module provides the integer-sequence
primitives such a codec needs:

* zig-zag mapping of signed integers onto unsigned ones,
* varint encoding of unsigned integer sequences, and
* delta + zig-zag + varint encoding of sorted (or locally clustered) id lists,
  which is where road-network adjacency data compresses well: node identifiers
  assigned by the KD-tree partitioning are spatially clustered, so the deltas
  between a node and its neighbours are small.

The region-payload codec built on these primitives lives in
:mod:`repro.partition.compact`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..exceptions import StorageError
from .record import decode_varint, encode_varint


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one with small magnitudes staying small."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value < 0:
        raise StorageError(f"zig-zag values are unsigned, got {value}")
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def encode_uint_sequence(values: Iterable[int]) -> bytes:
    """Varint-encode a sequence of unsigned integers, prefixed by its length."""
    values = list(values)
    out = bytearray(encode_varint(len(values)))
    for value in values:
        out.extend(encode_varint(value))
    return bytes(out)


def decode_uint_sequence(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`encode_uint_sequence`; returns ``(values, next_offset)``."""
    count, offset = decode_varint(data, offset)
    values: List[int] = []
    for _ in range(count):
        value, offset = decode_varint(data, offset)
        values.append(value)
    return values, offset


def delta_encode_ids(values: Sequence[int]) -> bytes:
    """Delta + zig-zag + varint encode an integer id list.

    The first value is stored as-is (zig-zag, so negative ids would work too);
    every following value is stored as the signed difference from its
    predecessor.  Sorted or spatially clustered id lists compress to one or two
    bytes per element.
    """
    out = bytearray(encode_varint(len(values)))
    previous = 0
    for index, value in enumerate(values):
        delta = value if index == 0 else value - previous
        out.extend(encode_varint(zigzag_encode(delta)))
        previous = value
    return bytes(out)


def delta_decode_ids(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`delta_encode_ids`; returns ``(values, next_offset)``."""
    count, offset = decode_varint(data, offset)
    values: List[int] = []
    previous = 0
    for index in range(count):
        encoded, offset = decode_varint(data, offset)
        delta = zigzag_decode(encoded)
        value = delta if index == 0 else previous + delta
        values.append(value)
        previous = value
    return values, offset


def quantize_weights(
    weights: Sequence[float], resolution: float = 1e-3
) -> Tuple[List[int], float]:
    """Quantize edge weights onto an integer grid (the lossy half of the codec).

    Returns the integer ticks and the resolution actually used.  Decoding via
    :func:`dequantize_weights` reproduces each weight within ``resolution / 2``.
    """
    if resolution <= 0:
        raise StorageError(f"weight resolution must be positive, got {resolution}")
    return [int(round(weight / resolution)) for weight in weights], resolution


def dequantize_weights(ticks: Sequence[int], resolution: float) -> List[float]:
    """Inverse of :func:`quantize_weights` (up to the quantisation error)."""
    return [tick * resolution for tick in ticks]


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Compressed size as a fraction of the original size (lower is better)."""
    if original_bytes <= 0:
        raise StorageError("original size must be positive")
    return compressed_bytes / original_bytes
