"""The LBS-hosted database: a named collection of page files plus a header.

The header file ``Fh`` is special — it is small, needed by every querying
client, and therefore downloaded in full *without* the PIR interface (see the
paper, Section 5.3).  It is represented separately from the page files so the
distinction is explicit in the code.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..exceptions import StorageError
from .page import DEFAULT_PAGE_SIZE
from .pagefile import PageFile


class Database:
    """A collection of page files exposed to the PIR interface, plus a header."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._files: Dict[str, PageFile] = {}
        self._header: bytes = b""

    # ------------------------------------------------------------------ #
    # header (downloaded directly, not via PIR)
    # ------------------------------------------------------------------ #
    def set_header(self, data: bytes) -> None:
        self._header = bytes(data)

    @property
    def header(self) -> bytes:
        return self._header

    @property
    def header_size_bytes(self) -> int:
        return len(self._header)

    # ------------------------------------------------------------------ #
    # page files (accessed only through the PIR interface during queries)
    # ------------------------------------------------------------------ #
    def create_file(self, name: str) -> PageFile:
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        page_file = PageFile(name, self.page_size)
        self._files[name] = page_file
        return page_file

    def add_file(self, page_file: PageFile) -> None:
        if page_file.name in self._files:
            raise StorageError(f"file {page_file.name!r} already exists")
        if page_file.page_size != self.page_size:
            raise StorageError("page size mismatch between file and database")
        self._files[page_file.name] = page_file

    def file(self, name: str) -> PageFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"unknown file {name!r}") from None

    def has_file(self, name: str) -> bool:
        return name in self._files

    def file_names(self) -> Iterator[str]:
        return iter(self._files.keys())

    def files(self) -> Iterator[PageFile]:
        return iter(self._files.values())

    @property
    def total_size_bytes(self) -> int:
        """Total database size including the header."""
        return self.header_size_bytes + sum(f.size_bytes for f in self._files.values())

    @property
    def total_size_mb(self) -> float:
        return self.total_size_bytes / (1024.0 * 1024.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        files = ", ".join(
            f"{name}:{page_file.num_pages}p" for name, page_file in self._files.items()
        )
        return f"Database(header={self.header_size_bytes}B, files=[{files}])"
