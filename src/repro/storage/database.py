"""The LBS-hosted database: a named collection of page files plus a header.

The header file ``Fh`` is special — it is small, needed by every querying
client, and therefore downloaded in full *without* the PIR interface (see the
paper, Section 5.3).  It is represented separately from the page files so the
distinction is explicit in the code.

A database also decides *where* its page files keep their sealed pages: the
``store_backend``/``store_dir`` arguments (falling back to an active
:func:`~repro.storage.stores.store_backend_scope` and then the
``REPRO_STORE_BACKEND``/``REPRO_STORE_DIR`` environment) select one of the
pluggable :mod:`~repro.storage.stores` backends for every file the database
creates.  With an on-disk backend and no explicit directory, the database
owns a self-cleaning temporary directory, so ``Database(store_backend=
"sqlite")`` "just works" for out-of-core builds that do not need to persist.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Optional

from ..exceptions import StorageError
from .page import DEFAULT_PAGE_SIZE
from .pagefile import PageFile
from .stores import (
    PathLike,
    open_page_store,
    resolve_store_options,
    temporary_store_directory,
)


class Database:
    """A collection of page files exposed to the PIR interface, plus a header."""

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        store_backend: Optional[str] = None,
        store_dir: Optional[PathLike] = None,
    ) -> None:
        self.page_size = page_size
        backend, directory = resolve_store_options(store_backend, store_dir)
        #: Backend name every file this database creates uses.
        self.store_backend = backend
        self._tmpdir = None
        if backend != "memory" and directory is None:
            self._tmpdir = temporary_store_directory()
            directory = self._tmpdir.name
        #: Directory holding the on-disk stores (None for the memory backend).
        self.store_dir: Optional[Path] = (
            Path(directory) if backend != "memory" and directory is not None else None
        )
        self._files: Dict[str, PageFile] = {}
        self._header: bytes = b""

    # ------------------------------------------------------------------ #
    # header (downloaded directly, not via PIR)
    # ------------------------------------------------------------------ #
    def set_header(self, data: bytes) -> None:
        self._header = bytes(data)

    @property
    def header(self) -> bytes:
        return self._header

    @property
    def header_size_bytes(self) -> int:
        return len(self._header)

    # ------------------------------------------------------------------ #
    # page files (accessed only through the PIR interface during queries)
    # ------------------------------------------------------------------ #
    def create_file(self, name: str) -> PageFile:
        if name in self._files:
            raise StorageError(f"file {name!r} already exists")
        store = open_page_store(
            self.store_backend, name, page_size=self.page_size,
            directory=self.store_dir,
        )
        page_file = PageFile(name, self.page_size, store=store)
        self._files[name] = page_file
        return page_file

    def add_file(self, page_file: PageFile) -> None:
        if page_file.name in self._files:
            raise StorageError(f"file {page_file.name!r} already exists")
        if page_file.page_size != self.page_size:
            raise StorageError("page size mismatch between file and database")
        self._files[page_file.name] = page_file

    def file(self, name: str) -> PageFile:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"unknown file {name!r}") from None

    def has_file(self, name: str) -> bool:
        return name in self._files

    def file_names(self) -> Iterator[str]:
        return iter(self._files.keys())

    def files(self) -> Iterator[PageFile]:
        return iter(self._files.values())

    @property
    def total_size_bytes(self) -> int:
        """Total database size including the header."""
        return self.header_size_bytes + sum(f.size_bytes for f in self._files.values())

    @property
    def total_size_mb(self) -> float:
        return self.total_size_bytes / (1024.0 * 1024.0)

    def flush(self) -> None:
        """Seal every file's tail page and push buffered pages to the medium.

        Scheme builders call this once the build finishes, so a freshly built
        database is fully on its backend before the first query arrives.
        """
        for page_file in self._files.values():
            page_file.flush()

    def close(self) -> None:
        """Flush and release every file's backing store (idempotent)."""
        for page_file in self._files.values():
            page_file.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        files = ", ".join(
            f"{name}:{page_file.num_pages}p" for name, page_file in self._files.items()
        )
        return (
            f"Database(header={self.header_size_bytes}B, files=[{files}], "
            f"store={self.store_backend})"
        )
