"""Disk persistence for LBS databases.

A deployable LBS stores its database on disk and keeps serving it across
restarts.  This module covers three paths there:

* :func:`save_database` / :func:`load_database` — the portable image format:
  every page file becomes ``<name>.pages`` (the concatenation of its padded
  page images, exactly what would sit on the LBS's disk), the header becomes
  ``header.bin``, and ``manifest.json`` records the page size, per-file page
  counts, per-page payload sizes and SHA-256 checksums.  Both directions
  stream page by page, so saving or loading never materialises a whole file
  image in memory, and ``load_database(..., store_backend=...)`` loads
  straight onto any page-store backend.
* :func:`clone_database` — re-home a built database onto another backend
  (the engine uses this to serve a RAM-built database from mmap/SQLite).
* :func:`stream_node_database` — build a page database directly from a
  streaming iterable of node records without ever holding the network in
  memory; the out-of-core benchmarks feed the continental-scale generators
  of :mod:`repro.network.generators` through this.

Note that the mmap and SQLite page stores are themselves durable: a database
built with ``store_backend="sqlite"`` in a kept directory can be reopened
with :func:`open_page_store` without this module's manifest round trip (the
manifest adds integrity checksums and backend independence on top).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..exceptions import StorageError
from .database import Database
from .record import decode_float32, decode_varint, encode_float32, encode_varint
from .stores import PathLike

#: Name of the manifest written alongside the page files.
MANIFEST_NAME = "manifest.json"
#: Name of the header image.
HEADER_NAME = "header.bin"
#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write ``database`` to ``directory``; returns the manifest path.

    The directory is created if needed.  Existing files of a previous save are
    overwritten; unrelated files are left alone.  Pages are written one at a
    time, so saving an out-of-core database never loads it into memory.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    database.flush()

    manifest: Dict[str, object] = {
        "version": MANIFEST_VERSION,
        "page_size": database.page_size,
        "header": {
            "file": HEADER_NAME,
            "bytes": database.header_size_bytes,
            "sha256": _checksum(database.header),
        },
        "files": {},
    }
    (directory / HEADER_NAME).write_bytes(database.header)

    for page_file in database.files():
        file_name = f"{page_file.name}.pages"
        hasher = hashlib.sha256()
        used_bytes: List[int] = []
        with open(directory / file_name, "wb") as handle:
            for page_number in range(page_file.num_pages):
                image = page_file.read_page(page_number)
                handle.write(image)
                hasher.update(image)
                used_bytes.append(page_file.page_used_bytes(page_number))
        manifest["files"][page_file.name] = {
            "file": file_name,
            "num_pages": page_file.num_pages,
            "used_bytes": used_bytes,
            "sha256": hasher.hexdigest(),
        }

    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    return manifest_path


def load_database(
    directory: Union[str, Path],
    verify: bool = True,
    store_backend: Optional[str] = None,
    store_dir: Optional[PathLike] = None,
) -> Database:
    """Load a database previously written by :func:`save_database`.

    ``verify=True`` (the default) checks every SHA-256 recorded in the
    manifest and raises :class:`StorageError` on any mismatch.
    ``store_backend``/``store_dir`` choose the page-store backend the loaded
    database lives on (default: the usual backend-resolution seams), so a
    saved image can be loaded straight into an out-of-core store — pages
    stream from the image file into the store one at a time.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no database manifest found in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise StorageError(f"corrupt database manifest: {error}") from error
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"unsupported manifest version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )

    page_size = int(manifest["page_size"])
    database = Database(page_size, store_backend=store_backend, store_dir=store_dir)

    header_info = manifest["header"]
    header = (directory / header_info["file"]).read_bytes()
    if verify and _checksum(header) != header_info["sha256"]:
        raise StorageError("header checksum mismatch; the database files were modified")
    database.set_header(header)

    for name, info in sorted(manifest["files"].items()):
        image_path = directory / info["file"]
        if not image_path.exists():
            raise StorageError(f"missing page file image {info['file']!r}")
        num_pages = int(info["num_pages"])
        expected_bytes = num_pages * page_size
        actual_bytes = image_path.stat().st_size
        if actual_bytes != expected_bytes:
            raise StorageError(
                f"page file {name!r} has {actual_bytes} bytes, expected {expected_bytes}"
            )
        used_bytes: List[int] = [int(value) for value in info["used_bytes"]]
        if len(used_bytes) != num_pages:
            raise StorageError(f"manifest for {name!r} lists the wrong number of pages")
        page_file = database.create_file(name)
        hasher = hashlib.sha256()
        with open(image_path, "rb") as handle:
            for used in used_bytes:
                image = handle.read(page_size)
                if verify:
                    hasher.update(image)
                page_file.store.append_page(image[:used])
        if verify and hasher.hexdigest() != info["sha256"]:
            raise StorageError(f"checksum mismatch for page file {name!r}")
        page_file.flush()
    return database


def clone_database(
    database: Database,
    store_backend: Optional[str] = None,
    store_dir: Optional[PathLike] = None,
) -> Database:
    """A bit-identical copy of ``database`` on another page-store backend.

    Pages stream from the source store into the destination store one at a
    time, so re-homing a database onto mmap/SQLite (the engine's
    ``store_backend=`` path) does not materialise it in memory.
    """
    database.flush()
    clone = Database(database.page_size, store_backend=store_backend, store_dir=store_dir)
    clone.set_header(database.header)
    for page_file in database.files():
        target = clone.create_file(page_file.name)
        for payload in page_file.store.iter_payloads():
            target.store.append_page(payload)
        target.flush()
    return clone


#: One streaming node record: ``(node_id, x, y, [(neighbor, weight), ...])``.
NodeRecord = Tuple[int, float, float, List[Tuple[int, float]]]


def stream_node_database(
    records: Iterable[NodeRecord],
    page_size: int,
    store_backend: Optional[str] = None,
    store_dir: Optional[PathLike] = None,
    payload_pad: int = 0,
    data_file: str = "data",
) -> Tuple[Database, int]:
    """Build a page database directly from streaming node records.

    Each record packs into the ``data_file`` page file as a self-contained
    binary record (varint node id and degree, float32 coordinates and
    weights), optionally zero-padded to at least ``payload_pad`` bytes — the
    out-of-core benchmarks use the pad to give each node a realistic
    region-payload footprint.  Only the current tail page is ever resident,
    so a continental-scale network streams onto an mmap/SQLite store with
    O(1) memory.  Returns ``(database, node_count)``; the header records the
    node count for reopening consumers.
    """
    database = Database(page_size, store_backend=store_backend, store_dir=store_dir)
    data = database.create_file(data_file)
    count = 0
    for node_id, x, y, neighbors in records:
        parts = [
            encode_varint(node_id),
            encode_float32(x),
            encode_float32(y),
            encode_varint(len(neighbors)),
        ]
        for neighbor, weight in neighbors:
            parts.append(encode_varint(neighbor))
            parts.append(encode_float32(weight))
        record = b"".join(parts)
        if payload_pad and len(record) < payload_pad:
            record += b"\x00" * (payload_pad - len(record))
        data.append_record_packed(record)
        count += 1
    database.set_header(
        encode_varint(count) + encode_varint(page_size) + encode_varint(payload_pad)
    )
    database.flush()
    return database, count


def iter_node_records(
    database: Database, data_file: str = "data"
) -> Iterator[NodeRecord]:
    """Stream the node records back out of a :func:`stream_node_database` DB.

    Pages are read one at a time from the backing store, so a reopened
    out-of-core database iterates with the same O(1) residency it was built
    with.  The header's ``payload_pad`` tells the decoder how far to skip
    past each record's zero padding.
    """
    header = database.header
    _, offset = decode_varint(header)
    _, offset = decode_varint(header, offset)
    payload_pad, _ = decode_varint(header, offset)
    page_file = database.file(data_file)
    for page_number in range(page_file.num_pages):
        payload = page_file.read_page(page_number)[: page_file.page_used_bytes(page_number)]
        offset = 0
        while offset < len(payload):
            start = offset
            node_id, offset = decode_varint(payload, offset)
            x = decode_float32(payload, offset)
            y = decode_float32(payload, offset + 4)
            offset += 8
            degree, offset = decode_varint(payload, offset)
            neighbors: List[Tuple[int, float]] = []
            for _ in range(degree):
                neighbor, offset = decode_varint(payload, offset)
                neighbors.append((neighbor, decode_float32(payload, offset)))
                offset += 4
            if payload_pad:
                offset = max(offset, start + payload_pad)
            yield node_id, x, y, neighbors


def databases_equal(first: Database, second: Database) -> bool:
    """True when two databases are bit-for-bit identical (header, files, pages)."""
    if first.page_size != second.page_size or first.header != second.header:
        return False
    if set(first.file_names()) != set(second.file_names()):
        return False
    for name in first.file_names():
        file_a, file_b = first.file(name), second.file(name)
        if file_a.num_pages != file_b.num_pages:
            return False
        for page_a, page_b in zip(file_a.pages(), file_b.pages()):
            if page_a.used_bytes != page_b.used_bytes or page_a.payload() != page_b.payload():
                return False
    return True
