"""Disk persistence for LBS databases.

The schemes in this package build their databases in memory (which is all the
paper's evaluation needs), but a deployable LBS stores them on disk and keeps
serving them across restarts.  This module writes a :class:`Database` to a
directory and loads it back bit-exactly:

* every page file becomes ``<name>.pages`` — the concatenation of its padded
  page images, exactly what would sit on the LBS's disk;
* the header file becomes ``header.bin``;
* ``manifest.json`` records the page size, the per-file page counts, the
  per-page payload sizes (so utilization accounting survives the round trip)
  and SHA-256 checksums that :func:`load_database` verifies on load.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from ..exceptions import StorageError
from .database import Database
from .page import Page
from .pagefile import PageFile

#: Name of the manifest written alongside the page files.
MANIFEST_NAME = "manifest.json"
#: Name of the header image.
HEADER_NAME = "header.bin"
#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def _checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write ``database`` to ``directory``; returns the manifest path.

    The directory is created if needed.  Existing files of a previous save are
    overwritten; unrelated files are left alone.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest: Dict[str, object] = {
        "version": MANIFEST_VERSION,
        "page_size": database.page_size,
        "header": {
            "file": HEADER_NAME,
            "bytes": database.header_size_bytes,
            "sha256": _checksum(database.header),
        },
        "files": {},
    }
    (directory / HEADER_NAME).write_bytes(database.header)

    for page_file in database.files():
        image = page_file.to_bytes()
        file_name = f"{page_file.name}.pages"
        (directory / file_name).write_bytes(image)
        manifest["files"][page_file.name] = {
            "file": file_name,
            "num_pages": page_file.num_pages,
            "used_bytes": [page.used_bytes for page in page_file.pages()],
            "sha256": _checksum(image),
        }

    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    return manifest_path


def load_database(directory: Union[str, Path], verify: bool = True) -> Database:
    """Load a database previously written by :func:`save_database`.

    ``verify=True`` (the default) checks every SHA-256 recorded in the
    manifest and raises :class:`StorageError` on any mismatch.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no database manifest found in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise StorageError(f"corrupt database manifest: {error}") from error
    if manifest.get("version") != MANIFEST_VERSION:
        raise StorageError(
            f"unsupported manifest version {manifest.get('version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )

    page_size = int(manifest["page_size"])
    database = Database(page_size)

    header_info = manifest["header"]
    header = (directory / header_info["file"]).read_bytes()
    if verify and _checksum(header) != header_info["sha256"]:
        raise StorageError("header checksum mismatch; the database files were modified")
    database.set_header(header)

    for name, info in sorted(manifest["files"].items()):
        image_path = directory / info["file"]
        if not image_path.exists():
            raise StorageError(f"missing page file image {info['file']!r}")
        image = image_path.read_bytes()
        if verify and _checksum(image) != info["sha256"]:
            raise StorageError(f"checksum mismatch for page file {name!r}")
        expected_bytes = int(info["num_pages"]) * page_size
        if len(image) != expected_bytes:
            raise StorageError(
                f"page file {name!r} has {len(image)} bytes, expected {expected_bytes}"
            )
        used_bytes: List[int] = [int(value) for value in info["used_bytes"]]
        if len(used_bytes) != int(info["num_pages"]):
            raise StorageError(f"manifest for {name!r} lists the wrong number of pages")
        page_file = PageFile(name, page_size)
        for page_number, used in enumerate(used_bytes):
            start = page_number * page_size
            payload = image[start:start + used]
            page_file.append_page(Page.from_bytes(payload, page_size))
        database.add_file(page_file)
    return database


def databases_equal(first: Database, second: Database) -> bool:
    """True when two databases are bit-for-bit identical (header, files, pages)."""
    if first.page_size != second.page_size or first.header != second.header:
        return False
    if set(first.file_names()) != set(second.file_names()):
        return False
    for name in first.file_names():
        file_a, file_b = first.file(name), second.file(name)
        if file_a.num_pages != file_b.num_pages:
            return False
        for page_a, page_b in zip(file_a.pages(), file_b.pages()):
            if page_a.used_bytes != page_b.used_bytes or page_a.payload() != page_b.payload():
                return False
    return True
