"""Plain-text reporting helpers: render experiment results as aligned tables
matching the rows/series the paper reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_cell(row.get(column))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines) + "\n"


def format_series(series: Dict[object, float], x_label: str, y_label: str, title: str = "") -> str:
    """Render an x→y series (one figure curve) as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in series.items()]
    return format_table(rows, title=title)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
