"""Extension experiments: ablations beyond the paper's own tables and figures.

These experiments quantify the design directions the paper names but does not
evaluate (its future-work section), plus one claim stated only in prose:

* :func:`ablation_approximate` — the Approximate Passage Index (bounded cost
  deviation) versus exact PI: index size, storage, deviation and response time
  as a function of ``ε``.
* :func:`ablation_region_compression` — the compact (delta/varint/quantised)
  region codec versus the standard one: how much smaller ``Fd`` could become.
* :func:`ablation_oram_mechanism` — the real square-root ORAM executed against
  an untrusted slot store: physical accesses per logical retrieval, versus the
  trivial scan-everything baseline and the amortised cost the [36] simulator
  charges.
* :func:`section4_full_materialization` — the Section 4 claim that full
  materialisation needs ~20 GByte already for Oldenburg and cannot be served
  through the PIR interface.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from ..costmodel import pir_page_retrieval_time
from ..partition import CompactCodecConfig, compare_region_codecs
from ..pir import SquareRootOram
from ..schemes import ApproximatePassageIndexScheme, measure_cost_deviation
from ..schemes.files import INDEX_FILE
from ..schemes.full_materialization import full_materialization_report
from .cache import BuildCache, get_cache
from .datasets import SMALL_DATASETS, dataset_spec
from .experiments import DEFAULT_NUM_QUERIES, _build_pi, _workload
from .runner import run_workload


def ablation_approximate(
    dataset: str = "oldenburg",
    epsilons: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    cache: Optional[BuildCache] = None,
) -> List[Dict[str, object]]:
    """APX versus exact PI across a sweep of deviation budgets ``ε``."""
    cache = cache if cache is not None else get_cache(profile)
    network = cache.network(dataset)
    workload = _workload(cache, dataset, num_queries)

    rows: List[Dict[str, object]] = []
    exact_pi = _build_pi(cache, dataset)
    exact_summary = run_workload(exact_pi, workload)
    rows.append(
        {
            "scheme": "PI (exact)",
            "epsilon": 0.0,
            "index_pages": exact_pi.database.file(INDEX_FILE).num_pages,
            "storage_mb": round(exact_pi.storage_mb, 3),
            "response_s": round(exact_summary.mean_response_s, 2),
            "mean_deviation": 1.0,
            "max_deviation": 1.0,
        }
    )

    for epsilon in epsilons:
        scheme = cache.scheme(
            ("APX", dataset, epsilon),
            lambda: ApproximatePassageIndexScheme.build(
                network,
                epsilon=epsilon,
                spec=cache.spec,
                partitioning=cache.partitioning(dataset),
                border_index=cache.border_index(dataset),
            ),
        )
        summary = run_workload(scheme, workload, verify_costs=False)
        deviations = measure_cost_deviation(scheme, network, workload)
        rows.append(
            {
                "scheme": "APX",
                "epsilon": epsilon,
                "index_pages": scheme.database.file(INDEX_FILE).num_pages,
                "storage_mb": round(scheme.storage_mb, 3),
                "response_s": round(summary.mean_response_s, 2),
                "mean_deviation": round(statistics.mean(deviations), 4),
                "max_deviation": round(max(deviations), 4),
            }
        )
    return rows


def ablation_region_compression(
    datasets: Sequence[str] = tuple(SMALL_DATASETS),
    weight_resolution: float = 1e-3,
    profile: str = "quick",
    cache: Optional[BuildCache] = None,
) -> List[Dict[str, object]]:
    """Standard versus compact region codec on the smaller Table 1 networks."""
    cache = cache if cache is not None else get_cache(profile)
    config = CompactCodecConfig(weight_resolution=weight_resolution)
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        network = cache.network(dataset)
        partitioning = cache.partitioning(dataset)
        report = compare_region_codecs(network, partitioning, cache.spec.page_size, config)
        rows.append(
            {
                "dataset": dataset_spec(dataset).label,
                "regions": report.num_regions,
                "standard_kb": round(report.standard_bytes / 1024.0, 1),
                "compact_kb": round(report.compact_bytes / 1024.0, 1),
                "byte_ratio": round(report.byte_ratio, 3),
                "standard_pages": report.standard_pages,
                "compact_pages": report.compact_pages,
                "page_ratio": round(report.page_ratio, 3),
            }
        )
    return rows


def ablation_oram_mechanism(
    num_blocks_values: Sequence[int] = (16, 64, 144),
    block_size: int = 64,
    accesses: int = 24,
    profile: str = "quick",
) -> List[Dict[str, object]]:
    """Physical cost of the real square-root ORAM versus trivial scanning.

    For each database size the experiment performs a fixed number of logical
    reads and separates the *online* cost of an access (shelter scan plus one
    main-area probe) from the *amortised* cost that also charges the periodic
    oblivious reshuffle.  The trivial baseline — scanning the whole database on
    every access — and the per-page time charged by the Williams & Sion cost
    simulator for a file of the same size give the two reference points.  The
    sorting-network reshuffle makes the amortised cost of the square-root
    construction worse than a scan at these toy sizes, which is exactly why
    [36] uses a more elaborate hierarchical scheme; the online cost already
    shows the O(sqrt N) versus O(N) separation.
    """
    cache_spec = get_cache(profile).spec
    rows: List[Dict[str, object]] = []
    for num_blocks in num_blocks_values:
        blocks = [bytes([index % 256]) * block_size for index in range(num_blocks)]
        oram = SquareRootOram(blocks)
        oram.server.clear_log()
        online_ops = 0
        online_accesses = 0
        total_ops = 0
        for access in range(accesses):
            before = len(oram.server.access_log)
            epoch_before = oram.epoch
            oram.read(access % num_blocks)
            ops = len(oram.server.access_log) - before
            total_ops += ops
            if oram.epoch == epoch_before:
                online_ops += ops
                online_accesses += 1
        rows.append(
            {
                "blocks": num_blocks,
                "logical_accesses": accesses,
                "online_per_access": round(online_ops / max(online_accesses, 1), 1),
                "amortized_per_access": round(total_ops / accesses, 1),
                "trivial_scan_per_access": num_blocks,
                "reshuffles": oram.epoch,
                "simulated_pir_s_per_page": round(
                    pir_page_retrieval_time(num_blocks, cache_spec), 4
                ),
            }
        )
    return rows


def section4_full_materialization(
    datasets: Sequence[str] = ("oldenburg", "germany", "argentina"),
    profile: str = "quick",
    cache: Optional[BuildCache] = None,
) -> List[Dict[str, object]]:
    """Reproduce the Section 4 full-materialisation space argument."""
    cache = cache if cache is not None else get_cache(profile)
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        spec = dataset_spec(dataset)
        row = full_materialization_report(
            cache.network(dataset),
            paper_nodes=spec.paper_nodes,
            spec=cache.spec,
        )
        row = {"dataset": spec.label, **row}
        rows.append(row)
    return rows
