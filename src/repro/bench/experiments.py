"""Experiment functions: one per table/figure of the paper's evaluation.

Every public function regenerates the data behind one table or figure of
Section 7 and returns plain dictionaries/lists so that the pytest-benchmark
targets in ``benchmarks/`` can both time them and print the same rows/series
the paper reports.  Paper-reported reference values are included as constants
where the paper states them explicitly (Table 3), so reports can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..costmodel import DEFAULT_SPEC
from ..schemes import (
    ArcFlagScheme,
    ClusteredPassageIndexScheme,
    ConciseIndexScheme,
    HybridScheme,
    LandmarkScheme,
    ObfuscationScheme,
    PassageIndexScheme,
)
from .cache import BuildCache, get_cache
from .datasets import DATASETS, LARGE_DATASETS, SMALL_DATASETS, dataset_spec
from .runner import WorkloadSummary, run_obfuscation_workload, run_workload
from .workloads import generate_workload

#: Default workload size for the quick profile (the paper uses 1,000 queries).
DEFAULT_NUM_QUERIES = 30

#: Table 3 of the paper (Argentina, 4 KByte pages, IBM 4764 simulation).
PAPER_TABLE3 = {
    "AF": {"response_s": 324.18, "pir_s": 272.56, "communication_s": 51.47, "storage_mb": 3.28},
    "LM": {"response_s": 311.93, "pir_s": 265.38, "communication_s": 46.43, "storage_mb": 4.38},
    "CI": {"response_s": 105.45, "pir_s": 88.09, "communication_s": 17.34, "storage_mb": 8.40},
    "PI": {"response_s": 58.17, "pir_s": 54.21, "communication_s": 3.94, "storage_mb": 1102.0},
}


# ---------------------------------------------------------------------- #
# shared builders (cached)
# ---------------------------------------------------------------------- #
def _build_ci(cache: BuildCache, dataset: str, packed: bool = True, compress: bool = True):
    key = ("CI", dataset, packed, compress)
    return cache.scheme(
        key,
        lambda: ConciseIndexScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            packed=packed,
            compress=compress,
            partitioning=cache.partitioning(dataset, packed),
            border_index=cache.border_index(dataset, packed),
            products=cache.border_products(dataset, packed),
        ),
    )


def _build_pi(cache: BuildCache, dataset: str, packed: bool = True, compress: bool = True):
    key = ("PI", dataset, packed, compress)
    return cache.scheme(
        key,
        lambda: PassageIndexScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            packed=packed,
            compress=compress,
            partitioning=cache.partitioning(dataset, packed),
            border_index=cache.border_index(dataset, packed),
            products=cache.border_products(dataset, packed, want_subgraphs=True),
        ),
    )


def _build_hybrid(cache: BuildCache, dataset: str, threshold: int):
    key = ("HY", dataset, threshold)
    products = cache.border_products(dataset, want_subgraphs=True)
    return cache.scheme(
        key,
        lambda: HybridScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            region_set_threshold=threshold,
            partitioning=cache.partitioning(dataset),
            border_index=cache.border_index(dataset),
            products=products,
            passage_subgraphs=products.passage_subgraphs,
        ),
    )


def _build_clustered(cache: BuildCache, dataset: str, cluster_pages: int):
    key = ("PI*", dataset, cluster_pages)
    capacity = cluster_pages * cache.spec.page_size - 8
    return cache.scheme(
        key,
        lambda: ClusteredPassageIndexScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            cluster_pages=cluster_pages,
            partitioning=cache.partitioning(dataset, capacity=capacity),
            border_index=cache.border_index(dataset, capacity=capacity),
            products=cache.border_products(dataset, capacity=capacity, want_subgraphs=True),
        ),
    )


def _build_lm(cache: BuildCache, dataset: str, num_landmarks: int, plan_pairs):
    key = ("LM", dataset, num_landmarks, len(plan_pairs))
    return cache.scheme(
        key,
        lambda: LandmarkScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            num_landmarks=num_landmarks,
            plan_pairs=plan_pairs,
        ),
    )


def _build_af(cache: BuildCache, dataset: str, plan_pairs):
    key = ("AF", dataset, len(plan_pairs))
    return cache.scheme(
        key,
        lambda: ArcFlagScheme.build(
            cache.network(dataset),
            spec=cache.spec,
            plan_pairs=plan_pairs,
            partitioning=cache.partitioning(dataset),
            border_index=cache.border_index(dataset),
        ),
    )


def _workload(cache: BuildCache, dataset: str, num_queries: int, seed: int = 42):
    return generate_workload(cache.network(dataset), count=num_queries, seed=seed)


# ---------------------------------------------------------------------- #
# Table 1 and Table 2
# ---------------------------------------------------------------------- #
def table1_datasets(profile: str = "quick") -> List[Dict[str, object]]:
    """Table 1: the road networks (paper sizes and generated stand-in sizes)."""
    cache = get_cache(profile)
    rows = []
    for name in DATASETS:
        spec = dataset_spec(name)
        network = cache.network(name)
        rows.append(
            {
                "dataset": spec.label,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "generated_nodes": network.num_nodes,
                "generated_edges": network.num_edges,
                "edge_factor": round(network.num_edges / (2 * network.num_nodes), 3),
            }
        )
    return rows


def table2_system(profile: str = "quick") -> List[Dict[str, object]]:
    """Table 2: the system specification in force for the chosen profile."""
    cache = get_cache(profile)
    spec = cache.spec
    return [
        {"parameter": "Disk page size", "value": f"{spec.page_size} bytes"},
        {"parameter": "Disk seek time", "value": f"{spec.disk_seek_s * 1000:.0f} ms"},
        {"parameter": "Disk read/write rate", "value": f"{spec.disk_rate_bps / 2**20:.0f} MByte/s"},
        {"parameter": "SCP read/write rate", "value": f"{spec.scp_io_rate_bps / 2**20:.0f} MByte/s"},
        {
            "parameter": "SCP encryption/decryption rate",
            "value": f"{spec.scp_crypto_rate_bps / 2**20:.0f} MByte/s",
        },
        {"parameter": "Communication bandwidth", "value": f"{spec.bandwidth_bps / 1024:.0f} KByte/s"},
        {"parameter": "Communication round-trip time", "value": f"{spec.round_trip_s * 1000:.0f} ms"},
        {"parameter": "SCP memory", "value": f"{spec.scp_memory_bytes / 2**20:.0f} MByte"},
        {"parameter": "Max PIR file size", "value": f"{spec.max_file_bytes / 2**30:.2f} GByte"},
    ]


# ---------------------------------------------------------------------- #
# Figure 5: LM fine-tuning
# ---------------------------------------------------------------------- #
def fig5_lm_tuning(
    dataset: str = "argentina",
    landmark_counts: Sequence[int] = (1, 2, 5, 10, 20),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Figure 5: LM response time and space vs. the number of landmarks."""
    cache = get_cache(profile)
    workload = _workload(cache, dataset, num_queries)
    rows = []
    for count in landmark_counts:
        scheme = _build_lm(cache, dataset, count, workload)
        summary = run_workload(
            scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
        )
        rows.append(
            {
                "landmarks": count,
                "response_s": round(summary.mean_response_s, 2),
                "storage_mb": round(summary.storage_mb, 3),
                "pages_per_query": round(sum(summary.mean_page_accesses.values()), 1),
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Table 3: response-time components on Argentina
# ---------------------------------------------------------------------- #
def table3_components(
    dataset: str = "argentina",
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    num_landmarks: int = 5,
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Table 3: response-time decomposition and page accesses for AF, LM, CI, PI."""
    cache = get_cache(profile)
    workload = _workload(cache, dataset, num_queries)
    schemes = [
        _build_af(cache, dataset, workload),
        _build_lm(cache, dataset, num_landmarks, workload),
        _build_ci(cache, dataset),
        _build_pi(cache, dataset),
    ]
    rows = []
    for scheme in schemes:
        summary = run_workload(
            scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
        )
        paper = PAPER_TABLE3.get(scheme.name, {})
        data_accesses = summary.mean_page_accesses.get("data", 0.0) + (
            summary.mean_page_accesses.get("combined", 0.0)
        )
        index_accesses = summary.mean_page_accesses.get("index", 0.0)
        rows.append(
            {
                "scheme": scheme.name,
                "response_s": round(summary.mean_response_s, 2),
                "pir_s": round(summary.mean_pir_s, 2),
                "communication_s": round(summary.mean_communication_s, 2),
                "client_s": round(summary.mean_client_s, 4),
                "data_pages_per_query": round(data_accesses, 1),
                "data_file_pages": summary.file_pages.get("data", 0),
                "index_pages_per_query": round(index_accesses, 1),
                "index_file_pages": summary.file_pages.get("index", 0),
                "storage_mb": round(summary.storage_mb, 3),
                "paper_response_s": paper.get("response_s"),
                "paper_storage_mb": paper.get("storage_mb"),
                "costs_correct": summary.all_costs_correct,
                "indistinguishable": summary.indistinguishable,
            }
        )
    return rows


# ---------------------------------------------------------------------- #
# Figure 6: the obfuscation baseline
# ---------------------------------------------------------------------- #
def fig6_obfuscation(
    dataset: str = "argentina",
    set_sizes: Sequence[int] = (20, 40, 60, 80, 100),
    num_queries: int = 20,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> Dict[str, object]:
    """Figure 6: OBF response time vs. obfuscation set size, with CI/PI reference lines."""
    cache = get_cache(profile)
    workload = _workload(cache, dataset, num_queries)
    ci_summary = run_workload(
        _build_ci(cache, dataset),
        workload,
        workers=workers,
        worker_mode=worker_mode,
        shards=shards,
    )
    pi_summary = run_workload(
        _build_pi(cache, dataset),
        workload,
        workers=workers,
        worker_mode=worker_mode,
        shards=shards,
    )
    rows = []
    for size in set_sizes:
        obf = ObfuscationScheme(cache.network(dataset), spec=cache.spec, set_size=size, seed=size)
        rows.append(run_obfuscation_workload(obf, workload))
    return {
        "obf": rows,
        "ci_response_s": round(ci_summary.mean_response_s, 2),
        "pi_response_s": round(pi_summary.mean_response_s, 2),
    }


# ---------------------------------------------------------------------- #
# Figure 7: the four schemes across datasets
# ---------------------------------------------------------------------- #
def fig7_datasets(
    datasets: Sequence[str] = tuple(SMALL_DATASETS),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    num_landmarks: int = 5,
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Figure 7: AF/LM/CI/PI response time and space on the smaller networks."""
    cache = get_cache(profile)
    rows = []
    for dataset in datasets:
        workload = _workload(cache, dataset, num_queries)
        schemes = [
            _build_af(cache, dataset, workload),
            _build_lm(cache, dataset, num_landmarks, workload),
            _build_ci(cache, dataset),
            _build_pi(cache, dataset),
        ]
        for scheme in schemes:
            summary = run_workload(
                scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
            )
            rows.append(
                {
                    "dataset": dataset_spec(dataset).label,
                    "scheme": scheme.name,
                    "response_s": round(summary.mean_response_s, 2),
                    "storage_mb": round(summary.storage_mb, 3),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 8: effect of packed partitioning
# ---------------------------------------------------------------------- #
def fig8_packing(
    datasets: Sequence[str] = tuple(SMALL_DATASETS),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Figure 8: CI/PI with packed vs. plain KD-tree partitioning."""
    cache = get_cache(profile)
    rows = []
    for dataset in datasets:
        workload = _workload(cache, dataset, num_queries)
        variants = [
            ("CI", _build_ci(cache, dataset, packed=True)),
            ("CI-P", _build_ci(cache, dataset, packed=False)),
            ("PI", _build_pi(cache, dataset, packed=True)),
            ("PI-P", _build_pi(cache, dataset, packed=False)),
        ]
        for label, scheme in variants:
            summary = run_workload(
                scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
            )
            rows.append(
                {
                    "dataset": dataset_spec(dataset).label,
                    "scheme": label,
                    "fd_utilization_pct": round(100.0 * (summary.data_file_utilization or 0.0), 1),
                    "response_s": round(summary.mean_response_s, 2),
                    "storage_mb": round(summary.storage_mb, 3),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 9: effect of index compression
# ---------------------------------------------------------------------- #
def fig9_compression(
    datasets: Sequence[str] = tuple(SMALL_DATASETS),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Figure 9: CI/PI with and without in-page index compression."""
    cache = get_cache(profile)
    rows = []
    for dataset in datasets:
        workload = _workload(cache, dataset, num_queries)
        variants = [
            ("CI", _build_ci(cache, dataset, compress=True)),
            ("CI-C", _build_ci(cache, dataset, compress=False)),
            ("PI", _build_pi(cache, dataset, compress=True)),
            ("PI-C", _build_pi(cache, dataset, compress=False)),
        ]
        for label, scheme in variants:
            summary = run_workload(
                scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
            )
            rows.append(
                {
                    "dataset": dataset_spec(dataset).label,
                    "scheme": label,
                    "response_s": round(summary.mean_response_s, 2),
                    "storage_mb": round(summary.storage_mb, 3),
                    "index_pages": summary.file_pages.get("index", 0),
                }
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 10: HY on Denmark
# ---------------------------------------------------------------------- #
def fig10_hybrid(
    dataset: str = "denmark",
    thresholds: Optional[Sequence[int]] = None,
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> Dict[str, object]:
    """Figure 10: distribution of |S_ij| and HY's space/time trade-off vs. threshold."""
    cache = get_cache(profile)
    workload = _workload(cache, dataset, num_queries)
    products = cache.border_products(dataset, want_subgraphs=True)
    sizes = sorted(len(regions) for regions in products.region_sets.values())
    max_size = sizes[-1] if sizes else 0

    histogram: Dict[int, int] = {}
    bucket = max(1, max_size // 10 or 1)
    for size in sizes:
        key = (size // bucket) * bucket
        histogram[key] = histogram.get(key, 0) + 1

    if thresholds is None:
        step = max(1, max_size // 5)
        thresholds = sorted({max(1, step * k) for k in range(1, 6)})

    ci_summary = run_workload(
        _build_ci(cache, dataset),
        workload,
        workers=workers,
        worker_mode=worker_mode,
        shards=shards,
    )
    rows = []
    for threshold in thresholds:
        scheme = _build_hybrid(cache, dataset, threshold)
        summary = run_workload(
            scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
        )
        rows.append(
            {
                "threshold": threshold,
                "replaced_pairs": scheme.num_replaced_pairs,
                "response_s": round(summary.mean_response_s, 2),
                "storage_mb": round(summary.storage_mb, 3),
            }
        )
    return {
        "histogram": dict(sorted(histogram.items())),
        "max_region_set_size": max_size,
        "hybrid": rows,
        "ci_response_s": round(ci_summary.mean_response_s, 2),
        "ci_storage_mb": round(ci_summary.storage_mb, 3),
    }


# ---------------------------------------------------------------------- #
# Figure 11: PI* on Denmark
# ---------------------------------------------------------------------- #
def fig11_clustered(
    dataset: str = "denmark",
    cluster_sizes: Sequence[int] = (2, 4, 8, 16),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> Dict[str, object]:
    """Figure 11: PI* response time and space vs. the number of cluster pages."""
    cache = get_cache(profile)
    workload = _workload(cache, dataset, num_queries)
    ci_summary = run_workload(
        _build_ci(cache, dataset),
        workload,
        workers=workers,
        worker_mode=worker_mode,
        shards=shards,
    )
    rows = []
    for cluster_pages in cluster_sizes:
        scheme = _build_clustered(cache, dataset, cluster_pages)
        summary = run_workload(
            scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
        )
        rows.append(
            {
                "cluster_pages": cluster_pages,
                "regions": scheme.partitioning.num_regions,
                "response_s": round(summary.mean_response_s, 2),
                "storage_mb": round(summary.storage_mb, 3),
            }
        )
    return {
        "clustered": rows,
        "ci_response_s": round(ci_summary.mean_response_s, 2),
        "ci_storage_mb": round(ci_summary.storage_mb, 3),
    }


# ---------------------------------------------------------------------- #
# Figure 12: larger networks
# ---------------------------------------------------------------------- #
def fig12_larger(
    datasets: Sequence[str] = tuple(LARGE_DATASETS),
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile: str = "quick",
    cluster_pages: int = 2,
    workers: int = 1,
    worker_mode: str = "thread",
    shards: int = 1,
) -> List[Dict[str, object]]:
    """Figure 12: CI, HY and PI* on the larger networks."""
    cache = get_cache(profile)
    rows = []
    for dataset in datasets:
        workload = _workload(cache, dataset, num_queries)
        products = cache.border_products(dataset, want_subgraphs=True)
        max_size = products.max_region_set_size()
        threshold = max(4, max_size // 4)
        schemes = [
            _build_ci(cache, dataset),
            _build_hybrid(cache, dataset, threshold),
            _build_clustered(cache, dataset, cluster_pages),
        ]
        for scheme in schemes:
            summary = run_workload(
                scheme, workload, workers=workers, worker_mode=worker_mode, shards=shards
            )
            rows.append(
                {
                    "dataset": dataset_spec(dataset).label,
                    "scheme": scheme.name,
                    "response_s": round(summary.mean_response_s, 2),
                    "storage_mb": round(summary.storage_mb, 3),
                }
            )
    return rows
