"""Benchmark harness: datasets, workloads, runners and per-figure experiments."""

from .cache import BuildCache, get_cache
from .datasets import (
    DATASETS,
    LARGE_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    dataset_spec,
    load_dataset,
    system_spec_for,
)
from .extensions import (
    ablation_approximate,
    ablation_oram_mechanism,
    ablation_region_compression,
    section4_full_materialization,
)
from .experiments import (
    DEFAULT_NUM_QUERIES,
    PAPER_TABLE3,
    fig5_lm_tuning,
    fig6_obfuscation,
    fig7_datasets,
    fig8_packing,
    fig9_compression,
    fig10_hybrid,
    fig11_clustered,
    fig12_larger,
    table1_datasets,
    table2_system,
    table3_components,
)
from .reporting import format_series, format_table
from .runner import WorkloadSummary, run_obfuscation_workload, run_workload
from .workloads import (
    DEFAULT_WORKLOAD_SIZE,
    generate_hotspot_workload,
    generate_long_distance_workload,
    generate_workload,
)

__all__ = [
    "BuildCache",
    "DATASETS",
    "DEFAULT_NUM_QUERIES",
    "DEFAULT_WORKLOAD_SIZE",
    "DatasetSpec",
    "LARGE_DATASETS",
    "PAPER_TABLE3",
    "SMALL_DATASETS",
    "WorkloadSummary",
    "ablation_approximate",
    "ablation_oram_mechanism",
    "ablation_region_compression",
    "dataset_spec",
    "fig10_hybrid",
    "fig11_clustered",
    "fig12_larger",
    "fig5_lm_tuning",
    "fig6_obfuscation",
    "fig7_datasets",
    "fig8_packing",
    "fig9_compression",
    "format_series",
    "format_table",
    "generate_hotspot_workload",
    "generate_long_distance_workload",
    "generate_workload",
    "get_cache",
    "load_dataset",
    "run_obfuscation_workload",
    "run_workload",
    "section4_full_materialization",
    "system_spec_for",
    "table1_datasets",
    "table2_system",
    "table3_components",
]
