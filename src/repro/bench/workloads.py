"""Query workload generation.

The paper measures average response time over workloads of 1,000 shortest
path queries with sources and destinations drawn from the network.  The
``quick`` benchmark profile uses smaller (seeded, reproducible) workloads; the
count is a parameter everywhere.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..network import NodeId, RoadNetwork

QueryPair = Tuple[NodeId, NodeId]

#: Workload size used by the quick benchmark profile (the paper uses 1,000).
DEFAULT_WORKLOAD_SIZE = 40


def generate_workload(
    network: RoadNetwork,
    count: int = DEFAULT_WORKLOAD_SIZE,
    seed: int = 42,
    distinct_endpoints: bool = True,
) -> List[QueryPair]:
    """Draw ``count`` (source, destination) pairs uniformly from the network."""
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    pairs: List[QueryPair] = []
    while len(pairs) < count:
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        if distinct_endpoints and source == target:
            continue
        pairs.append((source, target))
    return pairs


def generate_long_distance_workload(
    network: RoadNetwork,
    count: int = DEFAULT_WORKLOAD_SIZE,
    seed: int = 42,
    quantile: float = 0.75,
) -> List[QueryPair]:
    """Pairs whose Euclidean separation is above the given quantile.

    Useful for stressing the worst-case behaviour of the baselines (long
    queries read most of the database).
    """
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    candidates = []
    for _ in range(count * 8):
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        if source == target:
            continue
        candidates.append((network.euclidean_distance(source, target), source, target))
    candidates.sort()
    threshold_index = int(len(candidates) * quantile)
    selected = candidates[threshold_index:]
    rng.shuffle(selected)
    return [(source, target) for _, source, target in selected[:count]]
