"""Query workload generation.

The paper measures average response time over workloads of 1,000 shortest
path queries with sources and destinations drawn from the network.  The
``quick`` benchmark profile uses smaller (seeded, reproducible) workloads; the
count is a parameter everywhere.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..network import NodeId, RoadNetwork

QueryPair = Tuple[NodeId, NodeId]

#: Workload size used by the quick benchmark profile (the paper uses 1,000).
DEFAULT_WORKLOAD_SIZE = 40


def generate_workload(
    network: RoadNetwork,
    count: int = DEFAULT_WORKLOAD_SIZE,
    seed: int = 42,
    distinct_endpoints: bool = True,
) -> List[QueryPair]:
    """Draw ``count`` (source, destination) pairs uniformly from the network."""
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    pairs: List[QueryPair] = []
    while len(pairs) < count:
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        if distinct_endpoints and source == target:
            continue
        pairs.append((source, target))
    return pairs


def generate_hotspot_workload(
    network: RoadNetwork,
    count: int = DEFAULT_WORKLOAD_SIZE,
    seed: int = 42,
    hot_pairs: int = 10,
    hot_fraction: float = 0.75,
) -> List[QueryPair]:
    """A workload with pair locality: most queries repeat a few hot pairs.

    Serving workloads are not uniform — commuter traffic concentrates on a
    small set of popular source/destination pairs.  ``hot_fraction`` of the
    queries are drawn (uniformly) from ``hot_pairs`` fixed pairs; the rest
    are fresh uniform draws.  The result is shuffled so hot and cold queries
    interleave the way they would in a real batch.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = random.Random(seed)
    hot = generate_workload(network, count=hot_pairs, seed=seed)
    num_hot = int(count * hot_fraction)
    cold = generate_workload(network, count=count - num_hot, seed=seed + 1)
    pairs = [rng.choice(hot) for _ in range(num_hot)] + cold
    rng.shuffle(pairs)
    return pairs


def generate_long_distance_workload(
    network: RoadNetwork,
    count: int = DEFAULT_WORKLOAD_SIZE,
    seed: int = 42,
    quantile: float = 0.75,
) -> List[QueryPair]:
    """Pairs whose Euclidean separation is above the given quantile.

    Useful for stressing the worst-case behaviour of the baselines (long
    queries read most of the database).
    """
    rng = random.Random(seed)
    node_ids = list(network.node_ids())
    candidates = []
    for _ in range(count * 8):
        source = rng.choice(node_ids)
        target = rng.choice(node_ids)
        if source == target:
            continue
        candidates.append((network.euclidean_distance(source, target), source, target))
    candidates.sort()
    threshold_index = int(len(candidates) * quantile)
    selected = candidates[threshold_index:]
    rng.shuffle(selected)
    return [(source, target) for _, source, target in selected[:count]]
