"""Workload runner: executes a query workload against a scheme and aggregates
the metrics the paper reports (response-time components, PIR page accesses per
file, storage space, page utilization)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..costmodel import ResponseTime
from ..engine import QueryEngine
from ..exceptions import SchemeError
from ..schemes import Scheme
from ..schemes.obfuscation import ObfuscationScheme
from .workloads import QueryPair


@dataclass
class WorkloadSummary:
    """Aggregate metrics of one scheme over one workload."""

    scheme_name: str
    num_queries: int
    #: Mean response-time decomposition per query (seconds).
    mean_response_s: float
    mean_pir_s: float
    mean_communication_s: float
    mean_client_s: float
    mean_server_s: float
    #: Mean PIR page accesses per file, and the file sizes (in pages).
    mean_page_accesses: Dict[str, float]
    file_pages: Dict[str, int]
    #: Database size in MBytes (header included).
    storage_mb: float
    #: Average page utilization of the region data file (None when absent).
    data_file_utilization: Optional[float]
    #: Whether every query returned the true shortest-path cost.
    all_costs_correct: bool
    #: Whether every query produced the identical adversary view.
    indistinguishable: bool
    #: Client-side decode-cache statistics of the underlying batch.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Worker contexts the batch was sharded across.
    workers: int = 1
    #: How the worker contexts executed ("thread" or "process").
    worker_mode: str = "thread"
    #: PIR database shards each worker context connected to.
    shards: int = 1

    def as_row(self) -> Dict[str, object]:
        """A flat dictionary convenient for report tables."""
        row: Dict[str, object] = {
            "scheme": self.scheme_name,
            "response_s": round(self.mean_response_s, 2),
            "pir_s": round(self.mean_pir_s, 2),
            "communication_s": round(self.mean_communication_s, 2),
            "client_s": round(self.mean_client_s, 4),
            "storage_mb": round(self.storage_mb, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        for file_name, accesses in sorted(self.mean_page_accesses.items()):
            row[f"pages_{file_name}"] = round(accesses, 1)
            row[f"file_pages_{file_name}"] = self.file_pages.get(file_name, 0)
        return row


def run_workload(
    scheme: Scheme,
    pairs: Sequence[QueryPair],
    verify_costs: bool = True,
    cost_tolerance: float = 1e-4,
    engine: Optional[QueryEngine] = None,
    workers: int = 1,
    cache_entries: int = 512,
    pipeline: bool = True,
    worker_mode: str = "thread",
    shards: int = 1,
    store_backend: Optional[str] = None,
    store_dir=None,
    pir_kernel: Optional[str] = "off",
) -> WorkloadSummary:
    """Execute every query of the workload and aggregate the paper's metrics.

    Workloads run through a :class:`~repro.engine.QueryEngine` (one is created
    per call unless ``engine`` is supplied, e.g. to share its page cache
    across several workloads of the same scheme): queries execute under the
    scheme's fixed plan with client-side decode caching, and the true-cost
    verification is batched by source over the compiled network.  ``workers``
    shards the batch across that many engine worker contexts,
    ``worker_mode`` selects thread or process workers, ``pipeline`` overlaps
    PIR retrieval with the client-side solve, and ``shards`` splits the PIR
    page store into that many independent sub-databases; all of them leave
    the results bit-identical to serial execution.  ``cache_entries`` sizes
    each worker's decode cache (``0`` disables caching; ignored when
    ``engine`` is supplied, as are ``shards`` and ``store_backend``).
    ``store_backend``/``store_dir`` re-home the scheme's database onto the
    named page-store backend (memory/mmap/sqlite) and serve the workload's
    PIR reads from it.  ``pir_kernel`` serves every PIR read through a real
    two-server XOR retrieval over the named packed server kernel
    ("auto"/"numpy"/"bigint"; results stay bit-identical — see
    :mod:`repro.pir.kernels`).  It is pinned ``"off"`` (direct page reads)
    here: the experiments measure the paper's *simulated* response times,
    and folding every page through the XOR protocol only slows the
    regeneration without changing a single reported number.
    """
    if not pairs:
        raise SchemeError("cannot run an empty workload")
    if engine is None:
        engine = QueryEngine(
            scheme,
            cache_entries=cache_entries,
            shards=shards,
            store_backend=store_backend,
            store_dir=store_dir,
            pir_kernel=pir_kernel,
        )
    batch = engine.run_batch(
        pairs,
        verify_costs=verify_costs,
        cost_tolerance=cost_tolerance,
        workers=workers,
        pipeline=pipeline,
        worker_mode=worker_mode,
    )

    responses: List[ResponseTime] = []
    per_file_accesses: Dict[str, float] = {}
    for result in batch.results:
        responses.append(result.response)
        for file_name, count in result.pages_per_file.items():
            per_file_accesses[file_name] = per_file_accesses.get(file_name, 0.0) + count
    costs_correct = batch.all_costs_correct

    count = len(pairs)
    mean_accesses = {name: total / count for name, total in per_file_accesses.items()}
    file_pages = {name: scheme.database.file(name).num_pages for name in scheme.database.file_names()}

    data_utilization: Optional[float] = None
    if scheme.database.has_file("data"):
        data_utilization = scheme.database.file("data").utilization

    return WorkloadSummary(
        scheme_name=scheme.name,
        num_queries=count,
        mean_response_s=sum(r.total_s for r in responses) / count,
        mean_pir_s=sum(r.pir_s for r in responses) / count,
        mean_communication_s=sum(r.communication_s for r in responses) / count,
        mean_client_s=sum(r.client_s for r in responses) / count,
        mean_server_s=sum(r.server_s for r in responses) / count,
        mean_page_accesses=mean_accesses,
        file_pages=file_pages,
        storage_mb=scheme.storage_mb,
        data_file_utilization=data_utilization,
        all_costs_correct=costs_correct,
        indistinguishable=batch.indistinguishable,
        cache_hits=batch.cache_hits,
        cache_misses=batch.cache_misses,
        workers=batch.workers,
        worker_mode=batch.worker_mode,
        shards=batch.shards,
    )


def run_obfuscation_workload(
    scheme: ObfuscationScheme, pairs: Sequence[QueryPair]
) -> Dict[str, float]:
    """Run the OBF baseline over a workload; returns mean response components."""
    if not pairs:
        raise SchemeError("cannot run an empty workload")
    responses = [scheme.query(source, target).response for source, target in pairs]
    count = len(pairs)
    return {
        "scheme": "OBF",
        "set_size": scheme.set_size,
        "response_s": sum(r.total_s for r in responses) / count,
        "server_s": sum(r.server_s for r in responses) / count,
        "communication_s": sum(r.communication_s for r in responses) / count,
    }
